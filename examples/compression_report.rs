//! Compression report: how much does each storage format shrink a matrix?
//!
//! Accepts a MatrixMarket file (so the real University-of-Florida matrices
//! of Table I can be dropped in), or a suite-matrix name, or defaults to a
//! generated structural matrix.
//!
//! ```sh
//! cargo run --release --example compression_report                 # generated
//! cargo run --release --example compression_report bmw7st_1        # suite analog
//! cargo run --release --example compression_report path/to/A.mtx   # real matrix
//! ```

use symspmv::core::CsxSymMatrix;
use symspmv::csx::detect::{DetectConfig, Family};
use symspmv::csx::CsxMatrix;
use symspmv::sparse::{mm, suite, CooMatrix, CsrMatrix, SssMatrix};
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights};

fn load(arg: Option<String>) -> (String, CooMatrix) {
    match arg {
        None => (
            "generated block-structural".into(),
            symspmv::sparse::gen::block_structural(4000, 3, 14.0, 200, 42),
        ),
        Some(a) if a.ends_with(".mtx") => {
            let (coo, hdr) = mm::read_matrix_market_file(&a)
                .unwrap_or_else(|e| panic!("failed to read {a}: {e}"));
            println!("loaded {a} ({hdr:?})");
            (a, coo)
        }
        Some(name) => {
            let spec = suite::spec_by_name(&name).unwrap_or_else(|| {
                eprintln!("unknown matrix {name}; use a .mtx path or one of:");
                for s in &suite::SUITE {
                    eprintln!("  {}", s.name);
                }
                std::process::exit(2);
            });
            (name, suite::generate(spec, 0.05).coo)
        }
    }
}

fn main() {
    let (name, mut coo) = load(std::env::args().nth(1));
    coo.canonicalize();
    let stats = symspmv::sparse::stats::matrix_stats(&coo);
    println!(
        "\nmatrix {name}: N = {}, NNZ = {}, bandwidth = {}\n",
        stats.nrows, stats.nnz, stats.bandwidth
    );

    let csr = CsrMatrix::from_coo(&coo);
    let csr_bytes = csr.size_bytes();
    let report = |fmt: &str, bytes: usize, extra: &str| {
        println!(
            "{fmt:>10}: {bytes:>12} bytes  (CR {:>5.1}%)  {extra}",
            (1.0 - bytes as f64 / csr_bytes as f64) * 100.0
        );
    };
    report("CSR", csr_bytes, "(baseline, Eq. 1)");

    let cfg = DetectConfig::default();
    let csx = CsxMatrix::from_coo(&coo, &cfg);
    report(
        "CSX",
        csx.stats().size_bytes,
        &format!(
            "coverage {:.1}%, {} substructure / {} delta units",
            csx.stats().coverage * 100.0,
            csx.stats().substructure_units,
            csx.stats().delta_units
        ),
    );

    match SssMatrix::from_coo(&coo, 1e-12) {
        Ok(sss) => {
            report("SSS", sss.size_bytes(), "(Eq. 2)");
            for p in [1usize, 8] {
                let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
                let sym = CsxSymMatrix::from_sss(&sss, &parts, &cfg);
                report(
                    &format!("CSX-Sym/{p}"),
                    sym.size_bytes(),
                    &format!(
                        "coverage {:.1}%, max possible CR {:.1}%",
                        sym.coverage() * 100.0,
                        sym.max_compression_ratio() * 100.0
                    ),
                );
            }

            // Which substructure families carry the compression?
            let det = symspmv::csx::detect::analyze(
                &{
                    let (lower, _) = coo.split_lower_diag().unwrap();
                    let mut l = lower;
                    l.canonicalize();
                    l
                },
                &DetectConfig {
                    min_coverage: 0.0,
                    ..DetectConfig::default()
                },
            );
            println!("\nsubstructure histogram (lower triangle):");
            let mut hist: Vec<(Family, usize)> = det.family_histogram().into_iter().collect();
            hist.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            for (fam, count) in hist {
                println!("  {fam:?}: {count} instances");
            }
        }
        Err(e) => println!("(matrix not symmetric — symmetric formats skipped: {e})"),
    }
}
