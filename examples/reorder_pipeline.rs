//! Bandwidth-reduction pipeline (§V-D): take a scattered high-bandwidth
//! symmetric matrix, reorder it with RCM, and show the effect on the
//! structure, the reduction-index density, and symmetric SpMV throughput.
//!
//! ```sh
//! cargo run --release --example reorder_pipeline [n] [threads]
//! ```

use std::time::Instant;
use symspmv::core::{symbolic, ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::reorder::rcm::{rcm_permutation, rcm_reorder};
use symspmv::sparse::stats::matrix_stats;
use symspmv::sparse::SssMatrix;
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights, ExecutionContext};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // A high-bandwidth matrix like the paper's corner cases: a banded mesh
    // with 10% irreducibly scattered entries, hidden behind a random
    // numbering (RCM recovers the band but not the scattered fraction).
    let local = symspmv::sparse::gen::mixed_bandwidth(n, 10.0, 0.9, n / 100, 99);
    let a = symspmv::sparse::gen::scramble(&local, 7);

    let t0 = Instant::now();
    let reordered = rcm_reorder(&a).expect("square symmetric input");
    let rcm_time = t0.elapsed();

    println!(
        "RCM reordering of N = {n} took {:.1} ms\n",
        rcm_time.as_secs_f64() * 1e3
    );
    println!("{:>22} {:>12} {:>12}", "", "original", "RCM");

    let s0 = matrix_stats(&a);
    let s1 = matrix_stats(&reordered);
    println!(
        "{:>22} {:>12} {:>12}",
        "bandwidth", s0.bandwidth, s1.bandwidth
    );
    println!(
        "{:>22} {:>12.1} {:>12.1}",
        "avg |r-c| distance", s0.avg_entry_distance, s1.avg_entry_distance
    );

    // Effect on the local-vectors index (§V-D point 2: less thread
    // interference → smaller index).
    let d = |coo| {
        let sss = SssMatrix::from_coo(coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), threads);
        let ci = symbolic::analyze(&sss, &parts);
        (ci.entries.len(), ci.density())
    };
    let (e0, d0) = d(&a);
    let (e1, d1) = d(&reordered);
    println!("{:>22} {:>12} {:>12}", "index entries", e0, e1);
    println!(
        "{:>22} {:>11.1}% {:>11.1}%",
        "effective density",
        d0 * 100.0,
        d1 * 100.0
    );

    // Throughput before and after, on one shared context.
    let ctx = ExecutionContext::new(threads);
    let gflops = |coo: &symspmv::sparse::CooMatrix| {
        let mut k =
            SymSpmv::from_coo(coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let x = symspmv::sparse::dense::seeded_vector(n as usize, 1);
        let mut y = vec![0.0; n as usize];
        k.spmv(&x, &mut y); // warm-up
        k.reset_times();
        let t = Instant::now();
        let iters = 64;
        let (mut x, mut y) = (x, y);
        for _ in 0..iters {
            k.spmv(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        k.flops() as f64 * iters as f64 / t.elapsed().as_secs_f64() / 1e9
    };
    let g0 = gflops(&a);
    let g1 = gflops(&reordered);
    println!("{:>22} {:>12.2} {:>12.2}", "sss-idx Gflop/s", g0, g1);
    println!(
        "\nRCM improvement: {:+.1}%  (paper Table III: SSS +92.2% SMP / +43.6% NUMA)",
        (g1 / g0 - 1.0) * 100.0
    );

    // Sanity: the permutation really is a bijection round-tripping SpMV.
    let p = rcm_permutation(&a).unwrap();
    assert_eq!(
        p.then(&p.inverse()).as_map(),
        symspmv::sparse::Permutation::identity(n).as_map()
    );
}
