//! Quickstart: build a symmetric matrix, multiply it with every kernel the
//! library provides, and check they agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use symspmv::core::{CsrParallel, ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::csx::detect::DetectConfig;
use symspmv::runtime::ExecutionContext;
use symspmv::sparse::{CooMatrix, SssMatrix};

fn main() {
    // A small symmetric positive-definite matrix, assembled in COO form:
    // the 2-D Laplacian on a 64x64 grid (N = 4096, pentadiagonal).
    let a: CooMatrix = symspmv::sparse::gen::laplacian_2d(64, 64);
    let n = a.nrows() as usize;
    println!("matrix: {} rows, {} non-zeros", a.nrows(), a.nnz());

    let x: Vec<f64> = (0..n).map(|i| (i % 10) as f64 * 0.1).collect();

    // Reference: serial SSS (Alg. 2 of the paper).
    let sss = SssMatrix::from_coo(&a, 0.0).expect("matrix is symmetric");
    let mut y_ref = vec![0.0; n];
    sss.spmv(&x, &mut y_ref);
    println!(
        "SSS stores {} bytes vs CSR {} bytes",
        sss.size_bytes(),
        sss.to_full_csr().size_bytes()
    );

    // The multithreaded kernels: CSR baseline, symmetric SSS with the
    // paper's local-vectors indexing, and CSX-Sym.
    let threads = 4;
    let ctx = ExecutionContext::new(threads);
    let mut kernels: Vec<Box<dyn ParallelSpmv>> = vec![
        Box::new(CsrParallel::from_coo(&a, &ctx)),
        Box::new(SymSpmv::from_coo(&a, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap()),
        Box::new(
            SymSpmv::from_coo(
                &a,
                &ctx,
                ReductionMethod::Indexing,
                SymFormat::CsxSym(DetectConfig::default()),
            )
            .unwrap(),
        ),
    ];

    for k in &mut kernels {
        let mut y = vec![0.0; n];
        k.spmv(&x, &mut y);
        let max_err = y
            .iter()
            .zip(&y_ref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:>10}: {} threads, {} bytes, max |err| vs serial = {:.2e}",
            k.name(),
            k.nthreads(),
            k.size_bytes(),
            max_err
        );
        assert!(max_err < 1e-10);
    }
    println!("all kernels agree ✓");
}
