//! Solve a sparse SPD linear system with the Conjugate Gradient method
//! (Alg. 1 of the paper), comparing the CSR baseline against the symmetric
//! kernels — the §V-F scenario.
//!
//! ```sh
//! cargo run --release --example cg_solve [grid_size] [threads]
//! ```

use symspmv::core::CsrParallel;
use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::csx::detect::DetectConfig;
use symspmv::runtime::ExecutionContext;
use symspmv::solver::{cg, CgConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let grid: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // -Δu = f on a grid x grid domain (5-point stencil), a classic SPD
    // system from the paper's finite-element motivation.
    let a = symspmv::sparse::gen::laplacian_2d(grid, grid);
    let n = a.nrows() as usize;
    let b = symspmv::sparse::dense::seeded_vector(n, 7);
    println!("system: N = {n}, NNZ = {}, {threads} threads\n", a.nnz());

    // One context: every kernel below shares its worker pool and arena.
    let ctx = ExecutionContext::new(threads);

    let cfg = CgConfig {
        max_iters: 4 * n,
        rel_tol: 1e-8,
        record_history: false,
    };

    let mut kernels: Vec<Box<dyn ParallelSpmv>> = vec![
        Box::new(CsrParallel::from_coo(&a, &ctx)),
        Box::new(SymSpmv::from_coo(&a, &ctx, ReductionMethod::Naive, SymFormat::Sss).unwrap()),
        Box::new(SymSpmv::from_coo(&a, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap()),
        Box::new(
            SymSpmv::from_coo(
                &a,
                &ctx,
                ReductionMethod::Indexing,
                SymFormat::CsxSym(DetectConfig::default()),
            )
            .unwrap(),
        ),
    ];

    println!(
        "{:>12} {:>7} {:>10} {:>11} {:>11} {:>11} {:>11}",
        "kernel", "iters", "residual", "spmv(ms)", "reduce(ms)", "vecops(ms)", "total(ms)"
    );
    for k in &mut kernels {
        let mut x = vec![0.0; n];
        let res = cg(&mut **k, &b, &mut x, &cfg);
        assert!(res.converged, "{} did not converge", k.name());
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:>12} {:>7} {:>10.2e} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
            k.name(),
            res.iterations,
            res.residual_norm,
            ms(res.times.multiply),
            ms(res.times.reduce),
            ms(res.times.vector_ops),
            ms(res.times.total()),
        );
    }
}
