//! Jacobi-preconditioned CG versus plain CG on a badly scaled SPD system.
//!
//! The paper evaluates non-preconditioned CG (§II-C) because preconditioning
//! is orthogonal to the SpMV optimization; this example shows the two
//! composing: the preconditioner cuts iterations, the symmetric kernels cut
//! the cost of each iteration.
//!
//! ```sh
//! cargo run --release --example pcg_solve [grid] [threads]
//! ```

use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::runtime::ExecutionContext;
use symspmv::solver::{cg, diagonal_of, pcg_jacobi, CgConfig};
use symspmv::sparse::CooMatrix;

/// 2-D Laplacian with a position-dependent coefficient — condition number
/// inflated by the scaling, which is exactly what Jacobi fixes.
fn scaled_laplacian(k: u32) -> CooMatrix {
    let base = symspmv::sparse::gen::laplacian_2d(k, k);
    let n = base.nrows();
    let scale = |i: u32| 1.0 + 999.0 * (f64::from(i) / f64::from(n)).powi(2);
    let mut out = CooMatrix::new(n, n);
    for (r, c, v) in base.iter() {
        out.push(r, c, v * scale(r) * scale(c));
    }
    out.canonicalize();
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let grid: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let a = scaled_laplacian(grid);
    let n = a.nrows() as usize;
    let b = symspmv::sparse::dense::seeded_vector(n, 13);
    let diag = diagonal_of(&a);
    let cfg = CgConfig {
        max_iters: 20 * n,
        rel_tol: 1e-8,
        record_history: false,
    };

    println!("badly scaled Laplacian: N = {n}, NNZ = {}\n", a.nnz());
    println!(
        "{:>10} {:>14} {:>8} {:>12}",
        "solver", "kernel", "iters", "total(ms)"
    );

    let ctx = ExecutionContext::new(threads);
    let mut kernel =
        SymSpmv::from_coo(&a, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();

    let mut x = vec![0.0; n];
    let plain = cg(&mut kernel, &b, &mut x, &cfg);
    assert!(plain.converged);
    println!(
        "{:>10} {:>14} {:>8} {:>12.1}",
        "CG",
        kernel.name(),
        plain.iterations,
        plain.times.total().as_secs_f64() * 1e3
    );

    kernel.reset_times();
    let mut x = vec![0.0; n];
    let pre = pcg_jacobi(&mut kernel, &diag, &b, &mut x, &cfg);
    assert!(pre.converged);
    println!(
        "{:>10} {:>14} {:>8} {:>12.1}",
        "PCG-Jacobi",
        kernel.name(),
        pre.iterations,
        pre.times.total().as_secs_f64() * 1e3
    );

    println!(
        "\nJacobi cut the iteration count by {:.1}x",
        plain.iterations as f64 / pre.iterations.max(1) as f64
    );
}
