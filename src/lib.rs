#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! `symspmv` — facade crate re-exporting the whole workspace.
//!
//! Reproduction of "Improving the Performance of the Symmetric Sparse
//! Matrix-Vector Multiplication in Multicore" (IPDPS 2013): the CSX-Sym
//! storage format and the local-vectors indexing reduction scheme, together
//! with the substrates (formats, reordering, runtime, CG solver) and the
//! experiment harness.
//!
//! # Example
//!
//! ```
//! use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
//! use symspmv::csx::detect::DetectConfig;
//! use symspmv::runtime::ExecutionContext;
//!
//! // A symmetric positive-definite matrix (2-D Laplacian).
//! let a = symspmv::sparse::gen::laplacian_2d(32, 32);
//! let n = a.nrows() as usize;
//!
//! // One execution context owns the worker pool, the buffer arena, and
//! // the reduction-strategy registry shared by kernels and solver alike.
//! let ctx = ExecutionContext::new(4);
//!
//! // The paper's fastest configuration: CSX-Sym storage plus the
//! // local-vectors indexing reduction.
//! let mut kernel = SymSpmv::from_coo(
//!     &a,
//!     &ctx,
//!     ReductionMethod::Indexing,
//!     SymFormat::CsxSym(DetectConfig::default()),
//! )
//! .expect("matrix is symmetric");
//!
//! let x = vec![1.0; n];
//! let mut y = vec![0.0; n];
//! kernel.spmv(&x, &mut y); // y = A·x
//!
//! // Interior rows of the Laplacian sum to zero against the ones vector;
//! // boundary rows don't.
//! assert!(y.iter().any(|&v| v != 0.0));
//! assert!(kernel.size_bytes() > 0);
//!
//! // Solve A·x = b with CG on the same kernel.
//! let b = vec![1.0; n];
//! let mut sol = vec![0.0; n];
//! let res = symspmv::solver::cg(
//!     &mut kernel,
//!     &b,
//!     &mut sol,
//!     &symspmv::solver::CgConfig::default(),
//! );
//! assert!(res.converged);
//! ```

pub use symspmv_core as core;
pub use symspmv_csb as csb;
pub use symspmv_csx as csx;
pub use symspmv_reorder as reorder;
pub use symspmv_runtime as runtime;
pub use symspmv_solver as solver;
pub use symspmv_sparse as sparse;
