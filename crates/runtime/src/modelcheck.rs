//! Bounded-interleaving model checker for the supervision protocol.
//!
//! The pool/supervisor protocol ([`crate::pool::WorkerPool`] +
//! [`crate::supervisor`]) has concurrency bugs that unit tests only catch
//! probabilistically: a checkpoint racing a cancellation, the watchdog
//! firing while clean completions are still in flight, a panicked worker's
//! seat being reused before its respawn. This module checks those paths
//! *exhaustively*: it drives an abstract model of the protocol — a
//! miniature pool of 2–3 workers running 1–2 rounds per request — through
//! **every** interleaving of worker completions, watchdog firing and
//! checkpoint outcomes that a bounded [`Scenario`] admits, asserting on
//! each terminal state that
//!
//! * every request ends with the **typed outcome** the faithful protocol
//!   assigns it (typed-error totality: [`Outcome::Ok`],
//!   [`Outcome::Cancelled`], [`Outcome::DeadlineWedged`] or
//!   [`Outcome::WorkerPanicked`] — never a hang, never a leaked default);
//! * the **arena is scrubbed** at every request boundary, unwind paths
//!   included (the `BufferLease` drop-scrub invariant);
//! * no **lost wakeup**: a round with running workers always has an
//!   enabled transition;
//! * no **double-serve**: a worker reports at most once per round, and a
//!   barrier seat is reused only after the round fully drained;
//! * the final **health state**, failure/wedge counters and dispatch/poll
//!   counts match the faithful reference. These are schedule-independent
//!   observables of the real protocol, so any divergence across
//!   interleavings is a protocol bug. The **respawn count is deliberately
//!   not pinned** — the real tardy set is a watchdog-time snapshot of
//!   unreported workers, so it genuinely depends on the schedule — but it
//!   is checked against the analytic bounds derived from the reference
//!   outcomes (one respawn per panicked request; between one and
//!   `workers` per wedged request).
//!
//! # Faithfulness
//!
//! The model mirrors `WorkerPool::dispatch` / `dispatch_inner` step for
//! step: the cooperative checkpoint polls the cancel fuse *before*
//! dispatch; `mark_wedged` bumps the wedge counter and records a failure,
//! tardy respawns do not; `record_success` fires only on fully clean
//! rounds and promotes Degraded → Healthy after [`MODEL_RECOVERY_STREAK`]
//! consecutive clean rounds (the model shrinks the production constant
//! `HealthState::RECOVERY_STREAK` from 16 to 2 so the promotion edge is
//! reachable inside bounded scenarios).
//!
//! Seeded protocol mutants ([`Variant`]) reintroduce the bugs the real
//! implementation avoids; the checker must catch every one — that is what
//! ties the model back to reality. A model too abstract to catch a mutant
//! would be vacuous, so the mutant-kill tests double as a fidelity gauge.
//!
//! # DPOR-lite pruning
//!
//! Clean (`Ok`) completions commute: they only shrink the outstanding set,
//! and clean workers are symmetric. When every enabled transition is a
//! clean completion the checker explores only the least-id one; when the
//! enabled set is heterogeneous (a panic completion, the watchdog, or a
//! tardy completion is also enabled) it branches on the least-id clean
//! completion plus every non-clean transition. [`explore_with`] can
//! disable pruning; a test pins that both modes reach the same verdict.

use std::fmt;

/// Consecutive clean rounds after which the *model's* Degraded pool is
/// promoted back to Healthy. The production constant
/// (`HealthState::RECOVERY_STREAK`) is 16; the model shrinks it so the
/// promotion edge is reachable inside bounded scenarios.
pub const MODEL_RECOVERY_STREAK: usize = 2;

/// Hard cap on transitions per schedule; exceeding it is reported as a
/// `nontermination` violation rather than hanging the checker.
const STEP_CAP: usize = 10_000;

/// Which protocol the checker drives: the faithful model, or one of the
/// seeded mutants that reintroduce a concurrency bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The protocol as implemented.
    Faithful,
    /// The cooperative checkpoint polls the cancel fuse *after* the round
    /// instead of before dispatch — a request due for cancellation runs
    /// one extra round.
    CheckpointAfterDispatch,
    /// Unwind paths skip the `BufferLease` drop-scrub — the arena keeps a
    /// dirty buffer across panic/cancel/wedge exits.
    SkipScrubOnUnwind,
    /// The drained wedge is never downgraded (`unwedge` skipped) — the
    /// pool reports `Wedged` forever.
    SkipUnwedge,
    /// `record_success` promotes Degraded → Healthy on a single clean
    /// round, ignoring the recovery streak.
    PromoteWithoutStreak,
}

/// A deterministic fault seeded into one round of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: every worker completes cleanly.
    None,
    /// A worker panics in one specific round.
    Panic {
        /// Request index the fault strikes.
        request: usize,
        /// Round index within that request.
        round: usize,
        /// Worker id that panics.
        worker: usize,
    },
    /// A worker overruns the deadline in one specific round: it completes
    /// only after the watchdog has fired. Only meaningful with
    /// [`Scenario::deadline`] set.
    Wedge {
        /// Request index the fault strikes.
        request: usize,
        /// Round index within that request.
        round: usize,
        /// Worker id that wedges.
        worker: usize,
    },
}

/// A bounded scenario: pool size, per-request round count, request count,
/// one optional fault, an optional cancel fuse and an optional deadline.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name, used in reports and pinned-count tests.
    pub name: &'static str,
    /// Pool size (2–3 keeps the interleaving space tractable).
    pub workers: usize,
    /// Rounds dispatched per request (1–2).
    pub rounds: usize,
    /// Requests served back to back on the same pool (1–3).
    pub requests: usize,
    /// The seeded fault, if any.
    pub fault: Fault,
    /// `Some(k)`: a cancel token fused to fire at the `k`-th cooperative
    /// checkpoint (0-based), mirroring
    /// `CancelToken::cancel_after_checkpoints`. The token stays cancelled,
    /// so every later request cancels at its first checkpoint.
    pub cancel_after: Option<usize>,
    /// Whether rounds are supervised by a deadline watchdog.
    pub deadline: bool,
}

/// Typed outcome of one request — the model's image of the `Interrupt` /
/// `WorkerPanic` payloads the real protocol raises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All rounds drained cleanly.
    Ok,
    /// The cooperative checkpoint observed a cancelled token.
    Cancelled,
    /// The watchdog fired; the round drained, tardy workers were
    /// respawned, and the request unwound with `DeadlineExceeded`.
    DeadlineWedged,
    /// A worker panicked; the round drained and the panic was re-raised.
    WorkerPanicked,
}

/// The model's image of [`crate::PoolHealth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// No recent failures.
    Healthy,
    /// Recent failure; promotes after [`MODEL_RECOVERY_STREAK`] clean rounds.
    Degraded,
    /// A round is currently overrunning its deadline.
    Wedged,
}

/// One invariant violation found on some schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke (`"outcome"`, `"arena-zero"`, `"health"`,
    /// `"dispatch-count"`, `"checkpoint"`, `"respawn"`, `"seat-reuse"`,
    /// `"double-serve"`, `"lost-wakeup"`, `"nontermination"`).
    pub invariant: &'static str,
    /// What diverged.
    pub detail: String,
    /// The schedule that exposed it, as applied transitions.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (schedule: {})",
            self.invariant,
            self.detail,
            self.trace.join(" -> ")
        )
    }
}

/// Result of exhausting a scenario's interleavings.
#[derive(Debug)]
pub struct Exploration {
    /// Number of complete schedules explored.
    pub schedules: usize,
    /// Deduplicated invariant violations (empty for a correct protocol).
    pub violations: Vec<Violation>,
}

impl Exploration {
    /// Whether every explored schedule upheld every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Schedule-independent observables of a finished scenario, computed once
/// from the faithful model on a canonical schedule and compared against
/// every explored terminal state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Reference {
    outcomes: Vec<Outcome>,
    health: Health,
    wedges: usize,
    failures: usize,
    rounds_dispatched: usize,
    polls: usize,
}

impl Reference {
    /// Analytic respawn bounds implied by the reference outcomes: exactly
    /// one respawn per panicked request; a wedged request respawns at
    /// least the wedged worker and at most every worker (the tardy set is
    /// a watchdog-time snapshot, so the exact count is schedule-dependent).
    fn respawn_bounds(&self, workers: usize) -> (usize, usize) {
        let panics = self
            .outcomes
            .iter()
            .filter(|o| **o == Outcome::WorkerPanicked)
            .count();
        let wedges = self
            .outcomes
            .iter()
            .filter(|o| **o == Outcome::DeadlineWedged)
            .count();
        (panics + wedges, panics + wedges * workers)
    }
}

/// One enabled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// A worker reports a clean round.
    CompleteOk(usize),
    /// A worker reports a panic.
    CompletePanic(usize),
    /// The wedged worker finally reports (enabled only after the watchdog).
    CompleteTardy(usize),
    /// The watchdog times out and snapshots the tardy set.
    WatchdogFire,
}

impl Step {
    fn describe(self) -> String {
        match self {
            Step::CompleteOk(w) => format!("ok({w})"),
            Step::CompletePanic(w) => format!("panic({w})"),
            Step::CompleteTardy(w) => format!("tardy({w})"),
            Step::WatchdogFire => "watchdog".to_string(),
        }
    }

    fn is_clean(self) -> bool {
        matches!(self, Step::CompleteOk(_))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    Idle,
    Running,
    Done,
}

/// Full model state; cloned at each branch point.
#[derive(Debug, Clone)]
struct ModelState {
    request: usize,
    round: usize,
    collecting: bool,
    workers: Vec<WorkerState>,
    panicked_this_round: Vec<usize>,
    watchdog_fired: bool,
    tardy: Vec<usize>,
    polls: usize,
    cancelled: bool,
    arena_dirty: bool,
    health: Health,
    streak: usize,
    wedges: usize,
    failures: usize,
    respawns: usize,
    rounds_dispatched: usize,
    outcomes: Vec<Outcome>,
    steps_taken: usize,
    trace: Vec<String>,
    done: bool,
}

impl ModelState {
    fn initial(scenario: &Scenario) -> Self {
        ModelState {
            request: 0,
            round: 0,
            collecting: false,
            workers: vec![WorkerState::Idle; scenario.workers],
            panicked_this_round: Vec::new(),
            watchdog_fired: false,
            tardy: Vec::new(),
            polls: 0,
            cancelled: false,
            arena_dirty: false,
            health: Health::Healthy,
            streak: 0,
            wedges: 0,
            failures: 0,
            respawns: 0,
            rounds_dispatched: 0,
            outcomes: Vec::new(),
            steps_taken: 0,
            trace: Vec::new(),
            done: false,
        }
    }
}

/// What the deterministic machinery reached.
enum Advance {
    /// The scenario finished: all requests have typed outcomes.
    Done,
    /// A nondeterministic choice point with the (possibly pruned)
    /// transitions to branch on.
    Choose(Vec<Step>),
    /// Workers are still running but nothing is enabled, or the step cap
    /// tripped.
    Stuck(&'static str),
}

struct Checker<'a> {
    scenario: &'a Scenario,
    variant: Variant,
    prune: bool,
    reference: Option<Reference>,
    schedules: usize,
    violations: Vec<Violation>,
}

impl Checker<'_> {
    /// Whether a supervision snapshot is installed — the real checkpoint
    /// is a no-op when `SupervisionCell::snapshot()` returns `None`.
    fn supervised(&self) -> bool {
        self.scenario.cancel_after.is_some() || self.scenario.deadline
    }

    fn wedge_target(&self, s: &ModelState) -> Option<usize> {
        match self.scenario.fault {
            Fault::Wedge {
                request,
                round,
                worker,
            } if request == s.request && round == s.round && self.scenario.deadline => Some(worker),
            _ => None,
        }
    }

    fn panic_target(&self, s: &ModelState) -> Option<usize> {
        match self.scenario.fault {
            Fault::Panic {
                request,
                round,
                worker,
            } if request == s.request && round == s.round => Some(worker),
            _ => None,
        }
    }

    fn violate(&mut self, s: &ModelState, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            invariant,
            detail,
            trace: s.trace.clone(),
        });
    }

    /// `HealthState::record_failure`: Healthy → Degraded (a wedged pool
    /// stays wedged until its round drains), streak reset.
    fn record_failure(s: &mut ModelState) {
        s.failures += 1;
        s.streak = 0;
        if s.health == Health::Healthy {
            s.health = Health::Degraded;
        }
    }

    /// `HealthState::record_success` under the active variant.
    fn record_success(&self, s: &mut ModelState) {
        s.streak += 1;
        let promote = match self.variant {
            Variant::PromoteWithoutStreak => true,
            _ => s.streak >= MODEL_RECOVERY_STREAK,
        };
        if promote && s.health == Health::Degraded {
            s.health = Health::Healthy;
        }
    }

    /// The cooperative cancel poll; `true` means the request must unwind
    /// with [`Outcome::Cancelled`]. A fused token consumes one checkpoint
    /// per poll until it fires, then stays cancelled forever.
    fn poll_cancel(&self, s: &mut ModelState) -> bool {
        if !self.supervised() {
            return false;
        }
        match self.scenario.cancel_after {
            None => false,
            Some(fuse) => {
                if s.cancelled || s.polls >= fuse {
                    s.cancelled = true;
                    true
                } else {
                    s.polls += 1;
                    false
                }
            }
        }
    }

    /// Unwind a request with a typed outcome; the `BufferLease` drop-scrub
    /// runs unless the seeded mutant skips it.
    fn unwind(&mut self, s: &mut ModelState, outcome: Outcome) {
        if self.variant != Variant::SkipScrubOnUnwind {
            s.arena_dirty = false;
        }
        self.finish_request(s, outcome);
    }

    /// Closes out the current request: records the outcome, checks the
    /// arena-zero boundary invariant, and resets per-request state.
    fn finish_request(&mut self, s: &mut ModelState, outcome: Outcome) {
        s.outcomes.push(outcome);
        if s.arena_dirty {
            let request = s.request;
            self.violate(
                s,
                "arena-zero",
                format!("request {request} ended with a dirty arena buffer"),
            );
            s.arena_dirty = false;
        }
        s.request += 1;
        s.round = 0;
        s.collecting = false;
        if s.request >= self.scenario.requests {
            s.done = true;
        }
    }

    /// Round start: arena lease on the first round, cooperative
    /// checkpoint, dispatch.
    fn start_round(&mut self, s: &mut ModelState) {
        if s.round == 0 {
            s.arena_dirty = true;
        }
        if self.variant != Variant::CheckpointAfterDispatch && self.poll_cancel(s) {
            self.unwind(s, Outcome::Cancelled);
            return;
        }
        if s.workers.iter().any(|w| *w != WorkerState::Idle) {
            let request = s.request;
            let round = s.round;
            self.violate(
                s,
                "seat-reuse",
                format!("dispatch of request {request} round {round} with an undrained seat"),
            );
        }
        for w in s.workers.iter_mut() {
            *w = WorkerState::Running;
        }
        s.panicked_this_round.clear();
        s.watchdog_fired = false;
        s.tardy.clear();
        s.rounds_dispatched += 1;
        s.collecting = true;
    }

    /// Round end, after every worker reported: respawn accounting, health
    /// transitions, and either the next round or the request's outcome.
    /// Mirrors the tail of `WorkerPool::dispatch_inner`.
    fn end_round(&mut self, s: &mut ModelState) {
        s.collecting = false;
        for w in s.workers.iter_mut() {
            *w = WorkerState::Idle;
        }
        let panicked = s.panicked_this_round.clone();
        for _ in &panicked {
            Self::record_failure(s);
            s.respawns += 1;
        }
        if s.watchdog_fired {
            let tardy = s.tardy.clone();
            for t in tardy {
                if !panicked.contains(&t) {
                    s.respawns += 1;
                }
            }
            if self.variant != Variant::SkipUnwedge && s.health == Health::Wedged {
                s.health = Health::Degraded;
            }
            self.unwind(s, Outcome::DeadlineWedged);
            return;
        }
        if !panicked.is_empty() {
            self.unwind(s, Outcome::WorkerPanicked);
            return;
        }
        self.record_success(s);
        if self.variant == Variant::CheckpointAfterDispatch && self.poll_cancel(s) {
            self.unwind(s, Outcome::Cancelled);
            return;
        }
        s.round += 1;
        if s.round >= self.scenario.rounds {
            s.arena_dirty = false;
            self.finish_request(s, Outcome::Ok);
        }
    }

    /// Transitions enabled in the current collect phase.
    fn enabled(&self, s: &ModelState) -> Vec<Step> {
        let wedge = self.wedge_target(s);
        let panicker = self.panic_target(s);
        let mut steps = Vec::new();
        for (w, st) in s.workers.iter().enumerate() {
            if *st != WorkerState::Running {
                continue;
            }
            if Some(w) == wedge {
                if s.watchdog_fired {
                    steps.push(Step::CompleteTardy(w));
                }
            } else if Some(w) == panicker {
                steps.push(Step::CompletePanic(w));
            } else {
                steps.push(Step::CompleteOk(w));
            }
        }
        if let Some(wd) = wedge {
            if !s.watchdog_fired && s.workers[wd] == WorkerState::Running {
                steps.push(Step::WatchdogFire);
            }
        }
        steps
    }

    /// Applies one transition.
    fn apply(&mut self, s: &mut ModelState, step: Step) {
        s.steps_taken += 1;
        s.trace.push(step.describe());
        match step {
            Step::CompleteOk(w) | Step::CompleteTardy(w) | Step::CompletePanic(w) => {
                if s.workers[w] != WorkerState::Running {
                    self.violate(
                        s,
                        "double-serve",
                        format!("worker {w} reported twice in one round"),
                    );
                }
                s.workers[w] = WorkerState::Done;
                if matches!(step, Step::CompletePanic(_)) {
                    s.panicked_this_round.push(w);
                }
            }
            Step::WatchdogFire => {
                // `mark_wedged`: wedge counter, Wedged state, then a
                // recorded failure; the tardy set is the snapshot of
                // unreported workers at fire time.
                s.watchdog_fired = true;
                s.wedges += 1;
                s.health = Health::Wedged;
                Self::record_failure(s);
                s.tardy = s
                    .workers
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| **st == WorkerState::Running)
                    .map(|(w, _)| w)
                    .collect();
            }
        }
    }

    /// Runs the deterministic machinery until the scenario finishes, gets
    /// stuck, or reaches a nondeterministic choice point.
    fn advance(&mut self, s: &mut ModelState) -> Advance {
        loop {
            if s.done {
                return Advance::Done;
            }
            if s.steps_taken > STEP_CAP {
                return Advance::Stuck("nontermination");
            }
            if !s.collecting {
                self.start_round(s);
                continue;
            }
            if s.workers.iter().all(|w| *w != WorkerState::Running) {
                self.end_round(s);
                continue;
            }
            let enabled = self.enabled(s);
            if enabled.is_empty() {
                return Advance::Stuck("lost-wakeup");
            }
            return Advance::Choose(if self.prune {
                prune_steps(enabled)
            } else {
                enabled
            });
        }
    }

    /// Depth-first exploration of every (pruned) schedule.
    fn dfs(&mut self, mut s: ModelState) {
        match self.advance(&mut s) {
            Advance::Done => self.terminal(&s),
            Advance::Stuck(invariant) => {
                self.schedules += 1;
                let detail = match invariant {
                    "nontermination" => format!("schedule exceeded {STEP_CAP} transitions"),
                    _ => "running workers with no enabled transition".to_string(),
                };
                self.violate(&s, invariant, detail);
            }
            Advance::Choose(steps) => {
                for step in steps {
                    let mut next = s.clone();
                    self.apply(&mut next, step);
                    self.dfs(next);
                }
            }
        }
    }

    /// Runs one canonical schedule (always the first enabled transition)
    /// to completion and summarizes its schedule-independent observables.
    fn canonical(&mut self) -> Option<Reference> {
        let mut s = ModelState::initial(self.scenario);
        loop {
            match self.advance(&mut s) {
                Advance::Done => {
                    return Some(Reference {
                        outcomes: s.outcomes,
                        health: s.health,
                        wedges: s.wedges,
                        failures: s.failures,
                        rounds_dispatched: s.rounds_dispatched,
                        polls: s.polls,
                    });
                }
                Advance::Stuck(_) => return None,
                Advance::Choose(steps) => {
                    let step = steps[0];
                    self.apply(&mut s, step);
                }
            }
        }
    }

    /// Checks one terminal state against the faithful reference.
    fn terminal(&mut self, s: &ModelState) {
        self.schedules += 1;
        let Some(r) = self.reference.clone() else {
            self.violate(
                s,
                "outcome",
                "no faithful reference: the canonical schedule got stuck".to_string(),
            );
            return;
        };
        if s.outcomes != r.outcomes {
            self.violate(
                s,
                "outcome",
                format!(
                    "outcomes {:?}, faithful protocol yields {:?}",
                    s.outcomes, r.outcomes
                ),
            );
        }
        if s.health != r.health {
            self.violate(
                s,
                "health",
                format!(
                    "final health {:?}, faithful protocol ends {:?}",
                    s.health, r.health
                ),
            );
        }
        if s.wedges != r.wedges || s.failures != r.failures {
            self.violate(
                s,
                "health",
                format!(
                    "wedges/failures {}/{} diverge from faithful {}/{}",
                    s.wedges, s.failures, r.wedges, r.failures
                ),
            );
        }
        if s.rounds_dispatched != r.rounds_dispatched {
            self.violate(
                s,
                "dispatch-count",
                format!(
                    "{} rounds dispatched, faithful protocol dispatches {}",
                    s.rounds_dispatched, r.rounds_dispatched
                ),
            );
        }
        if s.polls != r.polls {
            self.violate(
                s,
                "checkpoint",
                format!(
                    "{} checkpoint polls, faithful protocol makes {}",
                    s.polls, r.polls
                ),
            );
        }
        let (lo, hi) = r.respawn_bounds(self.scenario.workers);
        if s.respawns < lo || s.respawns > hi {
            self.violate(
                s,
                "respawn",
                format!(
                    "{} respawns outside the faithful bounds [{lo}, {hi}]",
                    s.respawns
                ),
            );
        }
    }
}

/// DPOR-lite: keep the least-id clean completion as the representative of
/// its commuting class, plus every non-clean transition.
fn prune_steps(enabled: Vec<Step>) -> Vec<Step> {
    let first_clean = enabled.iter().copied().find(|s| s.is_clean());
    let mut out: Vec<Step> = Vec::new();
    out.extend(first_clean);
    out.extend(enabled.iter().copied().filter(|s| !s.is_clean()));
    out
}

/// Exhausts every interleaving of `scenario` under `variant` with
/// DPOR-lite pruning on.
pub fn explore(scenario: &Scenario, variant: Variant) -> Exploration {
    explore_with(scenario, variant, true)
}

/// Exhausts every interleaving of `scenario` under `variant`, optionally
/// without pruning (the full permutation space — used to validate that
/// pruning does not change any verdict).
pub fn explore_with(scenario: &Scenario, variant: Variant, prune: bool) -> Exploration {
    let reference = Checker {
        scenario,
        variant: Variant::Faithful,
        prune: true,
        reference: None,
        schedules: 0,
        violations: Vec::new(),
    }
    .canonical();
    let mut checker = Checker {
        scenario,
        variant,
        prune,
        reference,
        schedules: 0,
        violations: Vec::new(),
    };
    checker.dfs(ModelState::initial(scenario));
    let mut seen: Vec<(&'static str, String)> = Vec::new();
    let mut deduped = Vec::new();
    for v in checker.violations {
        let key = (v.invariant, v.detail.clone());
        if !seen.contains(&key) {
            seen.push(key);
            deduped.push(v);
        }
    }
    Exploration {
        schedules: checker.schedules,
        violations: deduped,
    }
}

/// The standard scenario suite: every protocol edge the supervisor
/// machinery promises to handle, each small enough to exhaust.
pub fn standard_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "baseline-clean",
            workers: 2,
            rounds: 2,
            requests: 1,
            fault: Fault::None,
            cancel_after: None,
            deadline: false,
        },
        Scenario {
            name: "panic-recovery-promotion",
            workers: 3,
            rounds: 2,
            requests: 2,
            fault: Fault::Panic {
                request: 0,
                round: 1,
                worker: 1,
            },
            cancel_after: None,
            deadline: false,
        },
        Scenario {
            name: "panic-degraded-stays",
            workers: 3,
            rounds: 1,
            requests: 2,
            fault: Fault::Panic {
                request: 0,
                round: 0,
                worker: 2,
            },
            cancel_after: None,
            deadline: false,
        },
        Scenario {
            name: "fused-cancel-between-rounds",
            workers: 2,
            rounds: 2,
            requests: 2,
            fault: Fault::None,
            cancel_after: Some(1),
            deadline: false,
        },
        Scenario {
            name: "wedge-drain-respawn",
            workers: 3,
            rounds: 2,
            requests: 2,
            fault: Fault::Wedge {
                request: 0,
                round: 1,
                worker: 0,
            },
            cancel_after: None,
            deadline: true,
        },
        Scenario {
            name: "promotion-across-requests",
            workers: 2,
            rounds: 1,
            requests: 3,
            fault: Fault::Panic {
                request: 0,
                round: 0,
                worker: 0,
            },
            cancel_after: None,
            deadline: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> Scenario {
        standard_scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown scenario {name}"))
    }

    #[test]
    fn faithful_protocol_is_clean_on_every_standard_scenario() {
        for scenario in standard_scenarios() {
            let ex = explore(&scenario, Variant::Faithful);
            assert!(
                ex.clean(),
                "scenario {} violated: {}",
                scenario.name,
                ex.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
            assert!(
                ex.schedules > 0,
                "scenario {} explored nothing",
                scenario.name
            );
        }
    }

    /// The exhaustiveness pin: these counts change only if the protocol
    /// model or the pruning rule changes, and any such change must be
    /// reviewed against the docs above.
    #[test]
    fn pruned_schedule_counts_are_pinned() {
        let counts: Vec<(&str, usize)> = standard_scenarios()
            .iter()
            .map(|s| (s.name, explore(s, Variant::Faithful).schedules))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("baseline-clean", 1),
                ("panic-recovery-promotion", 3),
                ("panic-degraded-stays", 3),
                ("fused-cancel-between-rounds", 1),
                ("wedge-drain-respawn", 6),
                ("promotion-across-requests", 2),
            ]
        );
    }

    #[test]
    fn unpruned_exploration_reaches_the_same_verdict() {
        for scenario in standard_scenarios() {
            for variant in [Variant::Faithful, Variant::SkipScrubOnUnwind] {
                let pruned = explore_with(&scenario, variant, true);
                let full = explore_with(&scenario, variant, false);
                assert_eq!(
                    pruned.clean(),
                    full.clean(),
                    "pruning changed the verdict on {} under {variant:?}",
                    scenario.name
                );
                assert!(
                    full.schedules >= pruned.schedules,
                    "pruning must not add schedules on {}",
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn checkpoint_after_dispatch_mutant_is_caught() {
        let ex = explore(
            &by_name("fused-cancel-between-rounds"),
            Variant::CheckpointAfterDispatch,
        );
        assert!(!ex.clean(), "mutant escaped");
        assert!(
            ex.violations
                .iter()
                .any(|v| v.invariant == "dispatch-count"),
            "expected a dispatch-count violation, got: {:?}",
            ex.violations
        );
    }

    #[test]
    fn skip_scrub_mutant_is_caught_on_every_unwind_path() {
        for name in [
            "panic-degraded-stays",
            "wedge-drain-respawn",
            "fused-cancel-between-rounds",
        ] {
            let ex = explore(&by_name(name), Variant::SkipScrubOnUnwind);
            assert!(
                ex.violations.iter().any(|v| v.invariant == "arena-zero"),
                "arena leak escaped on {name}: {:?}",
                ex.violations
            );
        }
    }

    #[test]
    fn skip_unwedge_mutant_is_caught() {
        let ex = explore(&by_name("wedge-drain-respawn"), Variant::SkipUnwedge);
        assert!(
            ex.violations.iter().any(|v| v.invariant == "health"),
            "stuck wedge escaped: {:?}",
            ex.violations
        );
    }

    #[test]
    fn premature_promotion_mutant_is_caught() {
        let ex = explore(
            &by_name("panic-degraded-stays"),
            Variant::PromoteWithoutStreak,
        );
        assert!(
            ex.violations.iter().any(|v| v.invariant == "health"),
            "premature promotion escaped: {:?}",
            ex.violations
        );
    }

    #[test]
    fn faithful_wedge_round_explores_watchdog_interleavings() {
        // The watchdog can fire before, between, or after the two clean
        // completions — all three interleavings (times the rest of the
        // scenario) must be distinct schedules, and every one must agree
        // on the schedule-independent observables.
        let ex = explore(&by_name("wedge-drain-respawn"), Variant::Faithful);
        assert!(ex.clean(), "{:?}", ex.violations);
        assert!(
            ex.schedules >= 3,
            "expected at least 3 watchdog interleavings, got {}",
            ex.schedules
        );
    }

    #[test]
    fn promotion_edge_is_exercised() {
        // promotion-across-requests: panic, then MODEL_RECOVERY_STREAK
        // clean rounds promote the pool back to Healthy — verified by the
        // canonical reference the exploration compares against.
        let scenario = by_name("promotion-across-requests");
        let ex = explore(&scenario, Variant::Faithful);
        assert!(ex.clean(), "{:?}", ex.violations);
        // And the streak really is load-bearing: the degraded scenario
        // (one clean round only) must NOT end Healthy, which is exactly
        // what the PromoteWithoutStreak mutant violates above.
    }
}
