//! The shared execution context: one pool, one buffer arena, one ledger.
//!
//! Every multithreaded kernel used to construct its own [`WorkerPool`] and
//! allocate its own local-vector buffers, so a harness sweep over six
//! formats spawned six pools and the CG solver could not amortize setup
//! across iterations. [`ExecutionContext`] centralizes the three shared
//! concerns:
//!
//! * the **worker pool** — created once, borrowed by every kernel;
//! * the **buffer arena** — recycled, first-touch-initialized `f64`
//!   buffers for local output vectors and solver scratch;
//! * the **phase-time ledger** — a cross-kernel [`PhaseTimes`] accumulator;
//!
//! plus a registry of named [`ReductionStrategy`] objects so the symmetric
//! kernels select their reduction (naive / effective-ranges / indexing) by
//! name instead of hard-coding the three variants.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::FaultPlan;
use crate::pool::{WorkerPanic, WorkerPanicInfo, WorkerPool};
use crate::reduction::{
    EffectiveRangesReduction, IndexingReduction, NaiveReduction, RaceReduction, ReductionStrategy,
};
use crate::supervisor::{HealthState, PoolHealth, Supervision, SupervisionCell};
use crate::timing::PhaseTimes;

/// Locks a mutex, tolerating poisoning.
///
/// A worker panic re-raised inside [`ExecutionContext::with_pool`] poisons
/// the pool mutex while the pool itself is designed to survive the round;
/// honoring the poison flag would turn one caught panic into a permanently
/// unusable context.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Default high-water mark for arena-retained scratch, in `f64` elements
/// (32 Mi elements = 256 MiB) — generous for every suite matrix, small
/// enough that one huge tenant matrix cannot pin its scratch forever in a
/// long-lived service.
const ARENA_RETAINED_LIMIT_DEFAULT: usize = 32 << 20;

/// Recycled `f64` buffers, handed out as [`BufferLease`]s.
///
/// Invariant: every free buffer is entirely zero. Kernel-local leases rely
/// on the reduction phase re-zeroing what it wrote (the cheap path — no
/// per-call memset); scratch leases are scrubbed on drop.
///
/// Retained memory is capped: when the free list exceeds `retained_limit`
/// elements, the largest free buffers are dropped (they are zero by the
/// invariant, so trimming cannot violate it) until the list fits again.
struct BufferArena {
    free: Vec<Vec<f64>>,
    retained_limit: usize,
    trims: usize,
}

impl Default for BufferArena {
    fn default() -> Self {
        BufferArena {
            free: Vec::new(),
            retained_limit: ARENA_RETAINED_LIMIT_DEFAULT,
            trims: 0,
        }
    }
}

impl BufferArena {
    /// Takes the best free buffer for a request of `len` elements: the
    /// smallest one that already covers it, else the largest (to minimize
    /// growth), else a fresh empty vector. Longer buffers are truncated —
    /// the dropped tail is zero by the arena invariant.
    fn acquire(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            let better = match best {
                None => true,
                Some(j) => {
                    let (bi, bj) = (buf.len(), self.free[j].len());
                    if bj >= len {
                        bi >= len && bi < bj
                    } else {
                        bi > bj
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                buf.truncate(len);
                buf
            }
            None => Vec::new(),
        }
    }

    fn release(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
            self.trim();
        }
    }

    /// Sum of free-list capacities — the memory the arena is pinning.
    fn retained_elements(&self) -> usize {
        self.free.iter().map(|b| b.capacity()).sum()
    }

    /// Drops the largest free buffers until the retained total fits under
    /// the high-water mark. Dropped buffers are zero by the arena
    /// invariant, so trimming preserves it trivially.
    fn trim(&mut self) {
        while self.retained_elements() > self.retained_limit && !self.free.is_empty() {
            let largest = self
                .free
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match largest {
                Some(i) => {
                    self.free.swap_remove(i);
                    self.trims += 1;
                }
                None => break,
            }
        }
    }
}

/// Cache key for partition plans and race certificates: the matrix is
/// identified by its structural fingerprint, and a plan is only reusable
/// for the exact (thread count, strategy) pair it was computed for.
///
/// The `strategy` slot doubles as a namespace: strategy-independent
/// artifacts (e.g. the bare row partition, which every strategy shares)
/// are cached under reserved pseudo-strategy names like `"parts"`, so a
/// strategy *switch* on the same matrix re-derives only the
/// strategy-specific pieces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structural fingerprint of the matrix (values excluded).
    pub matrix: u64,
    /// Number of worker threads the plan partitions for.
    pub nthreads: usize,
    /// Strategy tag (or pseudo-strategy namespace) the artifact belongs to.
    pub strategy: String,
}

/// Default entry cap for the plan cache. Each entry is one (matrix,
/// threads, strategy) artifact; a sweep over the whole suite at several
/// thread counts stays far below this, while a long-lived service cycling
/// tenant matrices no longer grows without bound.
const PLAN_CACHE_CAPACITY_DEFAULT: usize = 256;

/// LRU-bounded store of memoized plan artifacts.
///
/// Recency is tracked with a monotone clock stamped on every hit and
/// insert; eviction removes the stalest entry. A linear scan on eviction is
/// fine — it only runs when the cache is full, and the cap is small.
struct PlanCache {
    map: HashMap<PlanKey, (Arc<dyn Any + Send + Sync>, u64)>,
    clock: u64,
    capacity: usize,
    evictions: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            map: HashMap::new(),
            clock: 0,
            capacity: PLAN_CACHE_CAPACITY_DEFAULT,
            evictions: 0,
        }
    }
}

impl PlanCache {
    fn get(&mut self, key: &PlanKey) -> Option<Arc<dyn Any + Send + Sync>> {
        self.clock += 1;
        let stamp = self.clock;
        self.map.get_mut(key).map(|entry| {
            entry.1 = stamp;
            Arc::clone(&entry.0)
        })
    }

    fn put(&mut self, key: PlanKey, plan: Arc<dyn Any + Send + Sync>) {
        self.clock += 1;
        self.map.insert(key, (plan, self.clock));
        self.shrink_to_capacity();
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.shrink_to_capacity();
    }

    fn shrink_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone());
            match stalest {
                Some(k) => {
                    self.map.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

/// The shared runtime layer: one pool, one arena, one ledger, and the
/// reduction-strategy registry.
///
/// Constructed once per run with [`ExecutionContext::new`] and passed to
/// every kernel as `Arc<ExecutionContext>`; interior mutability (mutexes)
/// keeps the public surface `&self` so many kernels can hold the context
/// at once while `run` still serializes parallel regions.
pub struct ExecutionContext {
    nthreads: usize,
    pool: Mutex<WorkerPool>,
    arena: Mutex<BufferArena>,
    ledger: Mutex<PhaseTimes>,
    strategies: RwLock<HashMap<&'static str, Arc<dyn ReductionStrategy>>>,
    /// Leases returned holding non-zero data on the normal (non-panicking,
    /// non-scratch) path. Each one is a broken lease contract; the drop
    /// path heals the buffer (re-zeroes it) and counts it here.
    dirty_returns: AtomicUsize,
    /// Memoized partition plans and race certificates, keyed by
    /// [`PlanKey`]. Values are type-erased so the runtime does not need to
    /// know the kernel crates' plan types. LRU-bounded (see [`PlanCache`]).
    plans: Mutex<PlanCache>,
    plan_hits: AtomicUsize,
    plan_misses: AtomicUsize,
    /// Supervision slot shared with the pool: installable/clearable without
    /// the pool lock, consulted at every round checkpoint.
    supervision: Arc<SupervisionCell>,
    /// Health record shared with the pool: lock-free reads even while a
    /// wedged round holds the pool mutex.
    health: Arc<HealthState>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Arc<FaultPlan>,
}

impl ExecutionContext {
    /// Creates a context with its single `nthreads`-worker pool and the
    /// three paper reduction strategies pre-registered (`"naive"`, `"eff"`,
    /// `"idx"`).
    ///
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Arc<Self> {
        #[cfg(any(test, feature = "fault-injection"))]
        let fault = FaultPlan::new();
        #[allow(unused_mut)]
        let mut pool = WorkerPool::new(nthreads);
        #[cfg(any(test, feature = "fault-injection"))]
        pool.set_fault_plan(Arc::clone(&fault));
        let supervision = pool.supervision_cell();
        let health = pool.health_state();
        let ctx = ExecutionContext {
            nthreads,
            pool: Mutex::new(pool),
            arena: Mutex::new(BufferArena::default()),
            ledger: Mutex::new(PhaseTimes::new()),
            strategies: RwLock::new(HashMap::new()),
            dirty_returns: AtomicUsize::new(0),
            plans: Mutex::new(PlanCache::default()),
            plan_hits: AtomicUsize::new(0),
            plan_misses: AtomicUsize::new(0),
            supervision,
            health,
            #[cfg(any(test, feature = "fault-injection"))]
            fault,
        };
        ctx.register_reduction(Arc::new(NaiveReduction));
        ctx.register_reduction(Arc::new(EffectiveRangesReduction));
        ctx.register_reduction(Arc::new(IndexingReduction));
        ctx.register_reduction(Arc::new(RaceReduction));
        Arc::new(ctx)
    }

    /// Number of workers in the shared pool.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Executes `body(tid)` on every worker of the shared pool, blocking
    /// until the round completes. Panics from workers propagate exactly as
    /// with [`WorkerPool::run`]; a record stays readable via
    /// [`ExecutionContext::take_last_panic`].
    ///
    /// The re-raise happens *after* the pool guard is released, so this
    /// path never poisons the pool mutex.
    pub fn run(&self, body: &(dyn Fn(usize) + Sync)) {
        if let Err(p) = self.try_run(body) {
            p.resume();
        }
    }

    /// Like [`ExecutionContext::run`], but a worker panic is returned as a
    /// [`WorkerPanic`] value instead of being re-raised. On `Err` the round
    /// has fully drained and the context is immediately reusable.
    pub fn try_run(&self, body: &(dyn Fn(usize) + Sync)) -> Result<(), WorkerPanic> {
        lock_ignore_poison(&self.pool).try_run(body)
    }

    /// Takes (and clears) the record of the most recent worker panic on the
    /// shared pool — including panics raised inside
    /// [`ExecutionContext::with_pool`] rounds (e.g. a reduction strategy).
    pub fn take_last_panic(&self) -> Option<WorkerPanicInfo> {
        lock_ignore_poison(&self.pool).take_last_panic()
    }

    /// The fault plan consulted by the shared pool and the lease return
    /// path; arm faults on it to test recovery behaviour.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// Runs `f` with exclusive access to the shared pool, for callers (like
    /// reduction strategies) that issue several rounds back to back.
    pub fn with_pool<R>(&self, f: impl FnOnce(&mut WorkerPool) -> R) -> R {
        f(&mut lock_ignore_poison(&self.pool))
    }

    /// Number of rounds ever dispatched on the shared pool (see
    /// [`WorkerPool::rounds_run`]).
    pub fn pool_rounds(&self) -> usize {
        lock_ignore_poison(&self.pool).rounds_run()
    }

    /// Looks up a memoized plan artifact; counts a hit or a miss.
    ///
    /// The value is type-erased — callers downcast to their own plan type
    /// (a foreign entry under the same key would be a fingerprint
    /// collision between kernels, which the `strategy` namespace prevents).
    pub fn plan_cache_get(&self, key: &PlanKey) -> Option<Arc<dyn Any + Send + Sync>> {
        let found = lock_ignore_poison(&self.plans).get(key);
        // RELAXED(hit/miss telemetry counters; no other memory depends on
        // their values and exact interleaving does not matter)
        match &found {
            Some(_) => self.plan_hits.fetch_add(1, Ordering::Relaxed),
            None => self.plan_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a plan artifact under `key` (last writer wins). When the
    /// cache exceeds its entry cap the least-recently-used entries are
    /// evicted and counted ([`ExecutionContext::plan_cache_evictions`]).
    pub fn plan_cache_put(&self, key: PlanKey, plan: Arc<dyn Any + Send + Sync>) {
        lock_ignore_poison(&self.plans).put(key, plan);
    }

    /// Entries currently memoized.
    pub fn plan_cache_len(&self) -> usize {
        lock_ignore_poison(&self.plans).map.len()
    }

    /// Changes the plan-cache entry cap, evicting LRU entries immediately
    /// if the cache is already over the new cap.
    pub fn plan_cache_set_capacity(&self, capacity: usize) {
        lock_ignore_poison(&self.plans).set_capacity(capacity);
    }

    /// Grows the plan-cache entry cap to hold at least `entries` more
    /// plans than are currently memoized, without ever shrinking it. A
    /// tuning sweep calls this before building one candidate engine per
    /// search point so the sweep cannot thrash its own LRU cache: every
    /// candidate's partition/index/certificate stays memoized until the
    /// winner is rebuilt and re-measured.
    pub fn plan_cache_reserve(&self, entries: usize) {
        let mut plans = lock_ignore_poison(&self.plans);
        let needed = plans.map.len().saturating_add(entries);
        if needed > plans.capacity {
            plans.set_capacity(needed);
        }
    }

    /// The plan-cache entry cap currently in force.
    pub fn plan_cache_capacity(&self) -> usize {
        lock_ignore_poison(&self.plans).capacity
    }

    /// Entries evicted by the LRU bound since the context was created.
    pub fn plan_cache_evictions(&self) -> usize {
        lock_ignore_poison(&self.plans).evictions
    }

    /// Cache hits observed by [`ExecutionContext::plan_cache_get`].
    pub fn plan_cache_hits(&self) -> usize {
        // RELAXED(telemetry read; approximate freshness is acceptable)
        self.plan_hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed by [`ExecutionContext::plan_cache_get`].
    pub fn plan_cache_misses(&self) -> usize {
        // RELAXED(telemetry read; approximate freshness is acceptable)
        self.plan_misses.load(Ordering::Relaxed)
    }

    /// Drops all memoized plans (certificates included) — for tests and
    /// for callers that renumber matrices in place and want to prove the
    /// stale-certificate path.
    pub fn clear_plan_cache(&self) {
        lock_ignore_poison(&self.plans).map.clear();
    }

    /// Installs supervision (cancellation token and/or deadline) for the
    /// request about to run on this context; the returned guard clears it
    /// on drop, including when the request unwinds with an
    /// [`Interrupt`](crate::Interrupt).
    ///
    /// The installation bypasses the pool lock, so supervision can be
    /// (re)configured even while a wedged round is still draining.
    pub fn supervise(&self, sup: Supervision) -> SupervisionGuard<'_> {
        self.supervision.install(sup);
        SupervisionGuard { ctx: self }
    }

    /// Current pool health (lock-free; readable while a wedged round holds
    /// the pool mutex).
    pub fn health(&self) -> PoolHealth {
        self.health.health()
    }

    /// The shared health record — failure/respawn/wedge counters and the
    /// MTBF estimate.
    pub fn health_state(&self) -> &Arc<HealthState> {
        &self.health
    }

    /// Worker failures (panics and wedges) observed on the shared pool.
    pub fn pool_failures(&self) -> usize {
        self.health.failures()
    }

    /// Workers respawned after failures on the shared pool.
    pub fn pool_respawns(&self) -> usize {
        self.health.respawns()
    }

    /// Mean time between worker failures, once two have been observed.
    pub fn pool_mtbf(&self) -> Option<std::time::Duration> {
        self.health.mtbf()
    }

    /// Leases a zeroed buffer of `len` elements for kernel local vectors.
    ///
    /// The lessee must return the buffer all-zero (the reduction phase
    /// re-zeroes exactly what the multiply phase wrote, so this costs
    /// nothing extra); debug builds verify the contract on drop. Buffer
    /// growth is zero-initialized in parallel on the pool so pages are
    /// first touched by the threads that will use them.
    pub fn lease(&self, len: usize) -> BufferLease<'_> {
        self.lease_inner(len, false)
    }

    /// Leases a zeroed scratch buffer that is scrubbed (re-zeroed) when the
    /// lease drops — for lessees like the CG solver whose buffers end the
    /// lease holding arbitrary data.
    pub fn lease_scratch(&self, len: usize) -> BufferLease<'_> {
        self.lease_inner(len, true)
    }

    fn lease_inner(&self, len: usize, scrub_on_drop: bool) -> BufferLease<'_> {
        let mut buf = lock_ignore_poison(&self.arena).acquire(len);
        if buf.len() < len {
            self.first_touch_extend(&mut buf, len);
        }
        debug_assert!(
            buf.iter().all(|&v| v == 0.0),
            "arena handed out a dirty buffer"
        );
        BufferLease {
            buf,
            ctx: self,
            scrub_on_drop,
        }
    }

    /// Extends `buf` to `len` elements, zero-initializing the new region in
    /// parallel so each worker first-touches the pages of the partition it
    /// will later write (NUMA-friendly page placement).
    fn first_touch_extend(&self, buf: &mut Vec<f64>, len: usize) {
        let old = buf.len();
        buf.reserve_exact(len - old);
        let base = buf.as_mut_ptr() as usize;
        let total = len - old;
        self.with_pool(|pool| {
            let p = pool.nthreads();
            pool.run(&|tid| {
                let lo = old + total * tid / p;
                let hi = old + total * (tid + 1) / p;
                // SAFETY(cert: first-touch): [lo, hi) regions are disjoint
                // across threads and lie within the capacity reserved
                // above; writing zeros to uninitialized f64 memory is valid
                // initialization.
                unsafe { std::ptr::write_bytes((base as *mut f64).add(lo), 0, hi - lo) };
            });
        });
        // SAFETY(cert: first-touch): all of [old, len) was initialized by
        // the parallel round above, which has fully drained.
        unsafe { buf.set_len(len) };
    }

    fn return_buffer(&self, buf: Vec<f64>) {
        lock_ignore_poison(&self.arena).release(buf);
    }

    /// Number of free buffers currently held by the arena (test hook).
    pub fn arena_free_buffers(&self) -> usize {
        lock_ignore_poison(&self.arena).free.len()
    }

    /// Whether every free buffer in the arena is entirely zero — the arena
    /// invariant that recovery tests assert after panicked or corrupted
    /// rounds.
    pub fn arena_all_free_zero(&self) -> bool {
        lock_ignore_poison(&self.arena)
            .free
            .iter()
            .all(|buf| buf.iter().all(|&v| v == 0.0))
    }

    /// How many leases came back dirty on the normal return path (broken
    /// lease contracts, healed and counted rather than recycled).
    pub fn dirty_lease_returns(&self) -> usize {
        // RELAXED(telemetry read; approximate freshness is acceptable)
        self.dirty_returns.load(Ordering::Relaxed)
    }

    /// Elements (sum of capacities) the arena free list is pinning.
    pub fn arena_retained_elements(&self) -> usize {
        lock_ignore_poison(&self.arena).retained_elements()
    }

    /// Changes the arena retained-memory high-water mark (in `f64`
    /// elements), trimming immediately if already above it.
    pub fn arena_set_retained_limit(&self, elements: usize) {
        let mut arena = lock_ignore_poison(&self.arena);
        arena.retained_limit = elements;
        arena.trim();
    }

    /// Free buffers dropped by the retained-memory bound since the context
    /// was created.
    pub fn arena_trims(&self) -> usize {
        lock_ignore_poison(&self.arena).trims
    }

    /// Adds a per-kernel or per-solve [`PhaseTimes`] delta to the ledger.
    pub fn ledger_add(&self, delta: &PhaseTimes) {
        lock_ignore_poison(&self.ledger).accumulate(delta);
    }

    /// A snapshot of the accumulated cross-kernel phase times.
    pub fn ledger(&self) -> PhaseTimes {
        *lock_ignore_poison(&self.ledger)
    }

    /// Atomically snapshots **and clears** the ledger.
    ///
    /// Repeated bench samples interleave measurement with accounting on a
    /// long-lived context; reading [`ExecutionContext::ledger`] and then
    /// calling [`ExecutionContext::reset_ledger`] separately would lose any
    /// delta added between the two calls. The swap happens under one lock
    /// acquisition, so consecutive snapshots partition the accumulated time
    /// exactly: their sum equals what a single uninterrupted ledger read
    /// would have seen.
    pub fn take_snapshot(&self) -> PhaseTimes {
        std::mem::take(&mut *lock_ignore_poison(&self.ledger))
    }

    /// Clears the ledger.
    pub fn reset_ledger(&self) {
        *lock_ignore_poison(&self.ledger) = PhaseTimes::new();
    }

    /// Registers (or replaces) a reduction strategy under its own name.
    pub fn register_reduction(&self, strategy: Arc<dyn ReductionStrategy>) {
        self.strategies
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(strategy.name(), strategy);
    }

    /// Looks up a reduction strategy by name (`"naive"`, `"eff"`, `"idx"`,
    /// or anything registered later).
    pub fn reduction(&self, name: &str) -> Option<Arc<dyn ReductionStrategy>> {
        self.strategies
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Names of all registered reduction strategies, sorted.
    pub fn reduction_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .strategies
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect();
        names.sort_unstable();
        names
    }
}

/// RAII guard for installed supervision: clears the context's supervision
/// slot on drop, so a request's deadline or token can never leak into the
/// next request — including when the request unwinds.
pub struct SupervisionGuard<'a> {
    ctx: &'a ExecutionContext,
}

impl Drop for SupervisionGuard<'_> {
    fn drop(&mut self) {
        self.ctx.supervision.clear();
    }
}

/// A checked-out arena buffer; derefs to `[f64]` and returns itself to the
/// arena on drop.
pub struct BufferLease<'a> {
    buf: Vec<f64>,
    ctx: &'a ExecutionContext,
    scrub_on_drop: bool,
}

impl std::ops::Deref for BufferLease<'_> {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl std::ops::DerefMut for BufferLease<'_> {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for BufferLease<'_> {
    /// Returns the buffer to the arena, upholding the all-free-buffers-are-
    /// zero invariant on *every* path:
    ///
    /// * scratch leases and leases dropped during a panic unwind are
    ///   scrubbed wholesale — an unwinding kernel has abandoned its buffers
    ///   in an arbitrary state, and handing that state to the next lessee
    ///   would corrupt unrelated results long after the panic was caught;
    /// * normal kernel leases are verified and healed: any stray non-zero
    ///   value is zeroed and the violation counted
    ///   ([`ExecutionContext::dirty_lease_returns`]). Debug builds flag the
    ///   broken contract unless the dirt was deliberately injected by the
    ///   fault plan.
    fn drop(&mut self) {
        #[allow(unused_mut)]
        let mut injected = false;
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(v) = self.ctx.fault.lease_return_hook() {
            let n = self.buf.len();
            if n > 0 {
                self.buf[n / 2] = v;
                injected = true;
            }
        }
        if self.scrub_on_drop || std::thread::panicking() {
            self.buf.fill(0.0);
        } else {
            let mut dirty = false;
            for v in self.buf.iter_mut() {
                if *v != 0.0 {
                    *v = 0.0;
                    dirty = true;
                }
            }
            if dirty {
                // RELAXED(telemetry counter; the scrub itself is ordered by
                // the arena mutex on reinsertion)
                self.ctx.dirty_returns.fetch_add(1, Ordering::Relaxed);
                debug_assert!(
                    injected,
                    "buffer lease returned dirty; the lessee must re-zero what it wrote"
                );
            }
        }
        // The lease is over: drop its shadow-memory entries so recycled
        // buffers do not alias earlier lessees' footprints.
        #[cfg(feature = "race-detector")]
        crate::race::forget_range(self.buf.as_ptr() as usize, self.buf.len());
        self.ctx.return_buffer(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn context_creates_exactly_one_pool() {
        let before = WorkerPool::pools_created();
        let ctx = ExecutionContext::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..5 {
            ctx.run(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 20);
        assert_eq!(WorkerPool::pools_created(), before + 1);
    }

    #[test]
    fn leases_recycle_buffers() {
        let ctx = ExecutionContext::new(2);
        {
            let lease = ctx.lease(128);
            assert_eq!(lease.len(), 128);
            assert!(lease.iter().all(|&v| v == 0.0));
        }
        assert_eq!(ctx.arena_free_buffers(), 1);
        {
            // Same-size request reuses the returned buffer.
            let _lease = ctx.lease(128);
            assert_eq!(ctx.arena_free_buffers(), 0);
        }
        {
            // A smaller request truncates rather than allocating anew.
            let lease = ctx.lease(64);
            assert_eq!(lease.len(), 64);
            assert_eq!(ctx.arena_free_buffers(), 0);
        }
    }

    #[test]
    fn scratch_lease_scrubs_on_drop() {
        let ctx = ExecutionContext::new(2);
        {
            let mut s = ctx.lease_scratch(32);
            s.fill(7.5);
        }
        // The scrubbed buffer comes back zeroed for the next lessee.
        let lease = ctx.lease(32);
        assert!(lease.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lease_growth_is_zeroed() {
        let ctx = ExecutionContext::new(3);
        drop(ctx.lease(10));
        let lease = ctx.lease(1000);
        assert_eq!(lease.len(), 1000);
        assert!(lease.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn builtin_strategies_registered() {
        let ctx = ExecutionContext::new(1);
        assert_eq!(ctx.reduction_names(), vec!["eff", "idx", "naive", "race"]);
        assert!(ctx.reduction("idx").unwrap().needs_index());
        assert!(ctx.reduction("race").unwrap().scheduled());
        assert!(ctx.reduction("race").unwrap().direct_write());
        assert!(!ctx.reduction("idx").unwrap().scheduled());
        assert!(!ctx.reduction("naive").unwrap().direct_write());
        assert!(ctx.reduction("nope").is_none());
    }

    #[test]
    fn ledger_accumulates_across_kernels() {
        let ctx = ExecutionContext::new(1);
        let mut t = PhaseTimes::new();
        t.multiply = std::time::Duration::from_millis(5);
        ctx.ledger_add(&t);
        ctx.ledger_add(&t);
        assert_eq!(ctx.ledger().multiply, std::time::Duration::from_millis(10));
        ctx.reset_ledger();
        assert_eq!(ctx.ledger(), PhaseTimes::new());
    }

    #[test]
    fn consecutive_snapshots_partition_a_full_run() {
        // A bench loop snapshots between samples without tearing down the
        // context; the snapshots must tile the accumulated time exactly.
        let ctx = ExecutionContext::new(1);
        let mut full = PhaseTimes::new();

        let mut a = PhaseTimes::new();
        a.multiply = std::time::Duration::from_millis(7);
        a.reduce = std::time::Duration::from_millis(3);
        ctx.ledger_add(&a);
        full.accumulate(&a);
        let snap1 = ctx.take_snapshot();

        let mut b = PhaseTimes::new();
        b.multiply = std::time::Duration::from_millis(2);
        b.vector_ops = std::time::Duration::from_millis(5);
        ctx.ledger_add(&b);
        full.accumulate(&b);
        let snap2 = ctx.take_snapshot();

        let mut sum = PhaseTimes::new();
        sum.accumulate(&snap1);
        sum.accumulate(&snap2);
        assert_eq!(sum, full);
        // The snapshot drained the ledger both times.
        assert_eq!(ctx.ledger(), PhaseTimes::new());
        assert_eq!(snap1, a);
        assert_eq!(snap2, b);
    }

    #[test]
    fn try_run_surfaces_worker_panics_as_values() {
        let ctx = ExecutionContext::new(3);
        let err = ctx
            .try_run(&|tid| {
                if tid == 1 {
                    panic!("kernel died");
                }
            })
            .unwrap_err();
        assert_eq!(err.tid(), 1);
        assert!(err.message().contains("kernel died"));
        // Clean rounds afterwards; last_panic was recorded and is takeable.
        let info = ctx.take_last_panic().expect("panic recorded");
        assert_eq!(info.tid, 1);
        assert_eq!(ctx.take_last_panic(), None);
        ctx.try_run(&|_| {}).expect("context reusable");
    }

    #[test]
    fn with_pool_panics_are_recorded_too() {
        // Reduction strategies run rounds through with_pool; a panic there
        // must still be attributable after the unwind is caught.
        let ctx = ExecutionContext::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.with_pool(|pool| {
                pool.run(&|tid| {
                    if tid == 0 {
                        panic!("reduction died");
                    }
                });
            });
        }));
        assert!(res.is_err());
        let info = ctx.take_last_panic().expect("panic recorded");
        assert_eq!(info.tid, 0);
        assert!(info.message.contains("reduction died"));
    }

    #[test]
    fn lease_dropped_during_unwind_is_scrubbed() {
        let ctx = ExecutionContext::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut lease = ctx.lease(64);
            lease.fill(3.25); // kernel wrote, then dies mid-flight
            panic!("kernel died holding a dirty lease");
        }));
        assert!(res.is_err());
        // The buffer went back to the arena scrubbed, not dirty.
        assert_eq!(ctx.arena_free_buffers(), 1);
        assert!(ctx.arena_all_free_zero());
        // And the next lessee observes zeros.
        let lease = ctx.lease(64);
        assert!(lease.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn injected_lease_corruption_is_healed_and_counted() {
        let ctx = ExecutionContext::new(2);
        ctx.fault_plan().arm_corrupt_lease(0, 9.75);
        drop(ctx.lease(32));
        assert_eq!(ctx.fault_plan().fired(), 1);
        assert_eq!(ctx.dirty_lease_returns(), 1);
        assert!(ctx.arena_all_free_zero());
        // Subsequent clean returns do not bump the counter.
        drop(ctx.lease(32));
        assert_eq!(ctx.dirty_lease_returns(), 1);
    }

    #[test]
    fn fault_plan_panic_surfaces_through_context_run() {
        let ctx = ExecutionContext::new(4);
        ctx.fault_plan().arm_worker_panic(3, 0);
        let err = ctx.try_run(&|_| {}).unwrap_err();
        assert_eq!(err.tid(), 3);
        assert!(err.message().contains("injected fault"));
        // Fully recovered: same context runs a clean round.
        let hits = AtomicUsize::new(0);
        ctx.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn plan_cache_lru_evicts_and_counts() {
        let ctx = ExecutionContext::new(1);
        ctx.plan_cache_set_capacity(3);
        let key = |i: u64| PlanKey {
            matrix: i,
            nthreads: 1,
            strategy: "t".to_string(),
        };
        for i in 0..3 {
            ctx.plan_cache_put(key(i), Arc::new(i));
        }
        assert_eq!(ctx.plan_cache_len(), 3);
        assert_eq!(ctx.plan_cache_evictions(), 0);

        // Touch key 0 so key 1 becomes the LRU, then overflow.
        assert!(ctx.plan_cache_get(&key(0)).is_some());
        ctx.plan_cache_put(key(3), Arc::new(3u64));
        assert_eq!(ctx.plan_cache_len(), 3);
        assert_eq!(ctx.plan_cache_evictions(), 1);
        assert!(ctx.plan_cache_get(&key(1)).is_none(), "LRU entry evicted");
        assert!(ctx.plan_cache_get(&key(0)).is_some(), "touched entry kept");
        assert!(ctx.plan_cache_get(&key(3)).is_some());

        // Shrinking the cap evicts immediately.
        ctx.plan_cache_set_capacity(1);
        assert_eq!(ctx.plan_cache_len(), 1);
        assert_eq!(ctx.plan_cache_evictions(), 3);
        assert_eq!(ctx.plan_cache_capacity(), 1);
    }

    #[test]
    fn arena_trims_oversized_retained_buffers() {
        let ctx = ExecutionContext::new(1);
        ctx.arena_set_retained_limit(100);
        drop(ctx.lease(80)); // fits: retained
        assert_eq!(ctx.arena_free_buffers(), 1);
        assert_eq!(ctx.arena_trims(), 0);

        drop(ctx.lease_scratch(300)); // 80 + 300 > 100: largest dropped
        assert!(ctx.arena_retained_elements() <= 100);
        assert!(ctx.arena_trims() >= 1);
        assert!(ctx.arena_all_free_zero(), "trim preserves the invariant");

        // Lowering the limit below what is retained trims immediately.
        ctx.arena_set_retained_limit(0);
        assert_eq!(ctx.arena_free_buffers(), 0);
        assert_eq!(ctx.arena_retained_elements(), 0);
    }

    #[test]
    fn supervise_guard_installs_and_clears() {
        use crate::supervisor::CancelToken;
        let ctx = ExecutionContext::new(2);
        let cancel = CancelToken::new();
        {
            let _guard = ctx.supervise(Supervision::with_cancel(cancel.clone()));
            cancel.cancel();
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ctx.run(&|_| {});
            }));
            let payload = res.unwrap_err();
            assert!(payload.downcast_ref::<crate::Interrupt>().is_some());
        }
        // Guard dropped: the same context runs unbounded again.
        let hits = AtomicUsize::new(0);
        ctx.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn health_counters_are_visible_on_the_context() {
        let ctx = ExecutionContext::new(2);
        assert_eq!(ctx.health(), PoolHealth::Healthy);
        assert_eq!(ctx.pool_failures(), 0);
        let err = ctx
            .try_run(&|tid| {
                if tid == 1 {
                    panic!("die");
                }
            })
            .unwrap_err();
        assert_eq!(err.tid(), 1);
        assert_eq!(ctx.health(), PoolHealth::Degraded);
        assert_eq!(ctx.pool_failures(), 1);
        assert_eq!(ctx.pool_respawns(), 1);
        assert_eq!(ctx.pool_mtbf(), None, "one failure gives no estimate");
    }

    #[test]
    fn pool_survives_worker_panic_through_context() {
        let ctx = ExecutionContext::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.run(&|tid| {
                if tid == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // The poisoned pool mutex must not brick the context.
        let hits = AtomicUsize::new(0);
        ctx.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
