//! A persistent SPMD worker pool.
//!
//! [`WorkerPool::run`] executes one closure on every worker with the
//! worker's thread id as argument and blocks until all workers finish —
//! the shape of every parallel region in the paper's kernels (multiply
//! phase, then reduction phase). Workers persist across calls, so the
//! 128-iteration measurement loops do not pay thread-spawn latency.
//!
//! # Soundness of the lifetime erasure
//!
//! `run` accepts a non-`'static` closure reference and transmutes it to
//! `'static` before handing it to the workers. This is the classic
//! scoped-pool argument (cf. `scoped_threadpool`): the closure cannot dangle
//! because `run` blocks until every worker has acknowledged completion, and
//! `&mut self` prevents two overlapping `run` calls from interleaving jobs.
//! A worker panic is caught, forwarded, and re-raised on the caller thread
//! after all workers have finished the round.
//!
//! # Supervision
//!
//! Every round starts with a cooperative checkpoint against the pool's
//! [`SupervisionCell`]: a cancelled token or expired [`Deadline`] unwinds
//! the *calling* thread with an [`Interrupt`] payload before any worker is
//! dispatched. A supervised round is additionally waited on with a timeout
//! (the watchdog): the instant a worker overruns the deadline the shared
//! [`HealthState`] is marked [`Wedged`](crate::PoolHealth::Wedged) —
//! observable by concurrent callers without the pool lock — and the wait
//! then *blocks* until the round drains, because the scoped-closure
//! soundness argument above forbids returning while any worker still holds
//! the erased borrow. Tardy and panicked workers are respawned before the
//! caller regains control, so the pool is always reusable on every exit
//! path. A worker that never returns keeps the caller blocked; bounding
//! that requires process-level isolation, which is out of scope — the
//! watchdog bounds *detection* latency and keeps concurrent requests
//! routable to the serial fallback.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::FaultPlan;
use crate::supervisor::{Deadline, HealthState, Interrupt, SupervisionCell};

/// Global count of pools ever constructed in this process.
///
/// The [`ExecutionContext`](crate::ExecutionContext) refactor promises that a
/// whole harness sweep (or a full CG solve) creates exactly one pool; tests
/// assert that promise by sampling this counter before and after.
static POOLS_CREATED: AtomicUsize = AtomicUsize::new(0);

/// The closure signature workers execute: SPMD body receiving a thread id.
type SpmdRef<'a> = &'a (dyn Fn(usize) + Sync);
type SpmdStatic = &'static (dyn Fn(usize) + Sync);

enum Command {
    Run(SpmdStatic),
    Shutdown,
}

/// Outcome of one worker round: the reporting worker's id plus `Ok` or the
/// captured panic payload. Carrying the id on *success* too lets the
/// watchdog identify exactly which workers were still outstanding when a
/// deadline fired.
type RoundResult = (usize, Result<(), Box<dyn Any + Send>>);

/// Best-effort human-readable rendering of a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A worker panic captured by [`WorkerPool::try_run`]: which worker died
/// and the payload it died with.
///
/// The round is guaranteed to have fully drained before this value exists —
/// no worker is still executing user code — so the caller may safely reuse
/// the pool, [`resume`](WorkerPanic::resume) the unwind, or convert the
/// panic into a structured error.
pub struct WorkerPanic {
    tid: usize,
    payload: Box<dyn Any + Send>,
}

impl WorkerPanic {
    /// Thread id of the worker that panicked (first one, if several did).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The panic message, when the payload was a string (the common case);
    /// a placeholder otherwise.
    pub fn message(&self) -> String {
        panic_message(&*self.payload)
    }

    /// A plain-data snapshot (tid + message) of this panic.
    pub fn info(&self) -> WorkerPanicInfo {
        WorkerPanicInfo {
            tid: self.tid,
            message: self.message(),
        }
    }

    /// Continues unwinding on the current thread with the original payload.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }

    /// Consumes the capture, yielding the raw panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send> {
        self.payload
    }
}

impl std::fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPanic")
            .field("tid", &self.tid)
            .field("message", &self.message())
            .finish()
    }
}

/// Plain-data record of the most recent worker panic (tid + message),
/// retained by the pool so panics re-raised through several layers (e.g. a
/// reduction strategy running rounds inside `with_pool`) can still be
/// reported as structured errors by the outermost caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanicInfo {
    /// Thread id of the worker that panicked.
    pub tid: usize,
    /// Rendered panic message.
    pub message: String,
}

/// A fixed-size pool of persistent worker threads executing SPMD regions.
///
/// ```
/// use symspmv_runtime::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let mut pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|tid| {
///     hits.fetch_add(tid + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
/// ```
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    cmd_txs: Vec<SyncSender<Command>>,
    done_rx: Receiver<RoundResult>,
    /// Master clone of the result sender, kept so respawned workers can be
    /// handed a fresh clone for the lifetime of the pool.
    done_tx: SyncSender<RoundResult>,
    last_panic: Option<WorkerPanicInfo>,
    /// Rounds dispatched on this pool (including panicked ones).
    rounds: usize,
    supervision: Arc<SupervisionCell>,
    health: Arc<HealthState>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<Arc<FaultPlan>>,
}

impl WorkerPool {
    /// Spawns a pool with `nthreads` workers (ids `0..nthreads`).
    ///
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a pool needs at least one worker");
        // RELAXED(process-lifetime telemetry counter; no other memory
        // depends on its value)
        POOLS_CREATED.fetch_add(1, Ordering::Relaxed);
        let (done_tx, done_rx) = sync_channel::<RoundResult>(nthreads);
        let mut cmd_txs = Vec::with_capacity(nthreads);
        let mut handles = Vec::with_capacity(nthreads);
        for tid in 0..nthreads {
            let (tx, handle) = spawn_worker(tid, done_tx.clone());
            cmd_txs.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            handles,
            cmd_txs,
            done_rx,
            done_tx,
            last_panic: None,
            rounds: 0,
            supervision: Arc::new(SupervisionCell::default()),
            health: Arc::new(HealthState::default()),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// Number of rounds ever dispatched on this pool.
    ///
    /// Kernel tests use the delta across a call to pin down exactly which
    /// phases ran — e.g. that a `p = 1` symmetric spmv skips the reduction
    /// round entirely.
    pub fn rounds_run(&self) -> usize {
        self.rounds
    }

    /// Number of workers.
    pub fn nthreads(&self) -> usize {
        self.cmd_txs.len()
    }

    /// How many pools have ever been constructed in this process.
    pub fn pools_created() -> usize {
        // RELAXED(telemetry read of a monotonic counter; approximate
        // freshness is acceptable)
        POOLS_CREATED.load(Ordering::Relaxed)
    }

    /// The supervision slot consulted at every round checkpoint. The
    /// context keeps a clone so a request's deadline/token can be installed
    /// without the pool lock.
    pub fn supervision_cell(&self) -> Arc<SupervisionCell> {
        Arc::clone(&self.supervision)
    }

    /// The shared health record of this pool (lock-free reads).
    pub fn health_state(&self) -> Arc<HealthState> {
        Arc::clone(&self.health)
    }

    /// Executes `body(tid)` on every worker and blocks until all complete.
    ///
    /// If any worker panics, the panic is re-raised here after the round has
    /// fully drained (no worker is left running user code). A record of the
    /// panic remains readable via [`WorkerPool::take_last_panic`].
    pub fn run<'a>(&mut self, body: SpmdRef<'a>) {
        if let Err(p) = self.try_run(body) {
            p.resume();
        }
    }

    /// Like [`WorkerPool::run`], but a worker panic is returned as a
    /// [`WorkerPanic`] value instead of being re-raised. On `Err` the round
    /// has fully drained and the pool is immediately reusable.
    ///
    /// When supervision is installed on this pool, a cancelled token or
    /// expired deadline instead unwinds the calling thread with an
    /// [`Interrupt`] payload (never a worker panic) — the fallible kernel
    /// entry points downcast it back into a typed error.
    pub fn try_run<'a>(&mut self, body: SpmdRef<'a>) -> Result<(), WorkerPanic> {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = &self.fault {
            let plan = Arc::clone(plan);
            let round = plan.begin_round();
            let wrapped = move |tid: usize| {
                plan.worker_hook(round, tid);
                body(tid);
            };
            return self.dispatch(&wrapped);
        }
        self.dispatch(body)
    }

    fn dispatch<'a>(&mut self, body: SpmdRef<'a>) -> Result<(), WorkerPanic> {
        // Cooperative checkpoint: a supervised request stops at the next
        // phase boundary. The unwind passes through `BufferLease` drops,
        // which scrub on panic, so the arena invariant survives.
        let deadline = match self.supervision.snapshot() {
            Some(sup) => {
                if sup.cancel.poll() {
                    std::panic::panic_any(Interrupt::Cancelled);
                }
                if let Some(d) = sup.deadline {
                    if d.expired() {
                        std::panic::panic_any(Interrupt::DeadlineExceeded { wedged: false });
                    }
                }
                sup.deadline
            }
            None => None,
        };
        self.rounds += 1;
        #[cfg(feature = "race-detector")]
        {
            // Tag every worker with its (tid, round-epoch) identity for the
            // shadow-memory detector, then run the round through the normal
            // path. The tag is cleared even when the body panics — the
            // worker loop catches the unwind, so the closure's own cleanup
            // would be skipped; an explicit drop guard is not needed because
            // a stale tag is overwritten at the next round start and workers
            // never write between rounds.
            let epoch = crate::race::next_epoch();
            let traced = move |tid: usize| {
                crate::race::set_current(tid, epoch);
                body(tid);
                crate::race::clear_current();
            };
            return self.dispatch_inner(&traced, deadline);
        }
        #[cfg(not(feature = "race-detector"))]
        self.dispatch_inner(body, deadline)
    }

    fn dispatch_inner<'a>(
        &mut self,
        body: SpmdRef<'a>,
        deadline: Option<Deadline>,
    ) -> Result<(), WorkerPanic> {
        // SAFETY(cert: pool-barrier): the classic scoped-pool argument (see
        // module docs) — the erased borrow cannot dangle because this frame
        // blocks until every worker acknowledges completion below (the
        // watchdog arm only flags health and then keeps blocking; no exit
        // path skips the drain), and `&mut self` serializes rounds so no
        // other job aliases the slot.
        let body_static: SpmdStatic = unsafe { std::mem::transmute(body) };
        for tx in &self.cmd_txs {
            // Workers only exit on an explicit Shutdown (they catch kernel
            // panics), so a closed channel mid-round cannot happen.
            tx.send(Command::Run(body_static))
                .unwrap_or_else(|_| unreachable!("worker command channel closed mid-round"));
        }
        let n = self.cmd_txs.len();
        let mut reported = vec![false; n];
        let mut panicked: Vec<usize> = Vec::new();
        let mut tardy: Vec<usize> = Vec::new();
        let mut wedged = false;
        let mut first: Option<WorkerPanic> = None;
        let mut received = 0usize;
        while received < n {
            let msg = match deadline.filter(|_| !wedged) {
                Some(d) => match self.done_rx.recv_timeout(d.remaining()) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => {
                        // Watchdog: a worker overran the deadline. Mark the
                        // pool Wedged *now* so concurrent requests observe
                        // it and route to the fallback, then keep draining —
                        // returning early would dangle the erased borrow.
                        wedged = true;
                        self.health.mark_wedged();
                        tardy = (0..n).filter(|&t| !reported[t]).collect();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        unreachable!("worker result channel closed mid-round")
                    }
                },
                None => self
                    .done_rx
                    .recv()
                    .unwrap_or_else(|_| unreachable!("worker result channel closed mid-round")),
            };
            received += 1;
            let (tid, outcome) = msg;
            reported[tid] = true;
            if let Err(payload) = outcome {
                panicked.push(tid);
                if first.is_none() {
                    first = Some(WorkerPanic { tid, payload });
                }
            }
        }
        // The round has drained; every exit path below leaves the pool
        // reusable. Respawn every worker that panicked, and every worker
        // that was still outstanding when the watchdog fired (a tardy
        // worker finished eventually, but cannot be distinguished from one
        // stuck in a slow-degrading state — a fresh thread is cheap).
        for &tid in &panicked {
            self.health.record_failure();
            self.respawn_worker(tid);
        }
        if let Some(p) = &first {
            self.last_panic = Some(p.info());
        }
        if wedged {
            for &tid in &tardy {
                if !panicked.contains(&tid) {
                    self.respawn_worker(tid);
                }
            }
            self.health.unwedge();
            std::panic::panic_any(Interrupt::DeadlineExceeded { wedged: true });
        }
        match first {
            Some(p) => Err(p),
            None => {
                self.health.record_success();
                Ok(())
            }
        }
    }

    /// Replaces worker `tid` with a freshly spawned thread: the old worker
    /// (idle between rounds by the drain guarantee) is shut down and
    /// joined, and the respawn is counted on the shared health record.
    fn respawn_worker(&mut self, tid: usize) {
        let (tx, handle) = spawn_worker(tid, self.done_tx.clone());
        let old_tx = std::mem::replace(&mut self.cmd_txs[tid], tx);
        let _ = old_tx.send(Command::Shutdown);
        let old_handle = std::mem::replace(&mut self.handles[tid], handle);
        let _ = old_handle.join();
        self.health.record_respawn();
    }

    /// Takes (and clears) the record of the most recent worker panic.
    ///
    /// Set by both [`WorkerPool::run`] and [`WorkerPool::try_run`]; lets a
    /// caller that caught a re-raised panic several layers up recover which
    /// worker died without threading the payload through those layers.
    pub fn take_last_panic(&mut self) -> Option<WorkerPanicInfo> {
        self.last_panic.take()
    }

    /// Attaches a fault plan consulted at the start of every round; workers
    /// then apply any fault armed for their (round, tid) coordinate.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }
}

fn spawn_worker(
    tid: usize,
    done: SyncSender<RoundResult>,
) -> (SyncSender<Command>, JoinHandle<()>) {
    let (tx, rx) = sync_channel::<Command>(1);
    let handle = std::thread::Builder::new()
        .name(format!("symspmv-worker-{tid}"))
        .spawn(move || worker_loop(tid, rx, done))
        .unwrap_or_else(|e| panic!("failed to spawn worker thread {tid}: {e}"));
    (tx, handle)
}

fn worker_loop(tid: usize, rx: Receiver<Command>, done: SyncSender<RoundResult>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Run(body) => {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| body(tid)));
                // The caller counts acknowledgements; it cannot have dropped
                // the receiver mid-round, but a panic on the caller side
                // after the round is none of our business — ignore failures.
                let _ = done.send((tid, outcome));
            }
            Command::Shutdown => break,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Command::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{CancelToken, PoolHealth, Supervision};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_threads_run_with_distinct_ids() {
        let mut pool = WorkerPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.run(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn borrows_stack_data() {
        let data: Vec<usize> = (0..100).collect();
        let mut out = vec![0usize; 4];
        let out_ptr = std::sync::Mutex::new(&mut out);
        let mut pool = WorkerPool::new(4);
        pool.run(&|tid| {
            let chunk: usize = data[tid * 25..(tid + 1) * 25].iter().sum();
            out_ptr.lock().unwrap()[tid] = chunk;
        });
        assert_eq!(out.iter().sum::<usize>(), 4950);
    }

    #[test]
    fn sequential_rounds_reuse_workers() {
        let mut pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // Pool is still usable after a panicked round.
        let counter = AtomicUsize::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn multiple_worker_panics_reraise_exactly_once_and_pool_survives() {
        // Regression test for the panic path: even when *every* worker
        // panics in the same round, the caller sees exactly one re-raised
        // panic (not one per worker), and the pool stays usable afterwards.
        let mut pool = WorkerPool::new(4);
        let raised = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| panic!("worker {tid} failed"));
        }));
        if res.is_err() {
            raised.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(raised.load(Ordering::Relaxed), 1);
        let payload = res.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| panic!("unexpected payload type"));
        assert!(msg.contains("failed"), "payload: {msg}");

        // The round fully drained: a subsequent run executes on all workers
        // without deadlocking or seeing stale panic payloads.
        for _ in 0..3 {
            let counter = AtomicUsize::new(0);
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn pool_creation_counter_increments() {
        let before = WorkerPool::pools_created();
        let _a = WorkerPool::new(1);
        let _b = WorkerPool::new(2);
        assert!(WorkerPool::pools_created() >= before + 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn try_run_reports_tid_and_message_and_records_last_panic() {
        let mut pool = WorkerPool::new(4);
        let res = pool.try_run(&|tid| {
            if tid == 2 {
                panic!("round failed on {tid}");
            }
        });
        let p = res.unwrap_err();
        assert_eq!(p.tid(), 2);
        assert!(p.message().contains("round failed on 2"), "{}", p.message());
        let info = pool.take_last_panic().expect("panic must be recorded");
        assert_eq!(info.tid, 2);
        assert!(info.message.contains("round failed"));
        assert_eq!(pool.take_last_panic(), None, "take clears the record");

        // The pool is reusable straight off the Err path.
        let counter = AtomicUsize::new(0);
        pool.try_run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean round after a panicked one");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn run_also_records_last_panic() {
        let mut pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        let info = pool.take_last_panic().expect("run must record the panic");
        assert_eq!(info.tid, 1);
    }

    #[test]
    fn fault_plan_kills_the_chosen_worker_in_the_chosen_round() {
        let plan = crate::fault::FaultPlan::new();
        let mut pool = WorkerPool::new(3);
        pool.set_fault_plan(Arc::clone(&plan));
        plan.arm_worker_panic(1, 1); // second round from now

        pool.try_run(&|_| {}).expect("round 0 is clean");
        let p = pool.try_run(&|_| {}).unwrap_err();
        assert_eq!(p.tid(), 1);
        assert!(p.message().contains("injected fault"), "{}", p.message());
        assert_eq!(plan.fired(), 1);
        pool.try_run(&|_| {}).expect("round 2 is clean again");
    }

    #[test]
    fn single_thread_pool_works() {
        let mut pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicked_worker_is_respawned_and_counted() {
        let mut pool = WorkerPool::new(3);
        let health = pool.health_state();
        assert_eq!(health.health(), PoolHealth::Healthy);
        let res = pool.try_run(&|tid| {
            if tid == 0 {
                panic!("die once");
            }
        });
        assert!(res.is_err());
        assert_eq!(health.failures(), 1);
        assert_eq!(health.respawns(), 1);
        assert_eq!(health.health(), PoolHealth::Degraded);

        // The replacement worker serves subsequent rounds (all ids present).
        let mask = AtomicUsize::new(0);
        pool.run(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b111);

        // Enough clean rounds heal the pool.
        for _ in 0..HealthState::RECOVERY_STREAK {
            pool.run(&|_| {});
        }
        assert_eq!(health.health(), PoolHealth::Healthy);
    }

    #[test]
    fn cancelled_token_interrupts_at_the_next_checkpoint() {
        let mut pool = WorkerPool::new(2);
        let cancel = CancelToken::new();
        pool.supervision_cell()
            .install(Supervision::with_cancel(cancel.clone()));
        cancel.cancel();
        let ran = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = res.unwrap_err();
        let interrupt = payload
            .downcast_ref::<Interrupt>()
            .unwrap_or_else(|| panic!("payload must be an Interrupt"));
        assert_eq!(*interrupt, Interrupt::Cancelled);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no worker was dispatched");

        // Clearing supervision restores normal service on the same pool.
        pool.supervision_cell().clear();
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn expired_deadline_interrupts_before_dispatch() {
        let mut pool = WorkerPool::new(2);
        pool.supervision_cell()
            .install(Supervision::deadline_within(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|_| {});
        }));
        let payload = res.unwrap_err();
        let interrupt = payload
            .downcast_ref::<Interrupt>()
            .unwrap_or_else(|| panic!("payload must be an Interrupt"));
        assert_eq!(*interrupt, Interrupt::DeadlineExceeded { wedged: false });
        pool.supervision_cell().clear();
    }

    #[test]
    fn watchdog_marks_pool_wedged_drains_and_respawns() {
        let mut pool = WorkerPool::new(3);
        let health = pool.health_state();
        pool.supervision_cell()
            .install(Supervision::deadline_within(Duration::from_millis(40)));
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| {
                if tid == 1 {
                    // Sleeps well past the deadline: the watchdog must fire
                    // at ~40ms, not wait the full sleep before reporting.
                    std::thread::sleep(Duration::from_millis(200));
                }
            });
        }));
        let payload = res.unwrap_err();
        let interrupt = payload
            .downcast_ref::<Interrupt>()
            .unwrap_or_else(|| panic!("payload must be an Interrupt"));
        assert_eq!(*interrupt, Interrupt::DeadlineExceeded { wedged: true });
        assert_eq!(health.wedges(), 1);
        assert!(health.respawns() >= 1, "tardy worker must be respawned");
        // The drain completed and the wedge auto-downgraded.
        assert_eq!(health.health(), PoolHealth::Degraded);

        // The pool serves again immediately (supervision cleared).
        pool.supervision_cell().clear();
        let mask = AtomicUsize::new(0);
        pool.run(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b111);
    }

    #[test]
    fn fused_cancellation_lands_between_rounds() {
        let mut pool = WorkerPool::new(2);
        let cancel = CancelToken::new();
        pool.supervision_cell()
            .install(Supervision::with_cancel(cancel.clone()));
        cancel.cancel_after_checkpoints(1);
        let rounds = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // First round passes its checkpoint; the second trips.
            pool.run(&|tid| {
                if tid == 0 {
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
            });
            pool.run(&|tid| {
                if tid == 0 {
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
            });
        }));
        assert!(res.is_err());
        assert_eq!(
            rounds.load(Ordering::Relaxed),
            1,
            "exactly one round ran before the fuse tripped"
        );
        pool.supervision_cell().clear();
    }
}
