//! A persistent SPMD worker pool.
//!
//! [`WorkerPool::run`] executes one closure on every worker with the
//! worker's thread id as argument and blocks until all workers finish —
//! the shape of every parallel region in the paper's kernels (multiply
//! phase, then reduction phase). Workers persist across calls, so the
//! 128-iteration measurement loops do not pay thread-spawn latency.
//!
//! # Soundness of the lifetime erasure
//!
//! `run` accepts a non-`'static` closure reference and transmutes it to
//! `'static` before handing it to the workers. This is the classic
//! scoped-pool argument (cf. `scoped_threadpool`): the closure cannot dangle
//! because `run` blocks until every worker has acknowledged completion, and
//! `&mut self` prevents two overlapping `run` calls from interleaving jobs.
//! A worker panic is caught, forwarded, and re-raised on the caller thread
//! after all workers have finished the round.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// Global count of pools ever constructed in this process.
///
/// The [`ExecutionContext`](crate::ExecutionContext) refactor promises that a
/// whole harness sweep (or a full CG solve) creates exactly one pool; tests
/// assert that promise by sampling this counter before and after.
static POOLS_CREATED: AtomicUsize = AtomicUsize::new(0);

/// The closure signature workers execute: SPMD body receiving a thread id.
type SpmdRef<'a> = &'a (dyn Fn(usize) + Sync);
type SpmdStatic = &'static (dyn Fn(usize) + Sync);

enum Command {
    Run(SpmdStatic),
    Shutdown,
}

/// Outcome of one worker round: `Ok` or a captured panic payload.
type RoundResult = Result<(), Box<dyn std::any::Any + Send>>;

/// A fixed-size pool of persistent worker threads executing SPMD regions.
///
/// ```
/// use symspmv_runtime::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let mut pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|tid| {
///     hits.fetch_add(tid + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
/// ```
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    cmd_txs: Vec<SyncSender<Command>>,
    done_rx: Receiver<RoundResult>,
}

impl WorkerPool {
    /// Spawns a pool with `nthreads` workers (ids `0..nthreads`).
    ///
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a pool needs at least one worker");
        POOLS_CREATED.fetch_add(1, Ordering::Relaxed);
        let (done_tx, done_rx) = sync_channel::<RoundResult>(nthreads);
        let mut cmd_txs = Vec::with_capacity(nthreads);
        let mut handles = Vec::with_capacity(nthreads);
        for tid in 0..nthreads {
            let (tx, rx) = sync_channel::<Command>(1);
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("symspmv-worker-{tid}"))
                .spawn(move || worker_loop(tid, rx, done))
                .expect("failed to spawn worker thread");
            cmd_txs.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            handles,
            cmd_txs,
            done_rx,
        }
    }

    /// Number of workers.
    pub fn nthreads(&self) -> usize {
        self.cmd_txs.len()
    }

    /// How many pools have ever been constructed in this process.
    pub fn pools_created() -> usize {
        POOLS_CREATED.load(Ordering::Relaxed)
    }

    /// Executes `body(tid)` on every worker and blocks until all complete.
    ///
    /// If any worker panics, the panic is re-raised here after the round has
    /// fully drained (no worker is left running user code).
    pub fn run<'a>(&mut self, body: SpmdRef<'a>) {
        // SAFETY: see module docs — we block until every worker reports
        // completion below, so the erased borrow never outlives the frame,
        // and `&mut self` serializes rounds.
        let body_static: SpmdStatic = unsafe { std::mem::transmute(body) };
        for tx in &self.cmd_txs {
            tx.send(Command::Run(body_static)).expect("worker hung up");
        }
        let mut panic_payload = None;
        for _ in 0..self.cmd_txs.len() {
            match self.done_rx.recv().expect("worker hung up") {
                Ok(()) => {}
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    }
}

fn worker_loop(tid: usize, rx: Receiver<Command>, done: SyncSender<RoundResult>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Run(body) => {
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(tid)));
                // The caller counts acknowledgements; it cannot have dropped
                // the receiver mid-round, but a panic on the caller side
                // after the round is none of our business — ignore failures.
                let _ = done.send(result);
            }
            Command::Shutdown => break,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Command::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_threads_run_with_distinct_ids() {
        let mut pool = WorkerPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.run(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn borrows_stack_data() {
        let data: Vec<usize> = (0..100).collect();
        let mut out = vec![0usize; 4];
        let out_ptr = std::sync::Mutex::new(&mut out);
        let mut pool = WorkerPool::new(4);
        pool.run(&|tid| {
            let chunk: usize = data[tid * 25..(tid + 1) * 25].iter().sum();
            out_ptr.lock().unwrap()[tid] = chunk;
        });
        assert_eq!(out.iter().sum::<usize>(), 4950);
    }

    #[test]
    fn sequential_rounds_reuse_workers() {
        let mut pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // Pool is still usable after a panicked round.
        let counter = AtomicUsize::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn multiple_worker_panics_reraise_exactly_once_and_pool_survives() {
        // Regression test for the panic path: even when *every* worker
        // panics in the same round, the caller sees exactly one re-raised
        // panic (not one per worker), and the pool stays usable afterwards.
        let mut pool = WorkerPool::new(4);
        let raised = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid| panic!("worker {tid} failed"));
        }));
        if res.is_err() {
            raised.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(raised.load(Ordering::Relaxed), 1);
        let payload = res.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| panic!("unexpected payload type"));
        assert!(msg.contains("failed"), "payload: {msg}");

        // The round fully drained: a subsequent run executes on all workers
        // without deadlocking or seeing stale panic payloads.
        for _ in 0..3 {
            let counter = AtomicUsize::new(0);
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn pool_creation_counter_increments() {
        let before = WorkerPool::pools_created();
        let _a = WorkerPool::new(1);
        let _b = WorkerPool::new(2);
        assert!(WorkerPool::pools_created() >= before + 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn single_thread_pool_works() {
        let mut pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
