//! Deterministic fault injection for the execution runtime.
//!
//! Production robustness claims — "a dying worker cannot poison the shared
//! [`ExecutionContext`](crate::ExecutionContext)" — are only credible if a
//! test can *make* a worker die at a chosen point. A [`FaultPlan`] is a
//! small registry of armed faults consulted at two sites:
//!
//! * **worker rounds** — every [`WorkerPool::run`](crate::WorkerPool::run)
//!   (and `try_run`) round increments a round counter; an armed fault can
//!   make a chosen worker panic, or delay it, in a chosen round. This is
//!   how tests kill a worker mid-multiply or mid-reduction.
//! * **lease returns** — every buffer returned to the context's arena
//!   increments a lease counter; an armed fault can corrupt a chosen
//!   returning buffer, simulating a kernel that breaks the all-zero lease
//!   contract. Recovery tests then assert the arena heals (the buffer is
//!   scrubbed and the violation counted) instead of recycling garbage.
//!
//! The module is compiled only for tests and under the `fault-injection`
//! cargo feature — release builds of the library carry no injection hooks
//! beyond the fields' existence being compiled out entirely.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an armed worker-round fault does to its target worker.
#[derive(Debug, Clone)]
pub enum WorkerFault {
    /// The worker panics instead of executing its share of the round.
    Panic,
    /// The worker sleeps before executing its share of the round.
    Delay(Duration),
    /// The worker wedges: it sleeps long enough to overrun any reasonable
    /// request deadline, exercising the watchdog/Wedged path. Semantically
    /// identical to [`WorkerFault::Delay`] at the injection site; the
    /// distinct variant keeps chaos schedules self-describing.
    Wedge(Duration),
}

#[derive(Debug)]
enum Armed {
    Worker {
        at_round: usize,
        tid: usize,
        fault: WorkerFault,
    },
    CorruptLease {
        at_return: usize,
        value: f64,
    },
}

/// A registry of armed faults, shared between an
/// [`ExecutionContext`](crate::ExecutionContext), its pool, and the test
/// driving them.
///
/// Counters are monotone: rounds count pool rounds *started* since the
/// plan was created, lease returns count buffers returned to the arena.
/// Faults are armed relative to "now" (`in_rounds = 0` targets the next
/// round) and fire exactly once.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rounds: AtomicUsize,
    lease_returns: AtomicUsize,
    armed: Mutex<Vec<Armed>>,
    fired: AtomicUsize,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultPlan::default())
    }

    /// Arms worker `tid` to panic in the `in_rounds`-th pool round from now
    /// (`0` = the next round).
    pub fn arm_worker_panic(&self, tid: usize, in_rounds: usize) {
        self.arm_worker(tid, in_rounds, WorkerFault::Panic);
    }

    /// Arms worker `tid` to sleep `delay` at the start of the
    /// `in_rounds`-th pool round from now (`0` = the next round) —
    /// stretches a multiply or reduction phase without killing it.
    pub fn arm_worker_delay(&self, tid: usize, in_rounds: usize, delay: Duration) {
        self.arm_worker(tid, in_rounds, WorkerFault::Delay(delay));
    }

    /// Arms worker `tid` to wedge (sleep `sleep`, intended to exceed the
    /// request deadline) in the `in_rounds`-th pool round from now (`0` =
    /// the next round). The supervised dispatch watchdog must detect the
    /// overrun at the deadline, mark the pool Wedged, and respawn the
    /// worker once the round drains.
    pub fn arm_worker_wedge(&self, tid: usize, in_rounds: usize, sleep: Duration) {
        self.arm_worker(tid, in_rounds, WorkerFault::Wedge(sleep));
    }

    fn arm_worker(&self, tid: usize, in_rounds: usize, fault: WorkerFault) {
        let at_round = self.rounds.load(Ordering::SeqCst) + in_rounds;
        self.lock().push(Armed::Worker {
            at_round,
            tid,
            fault,
        });
    }

    /// Arms corruption of the `in_returns`-th buffer returned to the arena
    /// from now (`0` = the next return): one element of the buffer is set
    /// to `value` just before the return-path integrity check runs.
    pub fn arm_corrupt_lease(&self, in_returns: usize, value: f64) {
        let at_return = self.lease_returns.load(Ordering::SeqCst) + in_returns;
        self.lock().push(Armed::CorruptLease { at_return, value });
    }

    /// How many armed faults have fired so far.
    pub fn fired(&self) -> usize {
        self.fired.load(Ordering::SeqCst)
    }

    /// How many faults are still armed (scheduled but not yet fired).
    pub fn pending(&self) -> usize {
        self.lock().len()
    }

    /// Removes every armed fault without firing it.
    pub fn disarm_all(&self) {
        self.lock().clear();
    }

    /// Pool rounds started since the plan was created (test hook for
    /// arming faults at absolute positions).
    pub fn rounds_started(&self) -> usize {
        self.rounds.load(Ordering::SeqCst)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Armed>> {
        // A panicking fault hook never holds this lock, but a test thread
        // observing a re-raised panic may; tolerate poisoning.
        self.armed.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Called by the pool at the start of each round; returns the round id.
    pub(crate) fn begin_round(&self) -> usize {
        self.rounds.fetch_add(1, Ordering::SeqCst)
    }

    /// Called by every worker at the start of round `round`. Sleeps or
    /// panics when a matching fault is armed.
    pub(crate) fn worker_hook(&self, round: usize, tid: usize) {
        let mut to_apply = Vec::new();
        {
            let mut armed = self.lock();
            let mut i = 0;
            while i < armed.len() {
                match &armed[i] {
                    Armed::Worker {
                        at_round, tid: t, ..
                    } if *at_round == round && *t == tid => {
                        if let Armed::Worker { fault, .. } = armed.swap_remove(i) {
                            to_apply.push(fault);
                        }
                    }
                    _ => i += 1,
                }
            }
        }
        for fault in to_apply {
            self.fired.fetch_add(1, Ordering::SeqCst);
            match fault {
                WorkerFault::Delay(d) | WorkerFault::Wedge(d) => std::thread::sleep(d),
                WorkerFault::Panic => {
                    panic!("injected fault: worker {tid} panicked in round {round}")
                }
            }
        }
    }

    /// Called for every buffer returned to the arena. Returns the value to
    /// poke into the buffer when a corruption fault targets this return.
    pub(crate) fn lease_return_hook(&self) -> Option<f64> {
        let k = self.lease_returns.fetch_add(1, Ordering::SeqCst);
        let mut armed = self.lock();
        let pos = armed
            .iter()
            .position(|a| matches!(a, Armed::CorruptLease { at_return, .. } if *at_return == k))?;
        if let Armed::CorruptLease { value, .. } = armed.swap_remove(pos) {
            drop(armed);
            self.fired.fetch_add(1, Ordering::SeqCst);
            Some(value)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_faults_fire_once_at_the_armed_round() {
        let plan = FaultPlan::new();
        plan.arm_worker_delay(1, 1, Duration::from_millis(1));
        assert_eq!(plan.pending(), 1);

        let r0 = plan.begin_round();
        plan.worker_hook(r0, 1); // wrong round: nothing fires
        assert_eq!(plan.fired(), 0);

        let r1 = plan.begin_round();
        plan.worker_hook(r1, 0); // wrong worker: nothing fires
        assert_eq!(plan.fired(), 0);
        plan.worker_hook(r1, 1);
        assert_eq!(plan.fired(), 1);
        assert_eq!(plan.pending(), 0);

        // Re-running the hook does not re-fire.
        plan.worker_hook(r1, 1);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn panic_fault_panics_with_marker() {
        let plan = FaultPlan::new();
        plan.arm_worker_panic(2, 0);
        let r = plan.begin_round();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.worker_hook(r, 2);
        }));
        let msg = res
            .unwrap_err()
            .downcast::<String>()
            .map(|b| *b)
            .unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn lease_corruption_targets_the_chosen_return() {
        let plan = FaultPlan::new();
        plan.arm_corrupt_lease(1, 7.5);
        assert_eq!(plan.lease_return_hook(), None);
        assert_eq!(plan.lease_return_hook(), Some(7.5));
        assert_eq!(plan.lease_return_hook(), None);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn wedge_fault_sleeps_the_target_worker() {
        let plan = FaultPlan::new();
        plan.arm_worker_wedge(0, 0, Duration::from_millis(10));
        let r = plan.begin_round();
        let start = std::time::Instant::now();
        plan.worker_hook(r, 0);
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn disarm_clears_pending_faults() {
        let plan = FaultPlan::new();
        plan.arm_worker_panic(0, 0);
        plan.arm_corrupt_lease(0, 1.0);
        assert_eq!(plan.pending(), 2);
        plan.disarm_all();
        assert_eq!(plan.pending(), 0);
        let r = plan.begin_round();
        plan.worker_hook(r, 0); // nothing fires
        assert_eq!(plan.fired(), 0);
    }
}
