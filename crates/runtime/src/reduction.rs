//! Pluggable reduction strategies for symmetric kernels (Fig. 3 b/c/d).
//!
//! The paper's insight (§III) is that *how* transposed contributions are
//! folded back into the output vector is a scheduling concern layered over
//! the storage format, not part of it: SSS, CSX-Sym and the hybrid format
//! all produce the same local-vector writes and can share one reduction
//! implementation. This module captures that split as a trait object:
//!
//! * [`NaiveReduction`] — full-length local vector per thread; the
//!   reduction sweeps all `p·N` elements (Alg. 3, `ws = 8pN`, Eq. 3).
//! * [`EffectiveRangesReduction`] — Batista et al.: thread `i` writes rows
//!   `[start_i, end_i)` directly and keeps a local vector only for its
//!   effective region `[0, start_i)` (`ws ≈ 4(p−1)N`, Eq. 4).
//! * [`IndexingReduction`] — the paper's contribution: a symbolic
//!   `(vid, idx)` index enumerates the actually-conflicting elements and
//!   the reduction touches only those (`ws ≈ 8(p−1)N·d`, Eq. 6).
//!
//! Strategies are registered with an
//! [`ExecutionContext`](crate::ExecutionContext) by name, so kernels select
//! them at construction time and new strategies (e.g. a coloring-based or
//! NUMA-aware fold) plug in without touching any format code.

use crate::partition::Range;
use crate::pool::WorkerPool;
use crate::shared::SharedBuf;
use symspmv_sparse::block::MAX_LANES;

/// One conflicting local-vector element: thread (vector id) and row index.
///
/// Produced by the symbolic analysis (§III-C); sorted by `(idx, vid)` so a
/// parallel reduction can split the entry list by output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Local vector id (the writing thread).
    pub vid: u32,
    /// Row index within that local vector.
    pub idx: u32,
}

/// The local-vector layout a strategy requires from its kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalLayout {
    /// Total length of the flat backing store for all local vectors.
    pub flat_len: usize,
    /// Per-thread offsets into the flat store.
    pub offsets: Vec<usize>,
}

/// Everything a reduction needs from the kernel for one fold.
///
/// The buffers are [`SharedBuf`] views because the reduction itself runs
/// SPMD on the pool; the disjointness argument is the strategy's to uphold
/// (each output row is owned by exactly one reducing thread).
pub struct ReduceJob<'a> {
    /// The output vector `y` (length `n`).
    pub y: SharedBuf<'a>,
    /// The flat local-vectors store, laid out per [`LocalLayout`].
    pub locals: SharedBuf<'a>,
    /// Matrix dimension.
    pub n: usize,
    /// The multiply-phase row partition (one entry per thread).
    pub parts: &'a [Range],
    /// Per-thread offsets into `locals`.
    pub offsets: &'a [usize],
    /// Row chunks assigned to reducing threads (naive/effective sweeps).
    pub row_chunks: &'a [Range],
    /// Conflict index entries (empty unless the strategy needs them).
    pub entries: &'a [IndexEntry],
    /// Per-thread splits into `entries` (`splits.len() == nthreads + 1`).
    pub splits: &'a [usize],
    /// Right-hand-side lanes per element (1 for scalar SpMV). `y` and
    /// `locals` are lane-interleaved: the scalar plan's slot `s` becomes
    /// the group `[s·lanes, (s+1)·lanes)`, while `offsets` stay the
    /// scalar per-element offsets. A conflicting row is therefore visited
    /// **once** per reduction regardless of `lanes` — the indexing
    /// strategy's working-set win (Eq. 6) multiplies by `k`.
    pub lanes: usize,
}

/// A pluggable local-vectors reduction (Fig. 3 b/c/d).
///
/// Implementations must leave every element of `job.locals` that they are
/// responsible for **zeroed** after [`reduce`](ReductionStrategy::reduce)
/// returns — the buffer arena's reuse contract depends on it.
pub trait ReductionStrategy: Send + Sync {
    /// Stable identifier used as the registry key (e.g. `"idx"`).
    fn name(&self) -> &'static str;

    /// Whether the multiply phase writes its own rows directly into `y`
    /// (effective-ranges layout) rather than into a full local vector.
    fn direct_write(&self) -> bool;

    /// Whether the strategy consumes the symbolic conflict index.
    fn needs_index(&self) -> bool {
        false
    }

    /// Whether the strategy *schedules the conflict away* instead of
    /// reducing it: the kernel executes precomputed distance-2-disjoint row
    /// groups one barrier apart with every thread writing `y` directly, so
    /// there are no local vectors and [`reduce`](ReductionStrategy::reduce)
    /// never has work.
    fn scheduled(&self) -> bool {
        false
    }

    /// Local-vector layout for a given dimension and partition.
    fn layout(&self, n: usize, parts: &[Range]) -> LocalLayout;

    /// Folds the local vectors into `job.y` on the pool, re-zeroing the
    /// local elements it touches.
    fn reduce(&self, pool: &mut WorkerPool, job: &ReduceJob<'_>);
}

/// Prefix-sum layout shared by the direct-write strategies: thread `i`
/// keeps a local vector only for its effective region `[0, start_i)`.
fn effective_layout(parts: &[Range]) -> LocalLayout {
    let mut offsets = Vec::with_capacity(parts.len());
    let mut acc = 0usize;
    for part in parts {
        offsets.push(acc);
        acc += part.start as usize;
    }
    LocalLayout {
        flat_len: acc,
        offsets,
    }
}

/// Full-length local vector per thread (Alg. 3 of the paper).
pub struct NaiveReduction;

impl ReductionStrategy for NaiveReduction {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn direct_write(&self) -> bool {
        false
    }

    fn layout(&self, n: usize, parts: &[Range]) -> LocalLayout {
        let offsets = (0..parts.len()).map(|i| i * n).collect();
        LocalLayout {
            flat_len: parts.len() * n,
            offsets,
        }
    }

    fn reduce(&self, pool: &mut WorkerPool, job: &ReduceJob<'_>) {
        let p = job.parts.len();
        let n = job.n;
        let lanes = job.lanes;
        debug_assert!((1..=MAX_LANES).contains(&lanes));
        let chunks = job.row_chunks;
        let y_buf = job.y;
        let flat_buf = job.locals;
        pool.run(&|tid| {
            let chunk = chunks[tid];
            for r in chunk.start as usize..chunk.end as usize {
                let mut acc = [0.0; MAX_LANES];
                for i in 0..p {
                    let k = (i * n + r) * lanes;
                    // SAFETY(cert: reduction-slice): row r is owned by this
                    // reduction thread's chunk; the lane group of slot
                    // (i, r) is visited once.
                    unsafe {
                        for (j, a) in acc.iter_mut().enumerate().take(lanes) {
                            *a += flat_buf.get(k + j);
                            flat_buf.set(k + j, 0.0);
                        }
                    }
                }
                // SAFETY(cert: reduction-slice): row r is ours to fold.
                unsafe {
                    for (j, a) in acc.iter().enumerate().take(lanes) {
                        y_buf.set(r * lanes + j, *a);
                    }
                }
            }
        });
    }
}

/// RACE-style coloring schedule (Alappat et al.): the kernel runs the rows
/// group-by-group with all threads writing `y` directly, so no local
/// vectors exist and the reduction phase vanishes entirely.
pub struct RaceReduction;

impl ReductionStrategy for RaceReduction {
    fn name(&self) -> &'static str {
        "race"
    }

    fn direct_write(&self) -> bool {
        true
    }

    fn scheduled(&self) -> bool {
        true
    }

    fn layout(&self, _n: usize, parts: &[Range]) -> LocalLayout {
        LocalLayout {
            flat_len: 0,
            offsets: vec![0; parts.len()],
        }
    }

    fn reduce(&self, _pool: &mut WorkerPool, job: &ReduceJob<'_>) {
        // Nothing to fold: the schedule leaves no local vectors behind.
        debug_assert_eq!(job.locals.len(), 0);
    }
}

/// Effective ranges (Batista et al., ref. 7 of the paper).
pub struct EffectiveRangesReduction;

impl ReductionStrategy for EffectiveRangesReduction {
    fn name(&self) -> &'static str {
        "eff"
    }

    fn direct_write(&self) -> bool {
        true
    }

    fn layout(&self, _n: usize, parts: &[Range]) -> LocalLayout {
        effective_layout(parts)
    }

    fn reduce(&self, pool: &mut WorkerPool, job: &ReduceJob<'_>) {
        let parts = job.parts;
        let offsets = job.offsets;
        let lanes = job.lanes;
        debug_assert!((1..=MAX_LANES).contains(&lanes));
        let chunks = job.row_chunks;
        let y_buf = job.y;
        let flat_buf = job.locals;
        pool.run(&|tid| {
            let chunk = chunks[tid];
            for r in chunk.start as usize..chunk.end as usize {
                let mut acc = [0.0; MAX_LANES];
                // SAFETY(cert: reduction-slice): row r is owned by this
                // reduction thread's chunk.
                unsafe {
                    for (j, a) in acc.iter_mut().enumerate().take(lanes) {
                        *a = y_buf.get(r * lanes + j);
                    }
                }
                for (i, part) in parts.iter().enumerate().skip(1) {
                    if (part.start as usize) > r {
                        let k = (offsets[i] + r) * lanes;
                        // SAFETY(cert: reduction-slice): the lane group of
                        // slot (i, r) of the effective regions belongs to
                        // row r's folder alone.
                        unsafe {
                            for (j, a) in acc.iter_mut().enumerate().take(lanes) {
                                *a += flat_buf.get(k + j);
                                flat_buf.set(k + j, 0.0);
                            }
                        }
                    }
                }
                // SAFETY(cert: reduction-slice): row r is ours to fold.
                unsafe {
                    for (j, a) in acc.iter().enumerate().take(lanes) {
                        y_buf.set(r * lanes + j, *a);
                    }
                }
            }
        });
    }
}

/// Local-vectors indexing (§III-C — the paper's scheme).
pub struct IndexingReduction;

impl ReductionStrategy for IndexingReduction {
    fn name(&self) -> &'static str {
        "idx"
    }

    fn direct_write(&self) -> bool {
        true
    }

    fn needs_index(&self) -> bool {
        true
    }

    fn layout(&self, _n: usize, parts: &[Range]) -> LocalLayout {
        effective_layout(parts)
    }

    fn reduce(&self, pool: &mut WorkerPool, job: &ReduceJob<'_>) {
        let entries = job.entries;
        let splits = job.splits;
        let offsets = job.offsets;
        let lanes = job.lanes;
        debug_assert!((1..=MAX_LANES).contains(&lanes));
        let y_buf = job.y;
        let flat_buf = job.locals;
        pool.run(&|tid| {
            for e in &entries[splits[tid]..splits[tid + 1]] {
                let k = (offsets[e.vid as usize] + e.idx as usize) * lanes;
                let yk = e.idx as usize * lanes;
                // SAFETY(cert: reduction-slice): (vid, idx) pairs are unique
                // and slices never share an idx, so both lane groups are
                // exclusive.
                unsafe {
                    for j in 0..lanes {
                        y_buf.add(yk + j, flat_buf.get(k + j));
                        flat_buf.set(k + j, 0.0);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced_ranges;

    #[test]
    fn layouts_match_methods() {
        let parts = vec![
            Range { start: 0, end: 4 },
            Range { start: 4, end: 8 },
            Range { start: 8, end: 10 },
        ];
        let naive = NaiveReduction.layout(10, &parts);
        assert_eq!(naive.flat_len, 30);
        assert_eq!(naive.offsets, vec![0, 10, 20]);

        let eff = EffectiveRangesReduction.layout(10, &parts);
        assert_eq!(eff.flat_len, 12); // Σ start_i = 0 + 4 + 8
        assert_eq!(eff.offsets, vec![0, 0, 4]);
        assert_eq!(eff, IndexingReduction.layout(10, &parts));
    }

    #[test]
    fn naive_reduce_folds_and_rezeroes() {
        let n = 6;
        let parts = balanced_ranges(&vec![1u64; n], 2);
        let chunks = balanced_ranges(&vec![1u64; n], 2);
        let layout = NaiveReduction.layout(n, &parts);
        let mut locals = vec![1.0; layout.flat_len];
        let mut y = vec![0.0; n];
        let mut pool = WorkerPool::new(2);
        let job = ReduceJob {
            y: SharedBuf::new(&mut y),
            locals: SharedBuf::new(&mut locals),
            n,
            parts: &parts,
            offsets: &layout.offsets,
            row_chunks: &chunks,
            entries: &[],
            splits: &[],
            lanes: 1,
        };
        NaiveReduction.reduce(&mut pool, &job);
        assert!(y.iter().all(|&v| v == 2.0), "{y:?}");
        assert!(locals.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn naive_reduce_folds_lane_groups() {
        let n = 5;
        let lanes = 2;
        let parts = balanced_ranges(&vec![1u64; n], 2);
        let chunks = balanced_ranges(&vec![1u64; n], 2);
        let layout = NaiveReduction.layout(n, &parts);
        // Lane 0 carries 1.0 everywhere, lane 1 carries 3.0.
        let mut locals: Vec<f64> = (0..layout.flat_len * lanes)
            .map(|s| if s % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let mut y = vec![0.0; n * lanes];
        let mut pool = WorkerPool::new(2);
        let job = ReduceJob {
            y: SharedBuf::new(&mut y),
            locals: SharedBuf::new(&mut locals),
            n,
            parts: &parts,
            offsets: &layout.offsets,
            row_chunks: &chunks,
            entries: &[],
            splits: &[],
            lanes,
        };
        NaiveReduction.reduce(&mut pool, &job);
        for r in 0..n {
            assert_eq!(y[r * lanes], 2.0, "lane 0, row {r}");
            assert_eq!(y[r * lanes + 1], 6.0, "lane 1, row {r}");
        }
        assert!(locals.iter().all(|&v| v == 0.0));
    }
}
