//! The runtime supervision layer: deadlines, cooperative cancellation, and
//! the pool health state machine.
//!
//! The paper's kernels assume a healthy, dedicated machine; a long-lived
//! solve service cannot. This module provides the three pieces the
//! [`ExecutionContext`](crate::ExecutionContext) uses to bound a request in
//! time and to keep serving after a fault:
//!
//! * [`CancelToken`] / [`Deadline`] — carried by a [`Supervision`] that is
//!   installed on the context for the duration of one request. The pool
//!   consults it at a **cooperative checkpoint** before every SPMD round
//!   (multiply phases, reduction phases, first-touch initialization), so a
//!   cancelled or overdue request stops at the next phase boundary instead
//!   of running to completion.
//! * the **watchdog** — a supervised round is waited on with a timeout
//!   derived from the deadline. The moment the wait times out the pool's
//!   health is marked [`PoolHealth::Wedged`] (observable by concurrent
//!   callers *without* taking the pool lock), and the round is then drained
//!   to completion so the scoped-closure soundness argument of
//!   [`WorkerPool::try_run`](crate::WorkerPool::try_run) still holds. A
//!   worker that never returns cannot be preempted in-process; the wedge
//!   machinery bounds *detection* latency and keeps the rest of the context
//!   serving (degraded) while the wedged round drains. True runaway threads
//!   need process-level supervision, which is out of scope here.
//! * [`HealthState`] — the Healthy → Degraded → Wedged state machine with
//!   failure / respawn / wedge counters and an MTBF estimate, shared
//!   (lock-free reads) between the pool and the context.
//!
//! Checkpoint trips unwind the calling thread with an [`Interrupt`] payload
//! via `panic_any`. The fallible kernel entry points (`try_spmv` /
//! `try_spmm` in `symspmv-core`) downcast that payload back into a typed
//! error, so a cancelled request surfaces as data, never as a crash, and
//! every [`BufferLease`](crate::BufferLease) dropped during the unwind is
//! scrubbed — the arena invariant survives cancellation exactly as it
//! survives worker panics.

use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shareable cancellation flag checked at every pool checkpoint.
///
/// Clones share one flag: cancelling any clone cancels them all. A token
/// can also be armed to trip after a fixed number of checkpoint polls
/// ([`CancelToken::cancel_after_checkpoints`]), which is how tests land a
/// cancellation deterministically between a multiply and its reduction.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Remaining checkpoint polls before an armed token trips; negative
    /// means disarmed.
    fuse: AtomicIsize,
}

impl Default for CancelInner {
    fn default() -> Self {
        CancelInner {
            cancelled: AtomicBool::new(false),
            fuse: AtomicIsize::new(-1),
        }
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Cancels the request: the next checkpoint raises
    /// [`Interrupt::Cancelled`] on the requesting thread.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Arms the token to trip after `n` further checkpoint polls pass
    /// (`0` = the very next checkpoint). Deterministic mid-request
    /// cancellation for tests: one warm symmetric SpMV at `p > 1` polls
    /// twice (multiply, then reduction), so `n = 1` cancels exactly
    /// between the phases.
    pub fn cancel_after_checkpoints(&self, n: usize) {
        self.inner.fuse.store(n as isize, Ordering::SeqCst);
    }

    /// One checkpoint poll: consumes a fuse tick when armed, then reports
    /// whether the token is (now) cancelled.
    pub(crate) fn poll(&self) -> bool {
        if self.inner.fuse.load(Ordering::SeqCst) >= 0
            && self.inner.fuse.fetch_sub(1, Ordering::SeqCst) == 0
        {
            self.inner.cancelled.store(true, Ordering::SeqCst);
        }
        self.is_cancelled()
    }
}

/// A wall-clock deadline for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// The supervision installed on a context for the duration of one request:
/// a cancellation token and an optional deadline. Consulted by the pool at
/// every round checkpoint.
#[derive(Debug, Clone, Default)]
pub struct Supervision {
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
    /// Wall-clock bound for the whole request (checkpoints *and* the
    /// per-round watchdog wait), if any.
    pub deadline: Option<Deadline>,
}

impl Supervision {
    /// Supervision with a deadline `budget` from now and a fresh token.
    pub fn deadline_within(budget: Duration) -> Self {
        Supervision {
            cancel: CancelToken::new(),
            deadline: Some(Deadline::within(budget)),
        }
    }

    /// Supervision carrying only a cancellation token.
    pub fn with_cancel(cancel: CancelToken) -> Self {
        Supervision {
            cancel,
            deadline: None,
        }
    }
}

/// Why a supervised request was interrupted at a checkpoint. Raised via
/// `std::panic::panic_any` on the *requesting* thread (never a worker) and
/// downcast back into a structured error by the fallible kernel entry
/// points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interrupt {
    /// The request's [`CancelToken`] was cancelled.
    Cancelled,
    /// The request's [`Deadline`] passed.
    DeadlineExceeded {
        /// `true` when the deadline was detected by the round watchdog —
        /// a worker overran the deadline mid-round and the pool was marked
        /// [`PoolHealth::Wedged`] while the round drained. `false` for a
        /// deadline that expired between rounds.
        wedged: bool,
    },
}

/// Shared slot holding the supervision for the request currently in
/// flight on a pool.
///
/// The pool snapshots it at every round checkpoint; the context installs
/// and clears it *without* taking the pool lock, so a request blocked in a
/// draining wedged round cannot delay supervising (or un-supervising) the
/// next one. The unsupervised fast path costs one relaxed atomic load per
/// round — nothing the bench gate can see.
#[derive(Debug, Default)]
pub struct SupervisionCell {
    slot: Mutex<Option<Supervision>>,
    active: AtomicBool,
}

impl SupervisionCell {
    /// Installs `sup` as the supervision consulted by subsequent rounds.
    pub fn install(&self, sup: Supervision) {
        *lock_slot(&self.slot) = Some(sup);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Removes any installed supervision; subsequent rounds run unbounded.
    pub fn clear(&self) {
        *lock_slot(&self.slot) = None;
        self.active.store(false, Ordering::SeqCst);
    }

    /// A clone of the currently installed supervision, if any.
    pub fn snapshot(&self) -> Option<Supervision> {
        // RELAXED(advisory fast path: a stale false only delays the
        // checkpoint by one round; install/clear publish via SeqCst and the
        // slot mutex is the real synchronization point)
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        lock_slot(&self.slot).clone()
    }
}

fn lock_slot(m: &Mutex<Option<Supervision>>) -> std::sync::MutexGuard<'_, Option<Supervision>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pool health as observed by the supervision layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolHealth {
    /// No recent failures.
    Healthy,
    /// At least one recent worker failure (panic or wedge recovery); the
    /// pool is serving, and promotes back to `Healthy` after
    /// [`HealthState::RECOVERY_STREAK`] consecutive clean rounds.
    Degraded,
    /// A round is currently overrunning its deadline. Callers should route
    /// new requests to a serial fallback instead of queueing on the pool.
    Wedged,
}

const STATE_HEALTHY: u8 = 0;
const STATE_DEGRADED: u8 = 1;
const STATE_WEDGED: u8 = 2;

/// Shared, lock-free-readable health record of one pool: the state
/// machine, failure/respawn/wedge counters, and failure timestamps for the
/// MTBF estimate. One instance is shared between a
/// [`WorkerPool`](crate::WorkerPool) and its context, so health is
/// readable while the pool mutex is held by a draining wedged round.
#[derive(Debug, Default)]
pub struct HealthState {
    state: AtomicU8,
    failures: AtomicUsize,
    respawns: AtomicUsize,
    wedges: AtomicUsize,
    clean_streak: AtomicUsize,
    clock: Mutex<FailureClock>,
}

#[derive(Debug, Default, Clone, Copy)]
struct FailureClock {
    first: Option<Instant>,
    last: Option<Instant>,
}

impl HealthState {
    /// Consecutive clean rounds after which a `Degraded` pool is promoted
    /// back to `Healthy`.
    pub const RECOVERY_STREAK: usize = 16;

    /// Current health.
    pub fn health(&self) -> PoolHealth {
        match self.state.load(Ordering::SeqCst) {
            STATE_WEDGED => PoolHealth::Wedged,
            STATE_DEGRADED => PoolHealth::Degraded,
            _ => PoolHealth::Healthy,
        }
    }

    /// Worker failures observed (panics and wedges).
    pub fn failures(&self) -> usize {
        self.failures.load(Ordering::SeqCst)
    }

    /// Workers respawned after failures.
    pub fn respawns(&self) -> usize {
        self.respawns.load(Ordering::SeqCst)
    }

    /// Rounds that overran their deadline.
    pub fn wedges(&self) -> usize {
        self.wedges.load(Ordering::SeqCst)
    }

    /// Mean time between failures: the span from the first to the most
    /// recent failure divided by the failure count minus one. `None` until
    /// two failures have been observed.
    pub fn mtbf(&self) -> Option<Duration> {
        let n = self.failures();
        if n < 2 {
            return None;
        }
        let clock = lock_clock(&self.clock);
        match (clock.first, clock.last) {
            (Some(first), Some(last)) => Some((last - first) / (n as u32 - 1)),
            _ => None,
        }
    }

    /// Records a worker failure (panic): Healthy → Degraded; a wedged pool
    /// stays wedged until its round drains.
    pub(crate) fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::SeqCst);
        self.clean_streak.store(0, Ordering::SeqCst);
        let _ = self.state.compare_exchange(
            STATE_HEALTHY,
            STATE_DEGRADED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        let now = Instant::now();
        let mut clock = lock_clock(&self.clock);
        clock.first.get_or_insert(now);
        clock.last = Some(now);
    }

    /// Records a respawned worker.
    pub(crate) fn record_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks the pool wedged — called by the watchdog the moment a round
    /// overruns its deadline, *before* the drain completes, so concurrent
    /// callers can immediately route around the pool.
    pub(crate) fn mark_wedged(&self) {
        self.wedges.fetch_add(1, Ordering::SeqCst);
        self.state.store(STATE_WEDGED, Ordering::SeqCst);
        self.record_failure();
    }

    /// Re-admits a wedged pool after its round drained and the tardy
    /// workers were respawned: Wedged → Degraded.
    pub(crate) fn unwedge(&self) {
        let _ = self.state.compare_exchange(
            STATE_WEDGED,
            STATE_DEGRADED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Records a clean round; a degraded pool heals after
    /// [`HealthState::RECOVERY_STREAK`] consecutive ones.
    pub(crate) fn record_success(&self) {
        let streak = self.clean_streak.fetch_add(1, Ordering::SeqCst) + 1;
        if streak >= Self::RECOVERY_STREAK {
            let _ = self.state.compare_exchange(
                STATE_DEGRADED,
                STATE_HEALTHY,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }
}

fn lock_clock(m: &Mutex<FailureClock>) -> std::sync::MutexGuard<'_, FailureClock> {
    // Updates are tiny stores; a poisoned clock would only ever come from a
    // panicking test observer.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_shares_state_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
    }

    #[test]
    fn fused_token_trips_after_the_armed_number_of_polls() {
        let t = CancelToken::new();
        t.cancel_after_checkpoints(2);
        assert!(!t.poll(), "first poll consumes a tick");
        assert!(!t.is_cancelled());
        assert!(!t.poll(), "second poll consumes the last tick");
        assert!(t.poll(), "third poll trips");
        assert!(t.is_cancelled());
        // Once tripped it stays tripped.
        assert!(t.poll());
    }

    #[test]
    fn zero_fuse_trips_at_the_next_poll() {
        let t = CancelToken::new();
        t.cancel_after_checkpoints(0);
        assert!(t.poll());
    }

    #[test]
    fn unarmed_token_polls_false_forever() {
        let t = CancelToken::new();
        for _ in 0..100 {
            assert!(!t.poll());
        }
    }

    #[test]
    fn deadline_expiry_and_remaining() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3500));
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn health_machine_walks_healthy_degraded_healthy() {
        let h = HealthState::default();
        assert_eq!(h.health(), PoolHealth::Healthy);
        h.record_failure();
        assert_eq!(h.health(), PoolHealth::Degraded);
        assert_eq!(h.failures(), 1);
        for _ in 0..HealthState::RECOVERY_STREAK - 1 {
            h.record_success();
            assert_eq!(h.health(), PoolHealth::Degraded);
        }
        h.record_success();
        assert_eq!(h.health(), PoolHealth::Healthy);
    }

    #[test]
    fn wedge_is_sticky_until_unwedged() {
        let h = HealthState::default();
        h.mark_wedged();
        assert_eq!(h.health(), PoolHealth::Wedged);
        assert_eq!(h.wedges(), 1);
        // Successes do not heal a wedged pool; only unwedge does.
        for _ in 0..2 * HealthState::RECOVERY_STREAK {
            h.record_success();
        }
        assert_eq!(h.health(), PoolHealth::Wedged);
        h.unwedge();
        assert_eq!(h.health(), PoolHealth::Degraded);
    }

    #[test]
    fn mtbf_needs_two_failures_and_divides_the_span() {
        let h = HealthState::default();
        assert_eq!(h.mtbf(), None);
        h.record_failure();
        assert_eq!(h.mtbf(), None);
        std::thread::sleep(Duration::from_millis(5));
        h.record_failure();
        let mtbf = h.mtbf().expect("two failures give an estimate");
        assert!(mtbf >= Duration::from_millis(4), "{mtbf:?}");
        std::thread::sleep(Duration::from_millis(5));
        h.record_failure();
        // Three failures over ~10ms: the mean halves.
        let mtbf3 = h.mtbf().expect("estimate");
        assert!(mtbf3 >= Duration::from_millis(4), "{mtbf3:?}");
    }
}
