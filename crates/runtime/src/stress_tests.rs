//! Stress tests for the worker pool (kept out of the unit-test modules so
//! pool.rs stays focused on behaviour).

#![cfg(test)]

use crate::pool::WorkerPool;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[test]
fn many_rounds_many_threads() {
    let mut pool = WorkerPool::new(8);
    let sum = AtomicU64::new(0);
    for round in 0..200u64 {
        pool.run(&|tid| {
            sum.fetch_add(round * 8 + tid as u64, Ordering::Relaxed);
        });
    }
    // Σ_{round} Σ_{tid} (round·8 + tid) = Σ round·64 + 200·28
    let expect: u64 = (0..200u64).map(|r| r * 64).sum::<u64>() + 200 * 28;
    assert_eq!(sum.load(Ordering::Relaxed), expect);
}

#[test]
fn phases_are_barrier_separated() {
    // Phase 2 must observe *all* of phase 1's writes — this is the
    // multiply/reduce contract the symmetric kernels rely on.
    let mut pool = WorkerPool::new(4);
    let n = 1024;
    let mut data = vec![0u64; n];
    let slot = std::sync::Mutex::new(&mut data);
    for _ in 0..50 {
        pool.run(&|tid| {
            let mut guard = slot.lock().unwrap();
            let chunk = n / 4;
            for v in guard[tid * chunk..(tid + 1) * chunk].iter_mut() {
                *v += 1;
            }
        });
        let check = AtomicUsize::new(0);
        pool.run(&|tid| {
            let guard = slot.lock().unwrap();
            let first = guard[0];
            if guard.iter().all(|&v| v == first) {
                check.fetch_add(1, Ordering::Relaxed);
            }
            let _ = tid;
        });
        assert_eq!(
            check.load(Ordering::Relaxed),
            4,
            "phase-1 writes not visible"
        );
    }
}

#[test]
fn pools_of_every_size_up_to_16() {
    for p in 1..=16 {
        let mut pool = WorkerPool::new(p);
        let mask = AtomicU64::new(0);
        pool.run(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(
            mask.load(Ordering::Relaxed),
            (1u64 << p) - 1,
            "pool size {p}"
        );
        assert_eq!(pool.nthreads(), p);
    }
}

#[test]
fn drop_while_idle_is_clean() {
    for _ in 0..20 {
        let mut pool = WorkerPool::new(3);
        pool.run(&|_| {});
        drop(pool);
    }
}
