//! Stress tests for the worker pool (kept out of the unit-test modules so
//! pool.rs stays focused on behaviour).

#![cfg(test)]

use crate::pool::WorkerPool;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[test]
fn many_rounds_many_threads() {
    let mut pool = WorkerPool::new(8);
    let sum = AtomicU64::new(0);
    for round in 0..200u64 {
        pool.run(&|tid| {
            sum.fetch_add(round * 8 + tid as u64, Ordering::Relaxed);
        });
    }
    // Σ_{round} Σ_{tid} (round·8 + tid) = Σ round·64 + 200·28
    let expect: u64 = (0..200u64).map(|r| r * 64).sum::<u64>() + 200 * 28;
    assert_eq!(sum.load(Ordering::Relaxed), expect);
}

#[test]
fn phases_are_barrier_separated() {
    // Phase 2 must observe *all* of phase 1's writes — this is the
    // multiply/reduce contract the symmetric kernels rely on.
    let mut pool = WorkerPool::new(4);
    let n = 1024;
    let mut data = vec![0u64; n];
    let slot = std::sync::Mutex::new(&mut data);
    for _ in 0..50 {
        pool.run(&|tid| {
            let mut guard = slot.lock().unwrap();
            let chunk = n / 4;
            for v in guard[tid * chunk..(tid + 1) * chunk].iter_mut() {
                *v += 1;
            }
        });
        let check = AtomicUsize::new(0);
        pool.run(&|tid| {
            let guard = slot.lock().unwrap();
            let first = guard[0];
            if guard.iter().all(|&v| v == first) {
                check.fetch_add(1, Ordering::Relaxed);
            }
            let _ = tid;
        });
        assert_eq!(
            check.load(Ordering::Relaxed),
            4,
            "phase-1 writes not visible"
        );
    }
}

#[test]
fn pools_of_every_size_up_to_16() {
    for p in 1..=16 {
        let mut pool = WorkerPool::new(p);
        let mask = AtomicU64::new(0);
        pool.run(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(
            mask.load(Ordering::Relaxed),
            (1u64 << p) - 1,
            "pool size {p}"
        );
        assert_eq!(pool.nthreads(), p);
    }
}

#[test]
fn double_fault_rounds_respawn_only_the_panicked_workers() {
    // Two *consecutive* panicked rounds — the second fault hits while the
    // pool is freshly recovered from the first — must not wedge any worker
    // or leak a stale panic payload. The supervisor respawns exactly the
    // workers that died (fresh OS threads for their tids), keeps the
    // survivors on their original threads, and never re-creates the pool.
    let plan = crate::fault::FaultPlan::new();
    let mut pool = WorkerPool::new(4);
    pool.set_fault_plan(std::sync::Arc::clone(&plan));
    let health = pool.health_state();

    let ids_of_round = |pool: &mut WorkerPool| {
        let ids = std::sync::Mutex::new(vec![None; 4]);
        pool.try_run(&|tid| {
            ids.lock().unwrap()[tid] = Some(std::thread::current().id());
        })
        .expect("clean round");
        ids.into_inner().unwrap()
    };

    let ids_before = ids_of_round(&mut pool);
    let created_before = WorkerPool::pools_created();
    plan.arm_worker_panic(0, 0);
    plan.arm_worker_panic(3, 1);

    let p0 = pool.try_run(&|_| {}).unwrap_err();
    assert_eq!(p0.tid(), 0);
    let p1 = pool.try_run(&|_| {}).unwrap_err();
    assert_eq!(p1.tid(), 3);
    assert_eq!(plan.fired(), 2);
    assert_eq!(health.failures(), 2);
    assert_eq!(health.respawns(), 2);

    // A clean round still runs on all four tids: the panicked workers were
    // replaced with fresh threads, the clean ones kept their OS threads.
    let ids_after = ids_of_round(&mut pool);
    assert_ne!(ids_before[0], ids_after[0], "worker 0 must be respawned");
    assert_ne!(ids_before[3], ids_after[3], "worker 3 must be respawned");
    assert_eq!(ids_before[1], ids_after[1], "worker 1 kept its thread");
    assert_eq!(ids_before[2], ids_after[2], "worker 2 kept its thread");
    assert_eq!(
        WorkerPool::pools_created(),
        created_before,
        "recovery must not create a new pool"
    );
}

#[test]
fn plan_cache_consistent_under_concurrent_hammering() {
    // Workers race to populate the same keys; every get-after-put must
    // return *some* previously-inserted Arc (last write wins), the
    // counters must balance, and clearing must empty the map.
    use crate::context::{ExecutionContext, PlanKey};
    use std::any::Any;
    use std::sync::Arc;

    let ctx = ExecutionContext::new(8);
    let key = |m: u64, s: &str| PlanKey {
        matrix: m,
        nthreads: 8,
        strategy: s.to_string(),
    };

    let ctx2 = Arc::clone(&ctx);
    ctx.run(&move |tid| {
        for round in 0..50u64 {
            let k = key(round % 7, if round % 2 == 0 { "idx" } else { "eff" });
            if ctx2.plan_cache_get(&k).is_none() {
                ctx2.plan_cache_put(
                    k.clone(),
                    Arc::new((tid, round)) as Arc<dyn Any + Send + Sync>,
                );
            }
            let hit = ctx2
                .plan_cache_get(&k)
                .expect("key was just inserted by someone");
            let &(_, r) = hit
                .downcast_ref::<(usize, u64)>()
                .expect("cache only ever holds (tid, round) pairs here");
            assert!(r < 50);
        }
    });

    assert!(ctx.plan_cache_len() <= 14, "7 matrices × 2 strategies");
    assert!(ctx.plan_cache_hits() >= 8 * 50, "every round ends in a hit");
    ctx.clear_plan_cache();
    assert_eq!(ctx.plan_cache_len(), 0);
}

#[test]
fn drop_while_idle_is_clean() {
    for _ in 0..20 {
        let mut pool = WorkerPool::new(3);
        pool.run(&|_| {});
        drop(pool);
    }
}
