//! The batched multi-vector kernel interface (`Y = A·X`, `k` right-hand
//! sides).
//!
//! [`ParallelSpmm`] is the SpMM twin of the scalar SpMV interface in
//! `symspmv-core`: one matrix, one [`ExecutionContext`], and a
//! [`VectorBlock`] of `k` lane-interleaved right-hand sides per call. It
//! lives here (not in core) because the reduction layer below — the Fig. 3
//! strategies in [`crate::reduction`] — is lane-aware and the solver's
//! block-CG driver needs the trait without pulling in the format crates.
//!
//! Contract every implementation upholds:
//!
//! * `x.lanes() == y.lanes()` and `x.n() == y.n() == n`; implementations
//!   assert this and panic on mismatch (caller bug, not a worker death).
//! * Each output lane `j` is **bit-identical** to the kernel's scalar
//!   `spmv` on input lane `j`: the batched kernels run the same
//!   per-element accumulation order per lane, so batching never changes
//!   the numerics — only the traffic.
//! * Per-thread local blocks are leased from the context's `BufferArena`
//!   scaled by `lanes`, so a worker panic mid-SpMM scrubs them on unwind
//!   and the arena's all-free-buffers-are-zero invariant holds afterwards.

use crate::context::ExecutionContext;
use std::sync::Arc;
use symspmv_sparse::VectorBlock;

/// A multithreaded batched SpMM kernel bound to one matrix and one
/// [`ExecutionContext`].
pub trait ParallelSpmm {
    /// Computes `y[·, j] = A · x[·, j]` for every lane `j`.
    ///
    /// # Panics
    /// If the block shapes disagree with each other or with the matrix
    /// dimension.
    fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock);

    /// The execution context this kernel leases lane-scaled local blocks
    /// from. Named distinctly from the scalar trait's `context()` so types
    /// implementing both stay unambiguous under joint trait bounds.
    fn spmm_context(&self) -> &Arc<ExecutionContext>;
}
