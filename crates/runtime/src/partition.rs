//! Contiguous weight-balanced partitioning.
//!
//! The paper assigns the matrix to threads row-wise "ensuring an
//! approximately equal number of non-zero elements per partition" (§III-A).
//! [`balanced_ranges`] implements that: given per-row weights (non-zero
//! counts, or flop counts for the symmetric kernel), it cuts `0..n` into `p`
//! contiguous ranges with near-equal weight by walking the prefix sums.

/// A half-open row range `[start, end)` assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// First row of the partition.
    pub start: u32,
    /// One past the last row of the partition.
    pub end: u32,
}

impl Range {
    /// Number of rows in the range.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the range contains no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `0..weights.len()` into `p` contiguous ranges whose weights are
/// approximately equal.
///
/// ```
/// use symspmv_runtime::balanced_ranges;
/// let parts = balanced_ranges(&[5, 1, 1, 1, 1, 1], 2);
/// assert_eq!(parts[0].start, 0);
/// assert_eq!(parts[0].end, 1); // the heavy row alone balances half
/// assert_eq!(parts[1].end, 6);
/// ```
///
/// The split points are chosen greedily on the prefix-sum: partition `i`
/// ends at the first row whose cumulative weight reaches `(i+1)/p` of the
/// total. Rows with zero weight attach to the earlier partition. Trailing
/// partitions may be empty when `p` exceeds the number of non-trivial rows.
pub fn balanced_ranges(weights: &[u64], p: usize) -> Vec<Range> {
    assert!(p > 0, "need at least one partition");
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let mut ranges = Vec::with_capacity(p);
    let mut row = 0usize;
    let mut acc: u64 = 0;
    for i in 0..p {
        let start = row;
        // Target cumulative weight at the end of partition i.
        let target = (total as u128 * (i as u128 + 1) / p as u128) as u64;
        while row < n && (acc < target || i == p - 1) {
            acc += weights[row];
            row += 1;
        }
        ranges.push(Range {
            start: start as u32,
            end: row as u32,
        });
    }
    debug_assert_eq!(ranges.last().map(|r| r.end as usize), Some(n));
    ranges
}

/// Per-row weight model for the *symmetric* kernel: each strict-lower
/// non-zero costs two FMAs (the element and its transpose), the diagonal
/// one. `rowptr` is the SSS lower-triangle row pointer array.
pub fn symmetric_row_weights(rowptr: &[u32]) -> Vec<u64> {
    rowptr
        .windows(2)
        .map(|w| 2 * (w[1] - w[0]) as u64 + 1)
        .collect()
}

/// Per-row weight model for the unsymmetric CSR kernel: one FMA per stored
/// non-zero (plus a small constant for the row loop overhead).
pub fn csr_row_weights(rowptr: &[u32]) -> Vec<u64> {
    rowptr
        .windows(2)
        .map(|w| (w[1] - w[0]) as u64 + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(ranges: &[Range], n: u32) {
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile contiguously");
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let w = vec![1u64; 100];
        let r = balanced_ranges(&w, 4);
        check_cover(&r, 100);
        for part in &r {
            assert_eq!(part.len(), 25);
        }
    }

    #[test]
    fn skewed_weights_balance_by_weight_not_rows() {
        // One huge row at the front.
        let mut w = vec![1u64; 99];
        w.insert(0, 1000);
        let r = balanced_ranges(&w, 2);
        check_cover(&r, 100);
        // First partition should be just the heavy row.
        assert_eq!(r[0], Range { start: 0, end: 1 });
        assert_eq!(r[1], Range { start: 1, end: 100 });
    }

    #[test]
    fn more_partitions_than_rows() {
        let w = vec![5u64; 3];
        let r = balanced_ranges(&w, 8);
        check_cover(&r, 3);
        let nonempty = r.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn single_partition_takes_all() {
        let w = vec![3u64, 1, 4];
        let r = balanced_ranges(&w, 1);
        assert_eq!(r, vec![Range { start: 0, end: 3 }]);
    }

    #[test]
    fn empty_input() {
        let r = balanced_ranges(&[], 3);
        check_cover(&r, 0);
        assert!(r.iter().all(Range::is_empty));
    }

    #[test]
    fn weight_imbalance_is_bounded() {
        // Random-ish weights: every partition within (total/p) ± max weight.
        let w: Vec<u64> = (0..1000).map(|i| (i * 7919 % 97) as u64 + 1).collect();
        let total: u64 = w.iter().sum();
        let p = 7;
        let r = balanced_ranges(&w, p);
        check_cover(&r, 1000);
        let maxw = *w.iter().max().unwrap();
        for part in &r {
            let s: u64 = w[part.start as usize..part.end as usize].iter().sum();
            assert!(
                s <= total / p as u64 + maxw,
                "partition weight {s} exceeds target {} + {maxw}",
                total / p as u64
            );
        }
    }

    #[test]
    fn weight_models() {
        let rowptr = vec![0u32, 2, 2, 5];
        assert_eq!(symmetric_row_weights(&rowptr), vec![5, 1, 7]);
        assert_eq!(csr_row_weights(&rowptr), vec![3, 1, 4]);
    }
}
