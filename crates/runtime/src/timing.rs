//! Phase timing for the execution-time breakdowns (Fig. 10, Fig. 14).

use std::time::{Duration, Instant};

/// Accumulated wall-clock time per kernel phase.
///
/// The four phases are exactly the components the paper charts: the SpMV
/// multiplication phase, the symmetric-kernel reduction phase, the solver's
/// vector operations, and the one-time format preprocessing (CSX/CSX-Sym
/// detection and encoding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// SpMV multiplication phase.
    pub multiply: Duration,
    /// Local-vectors reduction phase (symmetric kernels only).
    pub reduce: Duration,
    /// Vector operations (dot products, axpy — CG only).
    pub vector_ops: Duration,
    /// One-time preprocessing (format construction / CSX detection).
    pub preprocess: Duration,
}

impl PhaseTimes {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.multiply + self.reduce + self.vector_ops + self.preprocess
    }

    /// Adds another accumulator into this one.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.multiply += other.multiply;
        self.reduce += other.reduce;
        self.vector_ops += other.vector_ops;
        self.preprocess += other.preprocess;
    }

    /// Fraction of total time spent in the reduction phase (0 when idle).
    pub fn reduce_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.reduce.as_secs_f64() / t
        }
    }
}

/// Times a closure, adding the elapsed time to `slot`, and returns its value.
pub fn time_into<R>(slot: &mut Duration, f: impl FnOnce() -> R) -> R {
    let t0 = Instant::now();
    let r = f();
    *slot += t0.elapsed();
    r
}

/// A simple stopwatch for one-shot measurements.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_into_accumulates() {
        let mut d = Duration::ZERO;
        let v = time_into(&mut d, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(2));
        let before = d;
        time_into(&mut d, || {});
        assert!(d >= before);
    }

    #[test]
    fn totals_and_fractions() {
        let mut t = PhaseTimes::new();
        t.multiply = Duration::from_millis(30);
        t.reduce = Duration::from_millis(10);
        assert_eq!(t.total(), Duration::from_millis(40));
        assert!((t.reduce_fraction() - 0.25).abs() < 1e-9);

        let mut sum = PhaseTimes::new();
        sum.accumulate(&t);
        sum.accumulate(&t);
        assert_eq!(sum.multiply, Duration::from_millis(60));
    }

    #[test]
    fn zero_total_has_zero_fraction() {
        assert_eq!(PhaseTimes::new().reduce_fraction(), 0.0);
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
