//! Shadow-memory dynamic race detector (`race-detector` feature).
//!
//! The static write-set verifier (`symspmv-verify`) proves race-freedom of
//! a *plan*; this module observes the *execution* and is used to
//! adversarially cross-validate the proofs. Every [`SharedBuf`] write is
//! mirrored into a shadow map keyed by the element's address, recording the
//! pool round (epoch) and worker id of the last writer. Two writes to the
//! same element, in the same epoch, from different workers are exactly the
//! write-write races the certificates claim cannot happen; each one is
//! recorded as a [`RaceReport`].
//!
//! Scope and honesty of the model:
//!
//! * Only **write-write** overlap within one pool round is detected — the
//!   kernels' phases are barrier-separated, so cross-round reuse is not a
//!   race. Reads are not tracked.
//! * Writes through [`SharedBuf::range_mut`] claim the whole requested
//!   range; [`SharedBuf::full_mut`] claims *nothing*, because kernels that
//!   take the full view (CSR/BCSR/atomic phases) index absolute positions
//!   the shadow layer cannot attribute — those kernels are covered by the
//!   static row-partition certificate instead.
//! * Writes outside a pool round (no current worker) are ignored.
//! * The detector is process-global and off by default; tests that enable
//!   it serialize on [`detector_guard`] so concurrent test threads do not
//!   interleave unrelated rounds into one shadow map.
//!
//! [`SharedBuf`]: crate::shared::SharedBuf
//! [`SharedBuf::range_mut`]: crate::shared::SharedBuf::range_mut
//! [`SharedBuf::full_mut`]: crate::shared::SharedBuf::full_mut

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One detected write-write overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Raw address of the contested element.
    pub addr: usize,
    /// Pool round in which both writes landed.
    pub epoch: u64,
    /// Worker that wrote first (as observed by the shadow map).
    pub first_tid: usize,
    /// Worker whose write collided.
    pub second_tid: usize,
}

/// Cap on retained reports: one racing range can produce thousands of
/// identical element-level collisions; keeping a handful is enough to fail
/// a test and name the culprits.
const MAX_REPORTS: usize = 64;

struct Shadow {
    /// addr → (epoch, tid) of the last recorded write.
    last: HashMap<usize, (u64, usize)>,
    races: Vec<RaceReport>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn shadow() -> &'static Mutex<Shadow> {
    static SHADOW: OnceLock<Mutex<Shadow>> = OnceLock::new();
    SHADOW.get_or_init(|| {
        Mutex::new(Shadow {
            last: HashMap::new(),
            races: Vec::new(),
        })
    })
}

/// Serializes tests that enable the global detector.
pub fn detector_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// (tid, epoch) of the pool round this thread is currently executing.
    static CURRENT: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
}

/// Starts shadow tracking; clears any previous shadow state and reports.
pub fn enable() {
    let mut s = shadow().lock().unwrap_or_else(|e| e.into_inner());
    s.last.clear();
    s.races.clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops shadow tracking (reports stay readable via [`take_reports`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the detector is currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Drains and returns the collected race reports.
pub fn take_reports() -> Vec<RaceReport> {
    let mut s = shadow().lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut s.races)
}

/// Allocates the epoch for the next pool round.
pub(crate) fn next_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::SeqCst) + 1
}

/// Marks the current thread as worker `tid` inside round `epoch`.
pub(crate) fn set_current(tid: usize, epoch: u64) {
    CURRENT.with(|c| c.set(Some((tid, epoch))));
}

/// Clears the current thread's worker identity (round finished).
pub(crate) fn clear_current() {
    CURRENT.with(|c| c.set(None));
}

/// Records a write of `len` elements starting at `base` (element stride 8).
pub(crate) fn record_write_range(base: usize, len: usize) {
    if !is_enabled() {
        return;
    }
    let Some((tid, epoch)) = CURRENT.with(|c| c.get()) else {
        return;
    };
    let mut s = shadow().lock().unwrap_or_else(|e| e.into_inner());
    for k in 0..len {
        let addr = base + 8 * k;
        match s.last.insert(addr, (epoch, tid)) {
            Some((prev_epoch, prev_tid)) if prev_epoch == epoch && prev_tid != tid => {
                if s.races.len() < MAX_REPORTS {
                    s.races.push(RaceReport {
                        addr,
                        epoch,
                        first_tid: prev_tid,
                        second_tid: tid,
                    });
                }
            }
            _ => {}
        }
    }
}

/// Records a single-element write at `addr`.
pub(crate) fn record_write(addr: usize) {
    record_write_range(addr, 1);
}

/// Forgets shadow entries for the `len`-element region at `base` — called
/// when a [`BufferLease`](crate::context::BufferLease) returns its buffer
/// to the arena, so recycled buffers do not pin stale shadow entries (and
/// the map does not grow with every lease).
pub(crate) fn forget_range(base: usize, len: usize) {
    if !is_enabled() {
        return;
    }
    let mut s = shadow().lock().unwrap_or_else(|e| e.into_inner());
    for k in 0..len {
        s.last.remove(&(base + 8 * k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedBuf;
    use crate::WorkerPool;

    #[test]
    fn disjoint_round_is_clean_and_overlap_is_caught() {
        let _g = detector_guard();
        let mut pool = WorkerPool::new(4);
        let mut data = vec![0.0; 64];
        let buf = SharedBuf::new(&mut data);

        enable();
        // Round 1: disjoint 16-element stripes — no race.
        pool.run(&|tid| {
            // SAFETY(cert: test-only): stripes [16·tid, 16·tid+16) are
            // manifestly disjoint across the four workers.
            let s = unsafe { buf.range_mut(16 * tid, 16 * tid + 16) };
            s.fill(1.0);
        });
        assert!(take_reports().is_empty(), "disjoint round must be clean");

        // Round 2: every worker writes element 3 — a write-write race.
        pool.run(&|tid| {
            // SAFETY(cert: test-only): deliberately racy write, serialized
            // in practice by the shadow-map mutex inside `add`; the point
            // is that the detector must flag it.
            unsafe { buf.add(3, tid as f64) };
        });
        let races = take_reports();
        disable();
        assert!(!races.is_empty(), "colliding writes must be reported");
        assert!(races.iter().all(|r| r.first_tid != r.second_tid));
    }

    #[test]
    fn cross_round_reuse_is_not_a_race() {
        let _g = detector_guard();
        let mut pool = WorkerPool::new(2);
        let mut data = vec![0.0; 8];
        let buf = SharedBuf::new(&mut data);
        enable();
        for _ in 0..3 {
            pool.run(&|tid| {
                if tid == 0 {
                    // SAFETY(cert: test-only): only worker 0 writes in
                    // any given round.
                    unsafe { buf.set(5, 1.0) };
                }
            });
        }
        let races = take_reports();
        disable();
        assert!(races.is_empty(), "same element across rounds: {races:?}");
    }

    #[test]
    fn writes_outside_rounds_are_ignored() {
        let _g = detector_guard();
        let mut data = vec![0.0; 4];
        let buf = SharedBuf::new(&mut data);
        enable();
        // SAFETY(cert: test-only): single-threaded write outside any round.
        unsafe { buf.set(0, 2.0) };
        // SAFETY(cert: test-only): as above.
        unsafe { buf.set(0, 3.0) };
        let races = take_reports();
        disable();
        assert!(races.is_empty());
    }
}
