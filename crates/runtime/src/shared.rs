//! Shared-mutable buffers for partitioned parallel writes.
//!
//! The SPMD kernels write disjoint regions of the output vector and of the
//! flat local-vectors buffer from multiple worker threads. Rust cannot see
//! the disjointness, so this module provides a deliberately small unsafe
//! escape hatch: a `Sync` view over a `&mut [f64]` whose methods document
//! the aliasing contract the kernels uphold.

use std::marker::PhantomData;

/// A raw shared view over a mutable slice, writable from many threads.
///
/// # Safety contract
///
/// Callers must guarantee that no element is accessed concurrently by two
/// threads within one parallel region. The symmetric kernels satisfy this
/// structurally: direct writes target each thread's own row range, local
/// writes target each thread's own region of the flat buffer, and reduction
/// splits never share an output row between threads.
#[derive(Clone, Copy)]
pub struct SharedBuf<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY(cert: caller-disjoint): access disjointness is delegated to
// callers per the struct docs; every kernel call site names the certificate
// invariant that proves its own disjointness.
unsafe impl Send for SharedBuf<'_> {}
// SAFETY(cert: caller-disjoint): as above.
unsafe impl Sync for SharedBuf<'_> {}

impl<'a> SharedBuf<'a> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [f64]) -> Self {
        SharedBuf {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty underlying slice.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a mutable subslice `[lo, hi)`.
    ///
    /// # Safety
    /// The range must be in bounds and not concurrently accessed by any
    /// other thread for the lifetime of the returned slice.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the documented escape hatch: caller-proven disjointness
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [f64] {
        debug_assert!(lo <= hi && hi <= self.len);
        #[cfg(feature = "race-detector")]
        crate::race::record_write_range(self.ptr.add(lo) as usize, hi - lo);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }

    /// Returns the whole underlying slice.
    ///
    /// # Safety
    /// The caller must only touch elements it owns within the current
    /// parallel region, exactly as with [`SharedBuf::range_mut`]; the full
    /// view exists for kernels that index by absolute position.
    ///
    /// Under the `race-detector` feature this method records *no* shadow
    /// writes — the full view cannot be attributed to a footprint; the
    /// callers' disjointness is covered by the static certificates instead.
    #[inline]
    #[allow(clippy::mut_from_ref)] // see range_mut
    pub unsafe fn full_mut(&self) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }

    /// Adds `v` to element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and not concurrently accessed by another thread.
    #[inline]
    pub unsafe fn add(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        #[cfg(feature = "race-detector")]
        crate::race::record_write(self.ptr.add(i) as usize);
        *self.ptr.add(i) += v;
    }

    /// Stores `v` into element `i`.
    ///
    /// # Safety
    /// Same as [`SharedBuf::add`].
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        #[cfg(feature = "race-detector")]
        crate::race::record_write(self.ptr.add(i) as usize);
        *self.ptr.add(i) = v;
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds; concurrent *writers* to `i` are forbidden.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerPool;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0.0; 40];
        let buf = SharedBuf::new(&mut data);
        let mut pool = WorkerPool::new(4);
        pool.run(&|tid| {
            // SAFETY(cert: test-only): each thread owns rows
            // [tid*10, tid*10+10) — manifestly disjoint.
            let s = unsafe { buf.range_mut(tid * 10, tid * 10 + 10) };
            for (k, slot) in s.iter_mut().enumerate() {
                *slot = (tid * 10 + k) as f64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn elementwise_ops() {
        let mut data = vec![1.0, 2.0];
        let buf = SharedBuf::new(&mut data);
        // SAFETY(cert: test-only): single-threaded access.
        unsafe {
            buf.add(0, 0.5);
            buf.set(1, 7.0);
            assert_eq!(buf.get(0), 1.5);
        }
        assert_eq!(data, vec![1.5, 7.0]);
    }
}
