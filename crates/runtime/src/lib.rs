#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Execution runtime: explicit threading, partitioning, timing, and the
//! shared execution context.
//!
//! The paper parallelizes SpMV with explicit native threads (Pthreads) and
//! static row partitions, not a work-stealing scheduler — thread identity
//! matters because each thread owns a local output vector. This crate
//! provides the equivalent machinery:
//!
//! * [`pool::WorkerPool`] — a persistent pool of workers executing the same
//!   closure with distinct thread ids (SPMD style), with a blocking `run`;
//! * [`context::ExecutionContext`] — the shared runtime layer: one pool,
//!   one recycled first-touch buffer arena, one cross-kernel phase-time
//!   ledger, and the [`reduction::ReductionStrategy`] registry;
//! * [`reduction`] — the three symmetric reduction strategies of Fig. 3
//!   (naive / effective-ranges / local-vectors indexing) as trait objects;
//! * [`shared`] — the `SharedBuf` escape hatch for disjoint parallel writes;
//! * [`partition`] — contiguous, weight-balanced row partitioning;
//! * [`timing`] — phase timers for the multiplication/reduction breakdowns
//!   of Fig. 10 and Fig. 14;
//! * `fault` *(tests / `fault-injection` feature)* — deterministic fault
//!   injection: make a chosen worker panic or stall in a chosen round, or
//!   corrupt a buffer on its way back to the arena, so recovery paths can
//!   be exercised on purpose;
//! * `modelcheck` *(tests / `model-check` feature)* — a bounded-
//!   interleaving model checker that exhausts every schedule of the
//!   supervision protocol on miniature scenarios, with DPOR-lite pruning
//!   and seeded protocol mutants as a fidelity gauge;
//! * `race` *(`race-detector` feature)* — a shadow-memory dynamic race
//!   detector mirroring every `SharedBuf` write with (round, worker)
//!   attribution, used to adversarially cross-validate the static race
//!   certificates emitted by the `symspmv-verify` crate;
//! * [`supervisor`] — deadlines, cooperative cancellation, the round
//!   watchdog, and the Healthy → Degraded → Wedged pool health machine
//!   with worker respawn, so a long-lived service bounds every request in
//!   time and keeps serving after faults.

pub mod context;
#[cfg(any(test, feature = "fault-injection"))]
pub mod fault;
#[cfg(any(test, feature = "model-check"))]
pub mod modelcheck;
pub mod partition;
pub mod pool;
#[cfg(feature = "race-detector")]
pub mod race;
pub mod reduction;
pub mod shared;
pub mod spmm;
pub mod supervisor;
pub mod timing;

#[cfg(test)]
mod stress_tests;

pub use context::{BufferLease, ExecutionContext, PlanKey, SupervisionGuard};
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::FaultPlan;
pub use partition::{balanced_ranges, Range};
pub use pool::{WorkerPanic, WorkerPanicInfo, WorkerPool};
pub use reduction::{IndexEntry, LocalLayout, ReduceJob, ReductionStrategy};
pub use shared::SharedBuf;
pub use spmm::ParallelSpmm;
pub use supervisor::{
    CancelToken, Deadline, HealthState, Interrupt, PoolHealth, Supervision, SupervisionCell,
};
pub use timing::PhaseTimes;
