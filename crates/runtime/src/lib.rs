#![warn(missing_docs)]

//! Execution runtime: explicit threading, partitioning and timing.
//!
//! The paper parallelizes SpMV with explicit native threads (Pthreads) and
//! static row partitions, not a work-stealing scheduler — thread identity
//! matters because each thread owns a local output vector. This crate
//! provides the equivalent machinery:
//!
//! * [`pool::WorkerPool`] — a persistent pool of workers executing the same
//!   closure with distinct thread ids (SPMD style), with a blocking `run`;
//! * [`partition`] — contiguous, weight-balanced row partitioning;
//! * [`timing`] — phase timers for the multiplication/reduction breakdowns
//!   of Fig. 10 and Fig. 14.

pub mod partition;
pub mod pool;
pub mod timing;

#[cfg(test)]
mod stress_tests;

pub use partition::{balanced_ranges, Range};
pub use pool::WorkerPool;
pub use timing::PhaseTimes;
