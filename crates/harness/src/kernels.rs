//! Kernel factory: builds any evaluated format+method combination from a
//! symmetric COO matrix.

use std::sync::Arc;
use symspmv_core::{CsrParallel, CsxParallel, ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_csx::detect::DetectConfig;
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::{CooMatrix, SparseError};

/// The kernel configurations the evaluation section compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelSpec {
    /// Unsymmetric CSR baseline.
    Csr,
    /// Unsymmetric CSX baseline.
    Csx,
    /// SSS with a given reduction method.
    Sss(ReductionMethod),
    /// CSX-Sym with a given reduction method.
    CsxSym(ReductionMethod),
    /// SSS with atomic conflicting updates (no local vectors) — the
    /// CSB-style alternative from the paper's related work.
    SssAtomic,
    /// Compressed Sparse Blocks, unsymmetric (related work, ref. 8).
    Csb,
    /// Symmetric CSB with banded locals + atomic far updates (ref. 27).
    CsbSym,
    /// Auto-tuned register-blocked BCSR (related work: SPARSITY/OSKI).
    Bcsr,
    /// The "colorful" conflict-free coloring method (related work, ref. 7).
    SssColor,
    /// Adaptive per-chunk CSX-Sym/SSS hybrid with a given reduction method
    /// (extension; coverage threshold 0.5).
    Hybrid(ReductionMethod),
}

impl KernelSpec {
    /// Spec name matching the kernels' `name()` output. Static — report
    /// loops over lineups never allocate for names.
    pub fn name(&self) -> &'static str {
        use ReductionMethod::{EffectiveRanges as Eff, Indexing as Idx, Naive, Race};
        match self {
            KernelSpec::Csr => "csr",
            KernelSpec::Csx => "csx",
            KernelSpec::Sss(Naive) => "sss-naive",
            KernelSpec::Sss(Eff) => "sss-eff",
            KernelSpec::Sss(Idx) => "sss-idx",
            KernelSpec::Sss(Race) => "sss-race",
            KernelSpec::CsxSym(Race) | KernelSpec::Hybrid(Race) => {
                unreachable!("the race schedule supports the SSS format only")
            }
            KernelSpec::SssAtomic => "sss-atomic",
            KernelSpec::Csb => "csb",
            KernelSpec::Bcsr => "bcsr",
            KernelSpec::SssColor => "sss-color",
            KernelSpec::Hybrid(Naive) => "hybrid-naive",
            KernelSpec::Hybrid(Eff) => "hybrid-eff",
            KernelSpec::Hybrid(Idx) => "hybrid-idx",
            KernelSpec::CsbSym => "csb-sym",
            KernelSpec::CsxSym(Naive) => "csxsym-naive",
            KernelSpec::CsxSym(Eff) => "csxsym-eff",
            KernelSpec::CsxSym(Idx) => "csxsym-idx",
        }
    }

    /// Parses a spec name (factory inverse). Returns `None` for unknown
    /// names.
    pub fn parse(s: &str) -> Option<KernelSpec> {
        let method = |tag: &str| match tag {
            "naive" => Some(ReductionMethod::Naive),
            "eff" => Some(ReductionMethod::EffectiveRanges),
            "idx" => Some(ReductionMethod::Indexing),
            _ => None,
        };
        match s {
            "csr" => Some(KernelSpec::Csr),
            "csx" => Some(KernelSpec::Csx),
            // The scheduled strategy exists for SSS only; `csxsym-race` and
            // `hybrid-race` stay unparseable.
            "sss-race" => Some(KernelSpec::Sss(ReductionMethod::Race)),
            "sss-atomic" => Some(KernelSpec::SssAtomic),
            "csb" => Some(KernelSpec::Csb),
            "bcsr" => Some(KernelSpec::Bcsr),
            "sss-color" => Some(KernelSpec::SssColor),
            "csb-sym" => Some(KernelSpec::CsbSym),
            _ => {
                if let Some(tag) = s.strip_prefix("sss-") {
                    method(tag).map(KernelSpec::Sss)
                } else if let Some(tag) = s.strip_prefix("csxsym-") {
                    method(tag).map(KernelSpec::CsxSym)
                } else if let Some(tag) = s.strip_prefix("hybrid-") {
                    method(tag).map(KernelSpec::Hybrid)
                } else {
                    None
                }
            }
        }
    }

    /// The four-format lineup of Fig. 11/12/13/14.
    pub fn figure11_lineup() -> Vec<KernelSpec> {
        vec![
            KernelSpec::Csr,
            KernelSpec::Csx,
            KernelSpec::Sss(ReductionMethod::Indexing),
            KernelSpec::CsxSym(ReductionMethod::Indexing),
        ]
    }

    /// The related-work lineup (extension experiment): the paper's best
    /// configurations against the §VI alternatives.
    pub fn related_work_lineup() -> Vec<KernelSpec> {
        vec![
            KernelSpec::Csr,
            KernelSpec::Bcsr,
            KernelSpec::Sss(ReductionMethod::Indexing),
            KernelSpec::CsxSym(ReductionMethod::Indexing),
            KernelSpec::Hybrid(ReductionMethod::Indexing),
            KernelSpec::Csb,
            KernelSpec::CsbSym,
            KernelSpec::SssAtomic,
            KernelSpec::SssColor,
        ]
    }

    /// The reduction-method lineup of Fig. 9/10.
    pub fn figure9_lineup() -> Vec<KernelSpec> {
        vec![
            KernelSpec::Csr,
            KernelSpec::Sss(ReductionMethod::Naive),
            KernelSpec::Sss(ReductionMethod::EffectiveRanges),
            KernelSpec::Sss(ReductionMethod::Indexing),
        ]
    }
}

/// The detection configuration used by all CSX/CSX-Sym kernels in the
/// experiments (full statistics pass, default thresholds).
pub fn experiment_detect_config() -> DetectConfig {
    DetectConfig::default()
}

/// Builds a kernel for `spec` over `coo` on the shared execution context.
/// Every kernel built from the same context borrows the same worker pool
/// and buffer arena.
pub fn build_kernel(
    spec: KernelSpec,
    coo: &CooMatrix,
    ctx: &Arc<ExecutionContext>,
) -> Result<Box<dyn ParallelSpmv>, SparseError> {
    build_kernel_kind(spec, coo, SymmetryKind::Symmetric, ctx)
}

/// The kind-aware factory: builds `spec` over `coo` validated against
/// `kind`. The unsymmetric baselines (CSR, CSX, CSB, BCSR) store the full
/// expanded matrix and are kind-independent — they build identically for
/// every kind; the half-storage kernels thread the kind through their
/// constructors.
pub fn build_kernel_kind(
    spec: KernelSpec,
    coo: &CooMatrix,
    kind: SymmetryKind,
    ctx: &Arc<ExecutionContext>,
) -> Result<Box<dyn ParallelSpmv>, SparseError> {
    let cfg = experiment_detect_config();
    Ok(match spec {
        KernelSpec::Csr => Box::new(CsrParallel::from_coo(coo, ctx)),
        KernelSpec::Csx => Box::new(CsxParallel::from_coo(coo, ctx, &cfg)),
        KernelSpec::Sss(m) => Box::new(SymSpmv::from_coo_kind(coo, kind, ctx, m, SymFormat::Sss)?),
        KernelSpec::CsxSym(m) => Box::new(SymSpmv::from_coo_kind(
            coo,
            kind,
            ctx,
            m,
            SymFormat::CsxSym(cfg),
        )?),
        KernelSpec::SssAtomic => Box::new(symspmv_core::SssAtomicParallel::from_coo_kind(
            coo, kind, ctx,
        )?),
        KernelSpec::Csb => Box::new(symspmv_core::CsbParallel::from_coo(coo, ctx)),
        KernelSpec::Bcsr => Box::new(symspmv_core::BcsrParallel::from_coo(coo, ctx)),
        KernelSpec::SssColor => Box::new(symspmv_core::SssColorParallel::from_coo_kind(
            coo, kind, ctx,
        )?),
        KernelSpec::Hybrid(m) => Box::new(SymSpmv::from_coo_kind(
            coo,
            kind,
            ctx,
            m,
            SymFormat::Hybrid {
                csx: cfg,
                min_coverage: 0.5,
            },
        )?),
        KernelSpec::CsbSym => {
            Box::new(symspmv_core::CsbSymParallel::from_coo_kind(coo, kind, ctx)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn names_round_trip() {
        for spec in [
            KernelSpec::Csr,
            KernelSpec::Csx,
            KernelSpec::Sss(ReductionMethod::Naive),
            KernelSpec::Sss(ReductionMethod::EffectiveRanges),
            KernelSpec::Sss(ReductionMethod::Indexing),
            KernelSpec::Sss(ReductionMethod::Race),
            KernelSpec::CsxSym(ReductionMethod::Indexing),
            KernelSpec::SssAtomic,
            KernelSpec::Csb,
            KernelSpec::CsbSym,
            KernelSpec::Bcsr,
            KernelSpec::SssColor,
        ] {
            assert_eq!(KernelSpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(KernelSpec::parse("nope"), None);
        assert_eq!(KernelSpec::parse("sss-bogus"), None);
        assert_eq!(KernelSpec::parse("csxsym-race"), None);
        assert_eq!(KernelSpec::parse("hybrid-race"), None);
    }

    #[test]
    fn every_spec_builds_and_agrees() {
        let coo = symspmv_sparse::gen::banded_random(200, 12, 8.0, 1);
        let x = seeded_vector(200, 4);
        let mut y_ref = vec![0.0; 200];
        let mut c = coo.clone();
        c.canonicalize();
        c.spmv_reference(&x, &mut y_ref);

        let mut all = KernelSpec::figure9_lineup();
        all.extend(KernelSpec::figure11_lineup());
        let ctx = ExecutionContext::new(3);
        let before = symspmv_runtime::WorkerPool::pools_created();
        for spec in all {
            let mut k = build_kernel(spec, &coo, &ctx).unwrap();
            let mut y = vec![f64::NAN; 200];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
            assert_eq!(k.name(), spec.name());
        }
        // The whole factory sweep ran on the context's single pool.
        assert_eq!(symspmv_runtime::WorkerPool::pools_created(), before);
    }
}
