//! Experiment drivers — one function per table/figure of §V.
//!
//! Every driver prints an aligned text table and writes a CSV twin into the
//! configured output directory. Paper-reported values are included as
//! columns where the paper states them, so EXPERIMENTS.md can be filled
//! from a single run.

use crate::error::HarnessError;
use crate::framework::{measure, serial_csr_spmv_time, Measurement};
use crate::kernels::{build_kernel, experiment_detect_config, KernelSpec};
use crate::report::{f, fmt_secs, geomean, pct, Table};
use std::path::PathBuf;
use std::sync::Arc;
use symspmv_core::SymFormat;
use symspmv_core::{symbolic, ws, ReductionMethod, SymSpmv};
use symspmv_reorder::rcm::rcm_reorder;
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights, ExecutionContext};
use symspmv_sparse::stats::csr_size_mib;
use symspmv_sparse::suite::SuiteMatrix;
use symspmv_sparse::{CooMatrix, CsrMatrix, SssMatrix};

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Suite scale factor (fraction of the original matrix dimensions).
    pub scale: f64,
    /// SpMV iterations per measurement (paper: 128).
    pub iterations: usize,
    /// Maximum worker threads (default: host parallelism).
    pub max_threads: usize,
    /// Output directory for CSV twins of the printed tables.
    pub out_dir: PathBuf,
    /// Restrict to these suite matrices (paper names); empty = all 12.
    pub matrices: Vec<String>,
    /// CG iterations for Fig. 14 (paper: 2048).
    pub cg_iters: usize,
    /// Right-hand sides per multiplication for the batched (`spmm`)
    /// experiment — must be a supported lane count (1, 2, 4, 8, 16).
    pub rhs: usize,
    /// Seed for the seeded drivers (the `chaos` fault schedule and its
    /// retry jitter); the same seed replays the same run.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.02,
            iterations: 128,
            max_threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            out_dir: PathBuf::from("results"),
            matrices: Vec::new(),
            cg_iters: 512,
            rhs: 8,
            seed: 0xC4A05,
        }
    }
}

impl ExpConfig {
    fn suite(&self) -> Vec<SuiteMatrix> {
        // Generated matrices are deterministic, so cache them on disk keyed
        // by (name, scale) — repeated experiment invocations skip the
        // generation cost.
        let cache_dir = self.out_dir.join(".suite-cache");
        symspmv_sparse::suite::SUITE
            .iter()
            .filter(|s| self.matrices.is_empty() || self.matrices.iter().any(|n| n == s.name))
            .map(|spec| {
                let path = cache_dir.join(format!("{}-{:.6}.bin", spec.name, self.scale));
                let coo = symspmv_sparse::cache::load_or_generate(path, || {
                    symspmv_sparse::suite::generate(spec, self.scale).coo
                });
                SuiteMatrix { spec: *spec, coo }
            })
            .collect()
    }

    fn thread_sweep(&self) -> Vec<usize> {
        let mut v = vec![1usize];
        let mut p = 2;
        while p < self.max_threads {
            v.push(p);
            p *= 2;
        }
        if self.max_threads > 1 {
            v.push(self.max_threads);
        }
        v
    }

    pub(crate) fn emit(&self, name: &str, table: &Table) -> Result<(), HarnessError> {
        println!("{}", table.render());
        let p = table
            .write_csv(&self.out_dir, name)
            .map_err(|source| HarnessError::Io {
                path: self.out_dir.join(format!("{name}.csv")),
                source,
            })?;
        println!("[csv written to {}]\n", p.display());
        Ok(())
    }
}

fn sss_of(coo: &CooMatrix, name: &str) -> Result<SssMatrix, HarnessError> {
    SssMatrix::from_coo(coo, 0.0).map_err(|e| HarnessError::matrix("SSS structure", name, e))
}

/// Builds a kernel with driver context attached to any failure.
fn kernel_of(
    spec: KernelSpec,
    coo: &CooMatrix,
    ctx: &Arc<ExecutionContext>,
    matrix: &str,
) -> Result<Box<dyn symspmv_core::ParallelSpmv>, HarnessError> {
    build_kernel(spec, coo, ctx)
        .map_err(|e| HarnessError::matrix(format!("{} kernel", spec.name()), matrix, e))
}

/// RCM-reorders with driver context attached to any failure.
fn rcm_of(coo: &CooMatrix, matrix: &str) -> Result<CooMatrix, HarnessError> {
    rcm_reorder(coo).map_err(|e| HarnessError::matrix("RCM reorder", matrix, e))
}

/// Builds a kind-aware kernel with driver context attached to any failure.
fn kernel_of_kind(
    spec: KernelSpec,
    coo: &CooMatrix,
    kind: symspmv_sparse::symmetry::SymmetryKind,
    ctx: &Arc<ExecutionContext>,
    matrix: &str,
) -> Result<Box<dyn symspmv_core::ParallelSpmv>, HarnessError> {
    crate::kernels::build_kernel_kind(spec, coo, kind, ctx)
        .map_err(|e| HarnessError::matrix(format!("{} kernel", spec.name()), matrix, e))
}

/// E1 — Table I: suite characteristics and compression ratios.
pub fn table1(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== Table I: matrix suite and compression ratios ==\n");
    let mut t = Table::new(&[
        "matrix",
        "rows",
        "nonzeros",
        "size(MiB)",
        "CR(CSX-Sym)",
        "CR(max)",
        "paper CR(CSX-Sym)",
        "paper CR(max)",
        "coverage",
        "problem",
    ]);
    for m in cfg.suite() {
        let sss = sss_of(&m.coo, m.spec.name)?;
        let n = sss.n();
        // Table I measures pure format compression: single partition.
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 1);
        let csx = symspmv_core::CsxSymMatrix::from_sss(&sss, &parts, &experiment_detect_config());
        let full_nnz = csx.full_nnz();
        t.row(vec![
            m.spec.name.into(),
            n.to_string(),
            full_nnz.to_string(),
            f(csr_size_mib(n, full_nnz), 2),
            pct(csx.compression_ratio()),
            pct(csx.max_compression_ratio()),
            format!("{:.1}%", m.spec.paper_cr_csx_sym),
            format!("{:.1}%", m.spec.paper_cr_max),
            pct(csx.coverage()),
            m.spec.problem.into(),
        ]);
    }
    cfg.emit("table1", &t)
}

/// E2 — Fig. 4: density of the effective regions versus thread count.
pub fn fig4(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== Fig. 4: effective-region density vs thread count ==\n");
    let suite = cfg.suite();
    let structures: Vec<(String, SssMatrix)> = suite
        .iter()
        .map(|m| Ok((m.spec.name.to_string(), sss_of(&m.coo, m.spec.name)?)))
        .collect::<Result<_, HarnessError>>()?;

    let ps = [2usize, 4, 8, 16, 24, 32, 64, 128, 256];
    let mut t = Table::new(&["threads", "avg density", "min", "max"]);
    let mut per_matrix = Table::new(&["threads", "matrix", "density"]);
    let mut density_series: Vec<(f64, f64)> = Vec::new();
    let mut density_min: Vec<(f64, f64)> = Vec::new();
    let mut density_max: Vec<(f64, f64)> = Vec::new();
    for &p in &ps {
        let mut ds = Vec::new();
        for (name, sss) in &structures {
            let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
            let ci = symbolic::analyze(sss, &parts);
            ds.push(ci.density());
            per_matrix.row(vec![p.to_string(), name.clone(), f(ci.density(), 4)]);
        }
        let avg = ds.iter().sum::<f64>() / ds.len() as f64;
        let min = ds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ds.iter().cloned().fold(0.0, f64::max);
        density_series.push((p as f64, avg));
        density_min.push((p as f64, min));
        density_max.push((p as f64, max));
        t.row(vec![p.to_string(), pct(avg), pct(min), pct(max)]);
    }
    cfg.emit("fig4", &t)?;
    per_matrix
        .write_csv(&cfg.out_dir, "fig4_per_matrix")
        .map_err(|source| HarnessError::Io {
            path: cfg.out_dir.join("fig4_per_matrix.csv"),
            source,
        })?;
    let svg = crate::plot::line_chart(
        "Fig. 4 — effective-region density vs thread count (suite average)",
        "threads",
        "density",
        &[
            crate::plot::Series {
                name: "avg".into(),
                points: density_series.clone(),
            },
            crate::plot::Series {
                name: "min".into(),
                points: density_min,
            },
            crate::plot::Series {
                name: "max".into(),
                points: density_max,
            },
        ],
    );
    if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, "fig4", &svg) {
        println!("[svg written to {}]\n", path.display());
    }
    println!("(paper: avg density 10.7% at 24 threads, 2.6% at 256 threads)\n");
    Ok(())
}

/// E3 — Fig. 5: reduction-phase working-set overhead versus thread count.
pub fn fig5(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== Fig. 5: reduction working-set overhead (relative to S_SSS) ==\n");
    let suite = cfg.suite();
    let structures: Vec<SssMatrix> = suite
        .iter()
        .map(|m| sss_of(&m.coo, m.spec.name))
        .collect::<Result<_, HarnessError>>()?;
    let ps = [2usize, 4, 8, 12, 16, 24, 32, 64];
    let mut t = Table::new(&["threads", "naive", "effective", "indexing"]);
    let mut svg_series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    for &p in &ps {
        let (mut o_naive, mut o_eff, mut o_idx) = (Vec::new(), Vec::new(), Vec::new());
        for sss in &structures {
            let n = sss.n() as usize;
            let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
            let ci = symbolic::analyze(sss, &parts);
            let s = sss.size_bytes();
            o_naive.push(ws::relative_overhead(ws::ws_naive(p, n), s));
            o_eff.push(ws::relative_overhead(
                ws::ws_effective_exact(ci.effective_region_len),
                s,
            ));
            o_idx.push(ws::relative_overhead(ws::ws_indexing(&ci), s));
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        svg_series[0].push((p as f64, avg(&o_naive)));
        svg_series[1].push((p as f64, avg(&o_eff)));
        svg_series[2].push((p as f64, avg(&o_idx)));
        t.row(vec![
            p.to_string(),
            pct(avg(&o_naive)),
            pct(avg(&o_eff)),
            pct(avg(&o_idx)),
        ]);
    }
    cfg.emit("fig5", &t)?;
    let names = ["naive", "effective", "indexing"];
    let series: Vec<crate::plot::Series> = names
        .iter()
        .zip(&svg_series)
        .map(|(n, pts)| crate::plot::Series {
            name: (*n).into(),
            points: pts.clone(),
        })
        .collect();
    let svg = crate::plot::line_chart(
        "Fig. 5 — reduction working-set overhead (x of S_SSS, suite average)",
        "threads",
        "overhead / S_SSS",
        &series,
    );
    if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, "fig5", &svg) {
        println!("[svg written to {}]\n", path.display());
    }
    println!("(paper: indexing overhead stabilizes around 15% at 24 threads)\n");
    Ok(())
}

/// Runs one (matrix, lineup) sweep; returns rows of measurements. One
/// execution context — and therefore one worker pool — per thread count,
/// shared by every kernel in the lineup.
fn sweep(
    coo: &CooMatrix,
    matrix: &str,
    lineup: &[KernelSpec],
    ctxs: &[Arc<ExecutionContext>],
    iterations: usize,
) -> Result<Vec<(usize, Vec<Measurement>)>, HarnessError> {
    ctxs.iter()
        .map(|ctx| {
            let ms = lineup
                .iter()
                .map(|&spec| {
                    let mut k = kernel_of(spec, coo, ctx, matrix)?;
                    Ok(measure(&mut *k, iterations))
                })
                .collect::<Result<_, HarnessError>>()?;
            Ok((ctx.nthreads(), ms))
        })
        .collect()
}

fn speedup_figure(
    cfg: &ExpConfig,
    name: &str,
    title: &str,
    lineup: Vec<KernelSpec>,
) -> Result<(), HarnessError> {
    println!("== {title} ==\n");
    let suite = cfg.suite();
    let threads = cfg.thread_sweep();
    let ctxs: Vec<Arc<ExecutionContext>> =
        threads.iter().map(|&p| ExecutionContext::new(p)).collect();
    let serial_ctx = ExecutionContext::new(1);

    let mut header = vec!["matrix".to_string(), "threads".to_string()];
    header.extend(lineup.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    // Per-(p, kernel) speedups across matrices for the geomean summary.
    let mut acc: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); lineup.len()]; threads.len()];

    for m in &suite {
        // Serial CSR is the speedup baseline.
        let mut base = kernel_of(KernelSpec::Csr, &m.coo, &serial_ctx, m.spec.name)?;
        let base_t = measure(&mut *base, cfg.iterations).wall;
        drop(base);
        for (pi, (p, ms)) in sweep(&m.coo, m.spec.name, &lineup, &ctxs, cfg.iterations)?
            .iter()
            .enumerate()
        {
            let mut row = vec![m.spec.name.to_string(), p.to_string()];
            for (ki, meas) in ms.iter().enumerate() {
                let s = base_t.as_secs_f64() / meas.wall.as_secs_f64();
                acc[pi][ki].push(s);
                row.push(f(s, 2));
            }
            t.row(row);
        }
    }
    cfg.emit(&format!("{name}_per_matrix"), &t)?;

    let mut s = Table::new(&header_refs);
    let mut svg_series: Vec<crate::plot::Series> = lineup
        .iter()
        .map(|k| crate::plot::Series {
            name: k.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for (pi, &p) in threads.iter().enumerate() {
        let mut row = vec!["GEOMEAN".to_string(), p.to_string()];
        for ki in 0..lineup.len() {
            let g = geomean(&acc[pi][ki]);
            svg_series[ki].points.push((p as f64, g));
            row.push(f(g, 2));
        }
        s.row(row);
    }
    cfg.emit(name, &s)?;
    if svg_series.len() <= 4 && threads.len() >= 2 {
        let svg = crate::plot::line_chart(
            &format!("{title} — geometric mean over the suite"),
            "threads",
            "speedup vs serial CSR",
            &svg_series,
        );
        if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, name, &svg) {
            println!("[svg written to {}]\n", path.display());
        }
    }
    Ok(())
}

/// E4 — Fig. 9: speedup of the local-vector reduction methods vs CSR.
pub fn fig9(cfg: &ExpConfig) -> Result<(), HarnessError> {
    speedup_figure(
        cfg,
        "fig9",
        "Fig. 9: symmetric SpMV speedup, reduction methods (baseline: serial CSR)",
        KernelSpec::figure9_lineup(),
    )?;
    println!("(paper: sss-idx >2x over CSR on the SMP system; naive/eff collapse at high p)\n");
    Ok(())
}

/// E5 — Fig. 10: execution-time breakdown at max threads.
pub fn fig10(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Fig. 10: symmetric SpMV time breakdown at {} threads ==\n",
        cfg.max_threads
    );
    let mut t = Table::new(&[
        "matrix",
        "method",
        "multiply(ms)",
        "reduce(ms)",
        "reduce share",
    ]);
    let methods = [
        ReductionMethod::Naive,
        ReductionMethod::EffectiveRanges,
        ReductionMethod::Indexing,
    ];
    let mut bars: Vec<Vec<crate::plot::Bar>> = vec![Vec::new(); methods.len()];
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        for (mi, &method) in methods.iter().enumerate() {
            let mut k = SymSpmv::from_coo(&m.coo, &ctx, method, SymFormat::Sss)
                .map_err(|e| HarnessError::matrix("SSS kernel", m.spec.name, e))?;
            let meas = measure(&mut k, cfg.iterations);
            let mult = meas.times.multiply.as_secs_f64() * 1e3;
            let red = meas.times.reduce.as_secs_f64() * 1e3;
            bars[mi].push(crate::plot::Bar {
                label: m.spec.name.into(),
                segments: vec![mult, red],
            });
            t.row(vec![
                m.spec.name.into(),
                method.tag().into(),
                f(mult, 2),
                f(red, 2),
                pct(red / (mult + red).max(1e-12)),
            ]);
        }
    }
    cfg.emit("fig10", &t)?;
    for (mi, method) in methods.iter().enumerate() {
        if bars[mi].is_empty() {
            continue;
        }
        let svg = crate::plot::stacked_bars(
            &format!(
                "Fig. 10 — SSS-{} time breakdown at {} threads",
                method.tag(),
                cfg.max_threads
            ),
            "time (ms)",
            &["multiply", "reduce"],
            &bars[mi],
        );
        let name = format!("fig10_{}", method.tag());
        if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, &name, &svg) {
            println!("[svg written to {}]", path.display());
        }
    }
    println!();
    println!("(paper: indexing keeps the reduction share minimal at 24 threads)\n");
    Ok(())
}

/// E-COLOR — the coloring-scheduled strategy against the paper's best
/// reduction strategy: per matrix at max threads, the schedule's group
/// count (barriers per spmv), both kernels' times, and the `sss-idx`
/// reduce share the schedule eliminates. `sss-race` runs all threads
/// directly on `y` — no local vectors, no reduction phase — at the cost
/// of one barrier per color group.
pub fn colors(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Colors: reduction-free sss-race vs sss-idx at {} threads ==\n",
        cfg.max_threads
    );
    let mut t = Table::new(&[
        "matrix",
        "groups",
        "race(ms)",
        "idx(ms)",
        "idx reduce share",
        "race/idx",
    ]);
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        let mut race = SymSpmv::from_coo(&m.coo, &ctx, ReductionMethod::Race, SymFormat::Sss)
            .map_err(|e| HarnessError::matrix("SSS race kernel", m.spec.name, e))?;
        let groups = race.schedule_groups().unwrap_or(0);
        let mut idx = SymSpmv::from_coo(&m.coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
            .map_err(|e| HarnessError::matrix("SSS idx kernel", m.spec.name, e))?;
        let mr = measure(&mut race, cfg.iterations);
        let mi = measure(&mut idx, cfg.iterations);
        let race_ms = mr.wall.as_secs_f64() * 1e3;
        let idx_ms = mi.wall.as_secs_f64() * 1e3;
        let mult = mi.times.multiply.as_secs_f64();
        let red = mi.times.reduce.as_secs_f64();
        t.row(vec![
            m.spec.name.into(),
            groups.to_string(),
            f(race_ms, 2),
            f(idx_ms, 2),
            pct(red / (mult + red).max(1e-12)),
            f(race_ms / idx_ms.max(1e-12), 2),
        ]);
    }
    cfg.emit("colors", &t)?;
    println!(
        "(RACE-style level coloring: direct writes, zero locals — wins where \
         sss-idx's reduction phase dominates)\n"
    );
    Ok(())
}

/// E6 — Fig. 11: CSX-Sym speedup versus CSR/CSX/SSS-idx.
pub fn fig11(cfg: &ExpConfig) -> Result<(), HarnessError> {
    speedup_figure(
        cfg,
        "fig11",
        "Fig. 11: symmetric SpMV speedup with CSX-Sym (baseline: serial CSR)",
        KernelSpec::figure11_lineup(),
    )?;
    println!("(paper: CSX-Sym adds 43.4% over SSS-idx on the SMP system, ~10% on NUMA)\n");
    Ok(())
}

/// Per-matrix Gflop/s table at max threads for a lineup (Fig. 12 / 13).
fn permatrix_gflops(
    cfg: &ExpConfig,
    name: &str,
    title: &str,
    reorder: bool,
) -> Result<(), HarnessError> {
    println!("== {title} ==\n");
    let lineup = KernelSpec::figure11_lineup();
    let mut header = vec!["matrix".to_string()];
    header.extend(lineup.iter().map(|s| format!("{} Gflop/s", s.name())));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let mut best_counts = vec![0usize; lineup.len()];
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        let coo = if reorder {
            rcm_of(&m.coo, m.spec.name)?
        } else {
            m.coo.clone()
        };
        let mut row = vec![m.spec.name.to_string()];
        let mut vals = Vec::new();
        for &spec in &lineup {
            let mut k = kernel_of(spec, &coo, &ctx, m.spec.name)?;
            let meas = measure(&mut *k, cfg.iterations);
            vals.push(meas.gflops);
            row.push(f(meas.gflops, 2));
        }
        if let Some((best, _)) = vals.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) {
            best_counts[best] += 1;
        }
        t.row(row);
    }
    cfg.emit(name, &t)?;
    for (i, spec) in lineup.iter().enumerate() {
        println!(
            "  {} is fastest on {} matrices",
            spec.name(),
            best_counts[i]
        );
    }
    println!();
    Ok(())
}

/// E7 — Fig. 12: per-matrix performance at max threads.
pub fn fig12(cfg: &ExpConfig) -> Result<(), HarnessError> {
    permatrix_gflops(
        cfg,
        "fig12",
        &format!(
            "Fig. 12: per-matrix SpMV performance at {} threads",
            cfg.max_threads
        ),
        false,
    )?;
    println!("(paper: CSX-Sym best on 8/12 matrices; high-bandwidth cases favor CSR)\n");
    Ok(())
}

/// E8 — Table III: SpMV improvement from RCM reordering.
pub fn table3(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Table III: SpMV improvement due to RCM reordering ({} threads) ==\n",
        cfg.max_threads
    );
    let lineup = KernelSpec::figure11_lineup();
    let paper_dunnington = [22.0, 63.0, 92.2, 106.8];
    let paper_gainestown = [11.1, 14.0, 43.6, 48.5];
    let mut t = Table::new(&[
        "format",
        "measured improvement",
        "paper (Dunnington)",
        "paper (Gainestown)",
    ]);
    let suite = cfg.suite();
    let ctx = ExecutionContext::new(cfg.max_threads);
    for (ki, &spec) in lineup.iter().enumerate() {
        let mut ratios = Vec::new();
        for m in &suite {
            let reordered = rcm_of(&m.coo, m.spec.name)?;
            let mut k0 = kernel_of(spec, &m.coo, &ctx, m.spec.name)?;
            let g0 = measure(&mut *k0, cfg.iterations).gflops;
            drop(k0);
            let mut k1 = kernel_of(spec, &reordered, &ctx, m.spec.name)?;
            let g1 = measure(&mut *k1, cfg.iterations).gflops;
            ratios.push(g1 / g0);
        }
        t.row(vec![
            spec.name().to_string(),
            pct(geomean(&ratios) - 1.0),
            format!("{:.1}%", paper_dunnington[ki]),
            format!("{:.1}%", paper_gainestown[ki]),
        ]);
    }
    cfg.emit("table3", &t)
}

/// E9 — Fig. 13: per-matrix performance on RCM-reordered matrices.
pub fn fig13(cfg: &ExpConfig) -> Result<(), HarnessError> {
    permatrix_gflops(
        cfg,
        "fig13",
        &format!(
            "Fig. 13: per-matrix SpMV performance on RCM-reordered matrices ({} threads)",
            cfg.max_threads
        ),
        true,
    )
}

/// E10 — §V-E: preprocessing cost of CSX-Sym in serial-CSR-SpMV units.
pub fn preproc(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== §V-E: CSX-Sym preprocessing cost (units: serial CSR SpMV) ==\n");
    let mut t = Table::new(&["matrix", "original", "RCM-reordered"]);
    let mut orig_units = Vec::new();
    let mut reord_units = Vec::new();
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        let mut units = Vec::new();
        for coo in [m.coo.clone(), rcm_of(&m.coo, m.spec.name)?] {
            let csr = CsrMatrix::from_coo(&coo);
            let unit = serial_csr_spmv_time(&csr, 8);
            let k = kernel_of(
                KernelSpec::CsxSym(ReductionMethod::Indexing),
                &coo,
                &ctx,
                m.spec.name,
            )?;
            let pre = k.times().preprocess;
            units.push(pre.as_secs_f64() / unit.as_secs_f64().max(1e-12));
        }
        orig_units.push(units[0]);
        reord_units.push(units[1]);
        t.row(vec![m.spec.name.into(), f(units[0], 1), f(units[1], 1)]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        f(avg(&orig_units), 1),
        f(avg(&reord_units), 1),
    ]);
    cfg.emit("preproc", &t)?;
    println!("(paper: 49/94 serial SpMVs on Dunnington/Gainestown; 59/115 reordered)\n");
    Ok(())
}

/// E11 — Fig. 14: CG execution-time breakdown on RCM-reordered matrices.
pub fn fig14(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Fig. 14: CG time breakdown, {} iterations, RCM-reordered, {} threads ==\n",
        cfg.cg_iters, cfg.max_threads
    );
    let lineup = KernelSpec::figure11_lineup();
    let mut t = Table::new(&[
        "matrix",
        "format",
        "spmv(ms)",
        "reduce(ms)",
        "vecops(ms)",
        "preproc(ms)",
        "total(ms)",
    ]);
    let cg_cfg = symspmv_solver::CgConfig {
        max_iters: cfg.cg_iters,
        rel_tol: 0.0,
        record_history: false,
    };
    let mut bars: Vec<Vec<crate::plot::Bar>> = vec![Vec::new(); lineup.len()];
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        let coo = rcm_of(&m.coo, m.spec.name)?;
        let n = coo.nrows() as usize;
        let b = symspmv_sparse::dense::seeded_vector(n, 0xC6);
        for (ki, &spec) in lineup.iter().enumerate() {
            let mut k = kernel_of(spec, &coo, &ctx, m.spec.name)?;
            let mut x = vec![0.0; n];
            let res = symspmv_solver::cg(&mut *k, &b, &mut x, &cg_cfg);
            let ms = |d: std::time::Duration| f(d.as_secs_f64() * 1e3, 1);
            let msf = |d: std::time::Duration| d.as_secs_f64() * 1e3;
            bars[ki].push(crate::plot::Bar {
                label: m.spec.name.into(),
                segments: vec![
                    msf(res.times.multiply),
                    msf(res.times.reduce),
                    msf(res.times.vector_ops),
                    msf(res.times.preprocess),
                ],
            });
            t.row(vec![
                m.spec.name.into(),
                spec.name().to_string(),
                ms(res.times.multiply),
                ms(res.times.reduce),
                ms(res.times.vector_ops),
                ms(res.times.preprocess),
                ms(res.times.total()),
            ]);
        }
    }
    cfg.emit("fig14", &t)?;
    for (ki, spec) in lineup.iter().enumerate() {
        if bars[ki].is_empty() {
            continue;
        }
        let svg = crate::plot::stacked_bars(
            &format!(
                "Fig. 14 — CG breakdown with {} ({} iterations, RCM)",
                spec.name(),
                cfg.cg_iters
            ),
            "time (ms)",
            &["spmv", "reduce", "vecops", "preproc"],
            &bars[ki],
        );
        let name = format!("fig14_{}", spec.name().replace('-', "_"));
        if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, &name, &svg) {
            println!("[svg written to {}]", path.display());
        }
    }
    println!();
    println!("(paper: >50% CG improvement from symmetric formats on large matrices;\n CSX-Sym preprocessing amortizes only on the larger ones)\n");
    Ok(())
}

/// Extension — ablation of the CSX-Sym detection configuration: which
/// substructure families and preprocessing settings buy the compression,
/// and what they cost (the design-choice study DESIGN.md calls out).
pub fn ablation(cfg: &ExpConfig) -> Result<(), HarnessError> {
    use symspmv_csx::detect::{DetectConfig, Family};
    println!("== Ablation: CSX-Sym detection configuration ==\n");

    let variants: Vec<(&str, DetectConfig)> = vec![
        ("default", DetectConfig::default()),
        (
            "min_run_len=2",
            DetectConfig {
                min_run_len: 2,
                ..DetectConfig::default()
            },
        ),
        (
            "min_run_len=8",
            DetectConfig {
                min_run_len: 8,
                ..DetectConfig::default()
            },
        ),
        (
            "sample=25%",
            DetectConfig {
                sample_fraction: 0.25,
                ..DetectConfig::default()
            },
        ),
        (
            "sample=5%",
            DetectConfig {
                sample_fraction: 0.05,
                ..DetectConfig::default()
            },
        ),
        (
            "delta-only",
            DetectConfig {
                candidate_families: vec![],
                ..DetectConfig::default()
            },
        ),
        (
            "blocks-only",
            DetectConfig {
                candidate_families: vec![
                    Family::Block(2, 2),
                    Family::Block(3, 3),
                    Family::Block(4, 4),
                ],
                min_coverage: 0.0,
                ..DetectConfig::default()
            },
        ),
        (
            "runs-only",
            DetectConfig {
                candidate_families: vec![
                    Family::Horizontal,
                    Family::Vertical,
                    Family::Diagonal,
                    Family::AntiDiagonal,
                ],
                min_coverage: 0.0,
                ..DetectConfig::default()
            },
        ),
    ];

    let mut t = Table::new(&[
        "matrix",
        "config",
        "CR",
        "coverage",
        "preproc(units)",
        "Gflop/s",
    ]);
    let ctx = ExecutionContext::new(cfg.max_threads);
    for name in ["hood", "thermal2"] {
        let Some(spec) = symspmv_sparse::suite::spec_by_name(name) else {
            continue;
        };
        let m = symspmv_sparse::suite::generate(spec, cfg.scale);
        let sss = sss_of(&m.coo, name)?;
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), cfg.max_threads);
        let csr = CsrMatrix::from_coo(&m.coo);
        let unit = serial_csr_spmv_time(&csr, 8);
        for (label, dcfg) in &variants {
            let t0 = std::time::Instant::now();
            let enc = symspmv_core::CsxSymMatrix::from_sss(&sss, &parts, dcfg);
            let pre = t0.elapsed();
            let mut k = SymSpmv::from_sss(
                sss.clone(),
                &ctx,
                ReductionMethod::Indexing,
                SymFormat::CsxSym(dcfg.clone()),
            );
            let meas = measure(&mut k, cfg.iterations.min(64));
            t.row(vec![
                name.into(),
                (*label).into(),
                pct(enc.compression_ratio()),
                pct(enc.coverage()),
                f(pre.as_secs_f64() / unit.as_secs_f64().max(1e-12), 1),
                f(meas.gflops, 2),
            ]);
        }
    }
    cfg.emit("ablation", &t)
}

/// Extension — the related-work comparison of §VI: the paper's best
/// configurations (SSS-idx, CSX-Sym-idx) against CSB, symmetric CSB
/// (banded locals + atomics) and the pure-atomics kernel, per matrix at
/// max threads.
pub fn related(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Extension: related-work comparison (§VI) at {} threads ==\n",
        cfg.max_threads
    );
    let lineup = KernelSpec::related_work_lineup();
    let mut header = vec!["matrix".to_string()];
    header.extend(lineup.iter().map(|s| format!("{} Gflop/s", s.name())));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        let mut row = vec![m.spec.name.to_string()];
        for &spec in &lineup {
            let mut k = kernel_of(spec, &m.coo, &ctx, m.spec.name)?;
            row.push(f(measure(&mut *k, cfg.iterations).gflops, 2));
        }
        t.row(row);
    }
    cfg.emit("related", &t)?;
    println!("(paper §VI: CSB-sym's atomics bind on high-bandwidth matrices;\n the colorful method never beat local vectors)\n");
    Ok(())
}

/// Extension — batched SpMM: per-vector throughput of `k = cfg.rhs`
/// simultaneous right-hand sides against the scalar (`k = 1`) kernel, for
/// every block-capable format at max threads. The matrix is read once per
/// `spmm` regardless of `k`, so the per-vector speedup measures how much
/// of the kernel was memory-bound on the matrix stream.
pub fn spmm(cfg: &ExpConfig) -> Result<(), HarnessError> {
    use crate::conformance::build_block_kernel;
    use crate::framework::measure_spmm;

    let k = cfg.rhs;
    if !symspmv_sparse::block::SUPPORTED_LANES.contains(&k) {
        return Err(HarnessError::Config(format!(
            "--rhs {k} is not a supported lane count {:?}",
            symspmv_sparse::block::SUPPORTED_LANES
        )));
    }
    println!(
        "== Extension: batched SpMM with {k} right-hand sides at {} threads ==\n",
        cfg.max_threads
    );
    let lineup = [
        KernelSpec::Csr,
        KernelSpec::Sss(ReductionMethod::Indexing),
        KernelSpec::CsxSym(ReductionMethod::Indexing),
        KernelSpec::CsbSym,
    ];
    let mut t = Table::new(&[
        "matrix",
        "format",
        "k=1 us/vec",
        "k us/vec",
        "per-vec speedup",
        "Gflop/s",
    ]);
    let ctx = ExecutionContext::new(cfg.max_threads);
    for m in cfg.suite() {
        for &spec in &lineup {
            let mut eng = build_block_kernel(spec, &m.coo, &ctx)
                .map_err(|e| {
                    HarnessError::matrix(format!("{} kernel", spec.name()), m.spec.name, e)
                })?
                .unwrap_or_else(|| unreachable!("lineup holds only block-capable specs"));
            let scalar = measure_spmm(&mut *eng, cfg.iterations, 1);
            let block = measure_spmm(&mut *eng, cfg.iterations, k);
            let t1 = scalar.per_spmv().as_secs_f64() * 1e6;
            let tk = block.per_spmv().as_secs_f64() * 1e6 / k as f64;
            t.row(vec![
                m.spec.name.to_string(),
                spec.name().to_string(),
                f(t1, 2),
                f(tk, 2),
                f(t1 / tk, 2),
                f(block.gflops, 2),
            ]);
        }
    }
    cfg.emit("spmm", &t)?;
    println!("(expectation: symmetric formats gain the most — their matrix\n stream is half of CSR's, so k vectors amortize it further)\n");
    Ok(())
}

/// Extension — atomic-update symmetric SpMV versus the local-vector
/// methods (the CSB-style alternative the paper's related work predicts is
/// "bound by the atomic operations" on high-bandwidth matrices).
pub fn atomics(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== Extension: atomic updates vs local-vector reductions ==\n");
    let lineup = vec![
        KernelSpec::Sss(ReductionMethod::Naive),
        KernelSpec::Sss(ReductionMethod::Indexing),
        KernelSpec::SssAtomic,
    ];
    let mut header = vec!["matrix".to_string(), "threads".to_string()];
    header.extend(lineup.iter().map(|s| format!("{} Gflop/s", s.name())));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for name in ["hood", "thermal2"] {
        let Some(spec) = symspmv_sparse::suite::spec_by_name(name) else {
            continue;
        };
        if !cfg.matrices.is_empty() && !cfg.matrices.iter().any(|m| m == name) {
            continue;
        }
        let m = symspmv_sparse::suite::generate(spec, cfg.scale);
        for &p in &cfg.thread_sweep() {
            let ctx = ExecutionContext::new(p);
            let mut row = vec![name.to_string(), p.to_string()];
            for &ks in &lineup {
                let mut k = kernel_of(ks, &m.coo, &ctx, name)?;
                row.push(f(measure(&mut *k, cfg.iterations).gflops, 2));
            }
            t.row(row);
        }
    }
    cfg.emit("atomics", &t)?;
    println!("(expectation: atomics competitive at low thread counts and on\n low-conflict matrices, degrading with contention — §VI)\n");
    Ok(())
}

/// Extension — end-to-end self-check: every kernel spec x several thread
/// counts against the dense reference on every suite matrix. Returns
/// [`HarnessError::VerificationFailed`] on any mismatch (the binary turns
/// that into a nonzero exit), so it can serve as a post-install smoke test.
pub fn verify(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== Verify: all kernels vs reference on the full suite ==\n");
    let specs: Vec<KernelSpec> = [
        "csr",
        "csx",
        "bcsr",
        "csb",
        "csb-sym",
        "sss-naive",
        "sss-eff",
        "sss-idx",
        "sss-race",
        "sss-atomic",
        "sss-color",
        "csxsym-naive",
        "csxsym-eff",
        "csxsym-idx",
        "hybrid-idx",
    ]
    .iter()
    .filter_map(|s| KernelSpec::parse(s))
    .collect();
    let threads: Vec<usize> = vec![1, 2, cfg.max_threads.max(3)];
    let ctxs: Vec<Arc<ExecutionContext>> =
        threads.iter().map(|&p| ExecutionContext::new(p)).collect();
    let mut t = Table::new(&[
        "matrix",
        "kernels",
        "thread counts",
        "max |rel err|",
        "status",
    ]);
    let mut failures = 0usize;
    for m in cfg.suite() {
        let n = m.coo.nrows() as usize;
        let x = symspmv_sparse::dense::seeded_vector(n, 0x5EED);
        let mut y_ref = vec![0.0; n];
        m.coo.spmv_reference(&x, &mut y_ref);
        let mut worst = 0.0f64;
        for &spec in &specs {
            for ctx in &ctxs {
                let mut k = kernel_of(spec, &m.coo, ctx, m.spec.name)?;
                let mut y = vec![f64::NAN; n];
                k.spmv(&x, &mut y);
                worst = worst.max(symspmv_sparse::dense::max_rel_diff(&y, &y_ref));
            }
        }
        let ok = worst < 1e-10;
        if !ok {
            failures += 1;
        }
        t.row(vec![
            m.spec.name.into(),
            specs.len().to_string(),
            format!("{threads:?}"),
            format!("{worst:.2e}"),
            if ok { "ok".into() } else { "FAIL".into() },
        ]);
    }
    cfg.emit("verify", &t)?;
    if failures > 0 {
        return Err(HarnessError::VerificationFailed { failures });
    }
    println!("all kernels agree on all suite matrices \u{2713}\n");
    Ok(())
}

/// Extension — symmetry kinds: the generalized engine on the skew and
/// structural [`symspmv_sparse::suite::KIND_SUITE`] entries, each row
/// tagged with its kind, with the PARS3-style RCM comparison alongside
/// (the scrambled convection matrix is where skew+RCM must win: the
/// reordering recovers the band, shrinking the conflict region and the
/// `x` working set at once).
pub fn kinds(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Extension: symmetry kinds at {} threads (skew / structural engines, RCM effect) ==\n",
        cfg.max_threads
    );
    let lineup = [
        KernelSpec::Sss(ReductionMethod::Indexing),
        KernelSpec::CsxSym(ReductionMethod::Indexing),
        KernelSpec::CsbSym,
    ];
    let mut t = Table::new(&[
        "matrix",
        "kind",
        "format",
        "natural Gflop/s",
        "RCM Gflop/s",
        "RCM speedup",
    ]);
    let ctx = ExecutionContext::new(cfg.max_threads);
    for spec in &symspmv_sparse::suite::KIND_SUITE {
        if !cfg.matrices.is_empty() && !cfg.matrices.iter().any(|m| m == spec.name) {
            continue;
        }
        let m = symspmv_sparse::suite::generate(spec, cfg.scale);
        let reordered = rcm_of(&m.coo, spec.name)?;
        for &ks in &lineup {
            let mut k0 = kernel_of_kind(ks, &m.coo, spec.kind, &ctx, spec.name)?;
            let g0 = measure(&mut *k0, cfg.iterations).gflops;
            drop(k0);
            let mut k1 = kernel_of_kind(ks, &reordered, spec.kind, &ctx, spec.name)?;
            let g1 = measure(&mut *k1, cfg.iterations).gflops;
            t.row(vec![
                spec.name.to_string(),
                spec.kind.tag().to_string(),
                ks.name().to_string(),
                f(g0, 2),
                f(g1, 2),
                f(g1 / g0, 2),
            ]);
        }
    }
    cfg.emit("kinds", &t)?;
    println!("(expectation: skew+RCM beats skew-natural on the scrambled\n convection matrix — the PARS3 result; structural rows verify the\n paired-values engine runs at full-storage-competitive rates)\n");
    Ok(())
}

/// Extension — host characterization (Table II substitute).
pub fn machine(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!("== Host platform (Table II substitute) ==\n");
    let t = crate::machine::describe();
    cfg.emit("machine", &t)
}

/// Extension — re-render the SVG figures from existing CSVs in the output
/// directory, without re-measuring. Covers fig4, fig5 and the geomean
/// speedup figures (fig9/fig11).
pub fn plot(cfg: &ExpConfig) -> Result<(), HarnessError> {
    println!(
        "== Re-rendering figures from {} ==\n",
        cfg.out_dir.display()
    );
    let read = |name: &str| -> Option<(Vec<String>, Vec<Vec<String>>)> {
        let text = std::fs::read_to_string(cfg.out_dir.join(format!("{name}.csv"))).ok()?;
        crate::report::parse_csv(&text)
    };
    let mut rendered = 0usize;

    // fig4 / fig5: first column is the thread count, remaining columns are
    // series.
    for (name, title, ylab) in [
        (
            "fig4",
            "Fig. 4 — effective-region density vs thread count (suite average)",
            "density",
        ),
        (
            "fig5",
            "Fig. 5 — reduction working-set overhead (x of S_SSS, suite average)",
            "overhead / S_SSS",
        ),
    ] {
        let Some((hdr, rows)) = read(name) else {
            continue;
        };
        let series: Vec<crate::plot::Series> = hdr[1..]
            .iter()
            .enumerate()
            .take(4)
            .map(|(i, h)| crate::plot::Series {
                name: h.clone(),
                points: rows
                    .iter()
                    .filter_map(|r| {
                        Some((
                            crate::report::parse_cell_number(&r[0])?,
                            crate::report::parse_cell_number(&r[i + 1])?,
                        ))
                    })
                    .collect(),
            })
            .filter(|s| s.points.len() >= 2)
            .collect();
        if series.is_empty() {
            continue;
        }
        let svg = crate::plot::line_chart(title, "threads", ylab, &series);
        if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, name, &svg) {
            println!("[svg written to {}]", path.display());
            rendered += 1;
        }
    }

    // fig9 / fig11 geomean tables: columns are matrix, threads, kernels...
    for (name, title) in [
        (
            "fig9",
            "Fig. 9 — reduction-method speedup (geomean, baseline: serial CSR)",
        ),
        (
            "fig11",
            "Fig. 11 — format speedup (geomean, baseline: serial CSR)",
        ),
    ] {
        let Some((hdr, rows)) = read(name) else {
            continue;
        };
        if hdr.len() < 3 {
            continue;
        }
        let series: Vec<crate::plot::Series> = hdr[2..]
            .iter()
            .enumerate()
            .take(4)
            .map(|(i, h)| crate::plot::Series {
                name: h.clone(),
                points: rows
                    .iter()
                    .filter_map(|r| {
                        Some((
                            crate::report::parse_cell_number(&r[1])?,
                            crate::report::parse_cell_number(&r[i + 2])?,
                        ))
                    })
                    .collect(),
            })
            .filter(|s| s.points.len() >= 2)
            .collect();
        if series.is_empty() {
            continue;
        }
        let svg = crate::plot::line_chart(title, "threads", "speedup vs serial CSR", &series);
        if let Ok(path) = crate::plot::write_svg(&cfg.out_dir, name, &svg) {
            println!("[svg written to {}]", path.display());
            rendered += 1;
        }
    }
    println!("{rendered} figures rendered\n");
    Ok(())
}

/// Extension — resilience chaos soak: replays a seeded kill/delay/
/// corrupt/wedge fault schedule against the [`symspmv_core::Resilient`]
/// service on every kind-suite matrix, verifying that each request is
/// served bit-identically (parallel vs the fault-free baseline, fallback
/// vs the serial reference) and that availability stays 100%. See
/// [`crate::chaos`] and DESIGN.md §16.
#[cfg(feature = "fault-injection")]
pub fn chaos(cfg: &ExpConfig) -> Result<(), HarnessError> {
    crate::chaos::run(cfg)
}

/// Without the `fault-injection` feature the runtime carries no injection
/// hooks, so the chaos driver cannot arm its schedule; explain how to get
/// a soak instead of silently doing nothing.
#[cfg(not(feature = "fault-injection"))]
pub fn chaos(_cfg: &ExpConfig) -> Result<(), HarnessError> {
    Err(HarnessError::Config(
        "the chaos soak needs the runtime's fault-injection hooks; rebuild with \
         `cargo run --release -p symspmv-harness --features fault-injection \
         --bin experiments -- chaos`"
            .into(),
    ))
}

/// Extension — `experiments tune` (DESIGN.md §18): the measurement-driven
/// plan search. For every suite matrix it prunes the `format × reduction
/// method × thread count × lane width` space with the Eq. 1–2/3–6 traffic
/// model, measures the survivors with short timed runs, persists the
/// certified winner in the on-disk plan store, and proves the store works
/// by re-running the search (which must hit, without re-measurement, and
/// reproduce the same plan). The winner must never be slower than the
/// paper's conventional recommendation (SSS + local-vectors indexing at
/// full thread count) beyond `SYMSPMV_BENCH_RTOL` (default 30%, the
/// bench-ci noise rule). Writes the full search table as `BENCH_tune.json`
/// ledger rows into `SYMSPMV_BENCH_DIR` (default: the output directory).
pub fn tune(cfg: &ExpConfig) -> Result<(), HarnessError> {
    use symspmv_core::auto::FormatTag;
    use symspmv_tune::{tune_and_store, PlanStore, TimedMeasurer, TuneOptions};

    let store_dir = std::env::var_os("SYMSPMV_PLAN_STORE")
        .map(PathBuf::from)
        .unwrap_or_else(|| cfg.out_dir.join(".plan-store"));
    let rtol = std::env::var("SYMSPMV_BENCH_RTOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|r| r.is_finite() && *r >= 0.0)
        .unwrap_or(0.30);
    let mut opts = TuneOptions::for_machine(cfg.max_threads);
    opts.thread_counts = cfg.thread_sweep();
    opts.seed = cfg.seed;
    let max_p = opts.thread_counts.iter().copied().max().unwrap_or(1);
    let plan_err = |name: &str, e: symspmv_core::SymSpmvError| {
        HarnessError::matrix("plan search", name.to_string(), e)
    };

    println!(
        "== Auto-tuning: measured plan search (store: {}, schema v{}) ==\n",
        store_dir.display(),
        symspmv_tune::PLAN_STORE_VERSION,
    );

    let mut measurer = TimedMeasurer::new();
    let mut search = Table::new(&[
        "matrix",
        "candidate",
        "pred B/vec",
        "measured",
        "per-vector",
        "note",
    ]);
    let mut summary = Table::new(&[
        "matrix",
        "source",
        "plan",
        "winner s/vec",
        "default s/vec",
        "win vs default",
    ]);
    let mut bench_rows: Vec<crate::ledger::SampleSet> = Vec::new();

    for m in cfg.suite() {
        let name = m.spec.name;
        let mut store = PlanStore::open(&store_dir).map_err(|e| plan_err(name, e))?;
        if store.ignored_version_mismatch() {
            println!("[{name}: plan store has a different schema version; starting fresh]");
        }
        let (outcome, hit) = tune_and_store(&m.coo, &mut store, &opts, &mut measurer)
            .map_err(|e| plan_err(name, e))?;

        let default_row = outcome.rows.iter().find(|r| {
            !r.pruned
                && r.spec.lanes == 1
                && r.spec.format == FormatTag::Sss
                && r.spec.method == ReductionMethod::Indexing
                && r.spec.nthreads == max_p
        });
        for row in &outcome.rows {
            let is_winner = !row.pruned
                && row.spec.format == outcome.winner.spec.format
                && row.spec.method == outcome.winner.spec.method
                && row.spec.nthreads == outcome.winner.spec.nthreads
                && row.spec.lanes == 1;
            let mut note = String::new();
            if is_winner {
                note.push_str("winner");
            }
            if default_row.is_some_and(|d| d.spec == row.spec) {
                if !note.is_empty() {
                    note.push_str(", ");
                }
                note.push_str("default");
            }
            search.row(vec![
                name.into(),
                row.spec.id(),
                f(row.predicted_bytes, 0),
                if row.pruned {
                    "pruned".into()
                } else {
                    format!("{} samples", row.samples.len())
                },
                if row.pruned {
                    "-".into()
                } else {
                    fmt_secs(row.per_vector_secs)
                },
                note,
            ]);
            if !row.pruned {
                bench_rows.push(crate::ledger::SampleSet {
                    group: format!("tune/{name}"),
                    id: row.spec.id(),
                    iters: opts.iterations as u64,
                    samples: row.samples.clone(),
                    kind: None,
                    elements: Some(m.coo.nnz() as u64),
                    flops: None,
                    bytes: Some(row.predicted_bytes as u64),
                    phases: None,
                });
            }
        }

        if hit {
            summary.row(vec![
                name.into(),
                "store".into(),
                outcome.winner.spec.id(),
                fmt_secs(outcome.winner.measured_secs),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }

        // The winner is the measured argmin over a set that always
        // contains the conventional default, so losing to the default
        // beyond noise means the search itself is broken — fail loudly.
        let default_row = default_row.ok_or_else(|| {
            HarnessError::Config(format!(
                "tune({name}): the conventional sss-idx-p{max_p} default was never measured"
            ))
        })?;
        if outcome.winner.measured_secs > default_row.per_vector_secs * (1.0 + rtol) {
            return Err(HarnessError::Config(format!(
                "tune({name}): tuned plan {} ({}) is slower than the conventional \
                 sss-idx-p{max_p} default ({}) beyond the {:.0}% noise tolerance",
                outcome.winner.spec.id(),
                fmt_secs(outcome.winner.measured_secs),
                fmt_secs(default_row.per_vector_secs),
                rtol * 100.0,
            )));
        }

        // Second run against the just-saved store: it must hit (no
        // re-measurement) and serve back the identical certified plan.
        let mut reloaded = PlanStore::open(&store_dir).map_err(|e| plan_err(name, e))?;
        let (again, hit2) = tune_and_store(&m.coo, &mut reloaded, &opts, &mut measurer)
            .map_err(|e| plan_err(name, e))?;
        if !hit2 || again.measured != 0 || again.winner != outcome.winner {
            return Err(HarnessError::Config(format!(
                "tune({name}): the persisted plan did not reproduce on reload \
                 (hit={hit2}, re-measured={}); the plan store is not round-tripping",
                again.measured
            )));
        }

        // Which path does the engine itself take now? `SymSpmv::auto`
        // must consult the store and report it.
        let (_, choice) =
            symspmv_tune::auto_kernel(&m.coo, Some(&reloaded)).map_err(|e| plan_err(name, e))?;
        summary.row(vec![
            name.into(),
            choice.source.tag().into(),
            outcome.winner.spec.id(),
            fmt_secs(outcome.winner.measured_secs),
            fmt_secs(default_row.per_vector_secs),
            format!(
                "{:.2}x",
                default_row.per_vector_secs / outcome.winner.measured_secs.max(1e-12)
            ),
        ]);
    }

    cfg.emit("tune", &search)?;
    println!("== Tuned plans ==\n");
    cfg.emit("tune_summary", &summary)?;

    // The search table doubles as bench-ledger rows so CI can archive the
    // measurements next to BENCH_ci.json. A run served entirely from the
    // store measured nothing — leave the previous ledger in place rather
    // than clobbering it with an empty one.
    if bench_rows.is_empty() {
        println!("[all plans served from the store; ledger left unchanged]\n");
        return Ok(());
    }
    let report = crate::ledger::BenchReport {
        target: "tune".into(),
        machine: crate::machine::MachineInfo::detect(),
        samples: bench_rows,
    };
    let bench_dir = std::env::var_os("SYMSPMV_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| cfg.out_dir.clone());
    let io_err = |source: std::io::Error| HarnessError::Io {
        path: bench_dir.join(report.file_name()),
        source,
    };
    std::fs::create_dir_all(&bench_dir).map_err(io_err)?;
    let text = report
        .to_json()
        .map_err(|e| HarnessError::Config(format!("tune ledger did not serialize: {e}")))?;
    let ledger_path = bench_dir.join(report.file_name());
    std::fs::write(&ledger_path, text).map_err(io_err)?;
    println!("[ledger written to {}]\n", ledger_path.display());
    Ok(())
}

/// Runs every experiment in paper order, stopping at the first failure.
pub fn all(cfg: &ExpConfig) -> Result<(), HarnessError> {
    machine(cfg)?;
    table1(cfg)?;
    fig4(cfg)?;
    fig5(cfg)?;
    fig9(cfg)?;
    fig10(cfg)?;
    fig11(cfg)?;
    fig12(cfg)?;
    table3(cfg)?;
    fig13(cfg)?;
    preproc(cfg)?;
    fig14(cfg)?;
    ablation(cfg)?;
    atomics(cfg)?;
    spmm(cfg)?;
    kinds(cfg)?;
    colors(cfg)?;
    tune(cfg)?;
    related(cfg)
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn thread_sweep_covers_powers_and_max() {
        let sweep = |max_threads| {
            ExpConfig {
                max_threads,
                ..ExpConfig::default()
            }
            .thread_sweep()
        };
        assert_eq!(sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(sweep(1), vec![1]);
    }

    #[test]
    fn suite_filter_and_cache() {
        let dir = std::env::temp_dir().join("symspmv_cfg_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ExpConfig {
            scale: 0.002,
            matrices: vec!["hood".into(), "nd12k".into()],
            out_dir: dir.clone(),
            ..ExpConfig::default()
        };
        let suite = cfg.suite();
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].spec.name, "hood");
        // Cache files were written and a second load agrees.
        assert!(dir.join(".suite-cache").exists());
        let again = cfg.suite();
        assert_eq!(again[1].coo, suite[1].coo);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_config_sane() {
        let cfg = ExpConfig::default();
        assert!(cfg.scale > 0.0);
        assert!(cfg.iterations > 0);
        assert!(cfg.max_threads >= 1);
    }
}
