//! Differential conformance oracle: shared helpers for the exhaustive
//! format × strategy × nthreads × lanes equivalence suite
//! (`tests/conformance.rs` at the workspace root).
//!
//! The oracle's reference is the **serial SSS kernel** — the simplest
//! implementation of each symmetry kind's mirror rule, against which
//! every parallel kind/format/strategy/thread-count/lane-count
//! combination is compared on a seeded matrix suite spanning
//! `{symmetric, skew, structural}`. Two conformance classes exist:
//!
//! * **bitwise** — combinations proven to run the serial reference's exact
//!   per-element operation order: the direct-write SSS strategies
//!   (`sss-eff`, `sss-idx`) at one thread. These must match the reference
//!   bit for bit, per lane.
//! * **tolerance** — everything else accumulates in a different (but
//!   fixed) order; results must agree within [`REL_TOL`], the documented
//!   bound for re-associated double-precision sums on the suite's
//!   conditioning (see DESIGN.md §14 for the ULP policy).
//!
//! Failures format a one-line minimal reproducer (matrix constructor,
//! seed, format, thread count, lanes) so a failing combination can be
//! re-run in isolation.

use crate::kernels::{experiment_detect_config, KernelSpec};
use std::sync::Arc;
use symspmv_core::{BlockKernel, ReductionMethod, SymFormat, SymSpmv};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::max_rel_diff;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::{CooMatrix, SparseError, SssMatrix};

/// Relative tolerance for the non-bitwise conformance class: parallel
/// partitioning and format-specific traversal re-associate sums, which for
/// the suite's well-conditioned matrices stays within a few hundred ULPs —
/// orders of magnitude below this bound, which exists to catch *logic*
/// errors (wrong element, wrong lane, lost update), not rounding drift.
pub const REL_TOL: f64 = 1e-12;

/// Thread counts the oracle sweeps.
pub const ORACLE_THREADS: [usize; 4] = [1, 2, 3, 8];

/// Lane counts the oracle sweeps (the full supported set).
pub const ORACLE_LANES: [usize; 5] = [1, 2, 4, 8, 16];

/// One matrix of the seeded conformance suite.
pub struct SuiteMatrix {
    /// Reproducer text for the constructor call.
    pub repro: &'static str,
    /// Seed baked into the constructor (echoed in reproducers).
    pub seed: u64,
    /// The symmetry kind the matrix satisfies (and is validated against
    /// when half-storage kernels are built from it).
    pub kind: SymmetryKind,
    /// The matrix itself (full expanded coordinates, both triangles).
    pub coo: CooMatrix,
}

/// The seeded symmetric matrix suite: a banded matrix (conflicts stay
/// near the partition boundaries), a scattered-bandwidth matrix
/// (conflict-heavy, exercises the indexing path), and a 2-D Laplacian
/// (the paper's model problem family).
pub fn suite() -> Vec<SuiteMatrix> {
    vec![
        SuiteMatrix {
            repro: "gen::banded_random(257, 16, 6.0, 91)",
            seed: 91,
            kind: SymmetryKind::Symmetric,
            coo: symspmv_sparse::gen::banded_random(257, 16, 6.0, 91),
        },
        SuiteMatrix {
            repro: "gen::mixed_bandwidth(301, 7.0, 0.3, 5, 92)",
            seed: 92,
            kind: SymmetryKind::Symmetric,
            coo: symspmv_sparse::gen::mixed_bandwidth(301, 7.0, 0.3, 5, 92),
        },
        SuiteMatrix {
            repro: "gen::laplacian_2d(18, 18)",
            seed: 0,
            kind: SymmetryKind::Symmetric,
            coo: symspmv_sparse::gen::laplacian_2d(18, 18),
        },
    ]
}

/// The full kind-axis suite: the symmetric matrices of [`suite`] plus a
/// skew-symmetric convection operator (zero diagonal, `a_ji = -a_ij`) and
/// a structurally-symmetric matrix (symmetric pattern, independent paired
/// values). Every oracle sweep crosses `{symmetric, skew, structural}`
/// with the full format × thread × lane product.
pub fn full_suite() -> Vec<SuiteMatrix> {
    let mut v = suite();
    v.push(SuiteMatrix {
        repro: "gen::skew_convection(240, 11, 5.0, 93)",
        seed: 93,
        kind: SymmetryKind::Skew,
        coo: symspmv_sparse::gen::skew_convection(240, 11, 5.0, 93),
    });
    v.push(SuiteMatrix {
        repro: "gen::structural_random(263, 6.0, 0.4, 6, 94)",
        seed: 94,
        kind: SymmetryKind::Structural,
        coo: symspmv_sparse::gen::structural_random(263, 6.0, 0.4, 6, 94),
    });
    v
}

/// The formats with a batched (SpMM) path — the oracle's format axis.
pub fn block_specs() -> Vec<KernelSpec> {
    use ReductionMethod::{EffectiveRanges as Eff, Indexing as Idx, Naive, Race};
    vec![
        KernelSpec::Csr,
        KernelSpec::Sss(Naive),
        KernelSpec::Sss(Eff),
        KernelSpec::Sss(Idx),
        KernelSpec::Sss(Race),
        KernelSpec::CsxSym(Naive),
        KernelSpec::CsxSym(Eff),
        KernelSpec::CsxSym(Idx),
        KernelSpec::Hybrid(Idx),
        KernelSpec::CsbSym,
    ]
}

/// Builds the block-capable kernel for `spec` with the default
/// `Symmetric` kind. Returns `Ok(None)` for specs without a batched path
/// (the factory in [`crate::kernels`] still builds their scalar kernels).
pub fn build_block_kernel(
    spec: KernelSpec,
    coo: &CooMatrix,
    ctx: &Arc<ExecutionContext>,
) -> Result<Option<Box<dyn BlockKernel>>, SparseError> {
    build_block_kernel_kind(spec, coo, SymmetryKind::Symmetric, ctx)
}

/// Kind-aware block-kernel factory: the half-storage formats validate
/// `coo` against `kind` and apply its mirror rule; the CSR baseline
/// stores the full matrix and builds identically for every kind (which is
/// what lets it serve as a universal cross-check on the kind kernels).
pub fn build_block_kernel_kind(
    spec: KernelSpec,
    coo: &CooMatrix,
    kind: SymmetryKind,
    ctx: &Arc<ExecutionContext>,
) -> Result<Option<Box<dyn BlockKernel>>, SparseError> {
    let cfg = experiment_detect_config();
    Ok(Some(match spec {
        KernelSpec::Csr => Box::new(symspmv_core::CsrParallel::from_coo(coo, ctx)),
        KernelSpec::Sss(m) => Box::new(SymSpmv::from_coo_kind(coo, kind, ctx, m, SymFormat::Sss)?),
        KernelSpec::CsxSym(m) => Box::new(SymSpmv::from_coo_kind(
            coo,
            kind,
            ctx,
            m,
            SymFormat::CsxSym(cfg),
        )?),
        KernelSpec::Hybrid(m) => Box::new(SymSpmv::from_coo_kind(
            coo,
            kind,
            ctx,
            m,
            SymFormat::Hybrid {
                csx: cfg,
                min_coverage: 0.5,
            },
        )?),
        KernelSpec::CsbSym => {
            Box::new(symspmv_core::CsbSymParallel::from_coo_kind(coo, kind, ctx)?)
        }
        _ => return Ok(None),
    }))
}

/// Whether `(spec, nthreads)` is in the bitwise conformance class against
/// the serial SSS reference: the direct-write SSS strategies at one thread
/// run the reference's exact per-element op order. The scheduled `sss-race`
/// kernel is *not* in the class even at one thread — its diagonal pre-pass
/// initializes `y[r] = d·x[r]` before the grouped scatter, a different sum
/// order than the reference's fused `d·x[r] + acc` final write.
pub fn is_bitwise_class(spec: KernelSpec, nthreads: usize) -> bool {
    nthreads == 1
        && matches!(
            spec,
            KernelSpec::Sss(ReductionMethod::EffectiveRanges)
                | KernelSpec::Sss(ReductionMethod::Indexing)
        )
}

/// Whether `(spec, nthreads)` produces scheduling-dependent results even
/// for repeated identical calls: CSB-Sym's far transposed updates are
/// atomic adds whose interleaving varies run to run once more than one
/// worker exists. Such combinations are held to [`REL_TOL`] everywhere —
/// including the SpMM-vs-SpMV property, where every other format must be
/// bit-identical per lane.
pub fn is_nondeterministic(spec: KernelSpec, nthreads: usize) -> bool {
    matches!(spec, KernelSpec::CsbSym) && nthreads > 1
}

/// The serial SSS reference result for one input vector (`Symmetric`).
pub fn serial_reference(coo: &CooMatrix, x: &[f64]) -> Vec<f64> {
    serial_reference_kind(coo, SymmetryKind::Symmetric, x)
}

/// The per-kind serial SSS reference: the simplest implementation of the
/// kind's mirror rule (`+v`, `-v`, or the paired upper value), against
/// which every parallel combination of that kind is compared.
pub fn serial_reference_kind(coo: &CooMatrix, kind: SymmetryKind, x: &[f64]) -> Vec<f64> {
    let sss = match SssMatrix::from_coo_kind(coo, kind, 0.0) {
        Ok(s) => s,
        Err(e) => unreachable!("suite matrices satisfy their declared kind: {e}"),
    };
    let mut y = vec![0.0; x.len()];
    sss.spmv(x, &mut y);
    y
}

/// One-line reproducer for a failing combination.
pub fn repro_line(
    matrix: &SuiteMatrix,
    spec: KernelSpec,
    nthreads: usize,
    lanes: usize,
    vec_seed: u64,
) -> String {
    format!(
        "reproduce with: matrix={} (seed {}), kind={}, format={}, nthreads={}, lanes={}, x=VectorBlock::seeded(n, {}, {})",
        matrix.repro,
        matrix.seed,
        matrix.kind.tag(),
        spec.name(),
        nthreads,
        lanes,
        lanes,
        vec_seed
    )
}

/// Compares `got` to the serial reference `want` under the class rules.
/// Returns the failure description (without reproducer) on mismatch.
pub fn check_lane(got: &[f64], want: &[f64], bitwise: bool) -> Result<(), String> {
    if bitwise {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(format!(
                    "bitwise class: element {i} differs ({g:e} vs {w:e}, \
                     {:#018x} vs {:#018x})",
                    g.to_bits(),
                    w.to_bits()
                ));
            }
        }
        return Ok(());
    }
    let d = max_rel_diff(got, want);
    if d > REL_TOL {
        return Err(format!(
            "tolerance class: max relative difference {d:e} exceeds {REL_TOL:e}"
        ));
    }
    Ok(())
}
