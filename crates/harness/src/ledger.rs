//! The structured bench ledger: machine-annotated, phase-attributed
//! measurement records serialized as `BENCH_<target>.json`.
//!
//! Print-only bench output cannot be compared, gated or plotted after the
//! fact; following the Schubert/Hager/Fehske argument that SpMV numbers are
//! meaningless without machine context, every record carries the
//! [`MachineInfo`] it was measured on, the raw per-sample timings (so later
//! tooling can re-derive any statistic), the size model that converts time
//! into GFLOP/s and effective GB/s, and an optional per-phase breakdown
//! pulled from the `ExecutionContext` ledger.
//!
//! Schema (`bench-v1`): one [`BenchReport`] per bench target —
//! `{schema, target, machine, samples: [SampleSet...]}` — written through
//! the std-only [`crate::json`] module. Medians/MAD/min are *derived*
//! fields: they are emitted for `jq` convenience but recomputed from the
//! raw samples on parse, so a hand-edited baseline cannot disagree with its
//! own data.

use crate::json::{Json, JsonError};
use crate::machine::MachineInfo;
use symspmv_runtime::PhaseTimes;

/// Why a ledger document could not be built or understood.
#[derive(Debug)]
pub enum LedgerError {
    /// A measurement is NaN/infinite (or negative where impossible).
    NonFinite {
        /// Which record carried the bad value.
        context: String,
    },
    /// The text is not valid JSON.
    Json(JsonError),
    /// The JSON is valid but does not follow the `bench-v1` schema.
    Schema {
        /// What is missing or mistyped.
        reason: String,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::NonFinite { context } => {
                write!(fm, "non-finite measurement in {context}")
            }
            LedgerError::Json(e) => write!(fm, "{e}"),
            LedgerError::Schema { reason } => write!(fm, "not a bench-v1 document: {reason}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<JsonError> for LedgerError {
    fn from(e: JsonError) -> Self {
        LedgerError::Json(e)
    }
}

/// Schema tag written into every report.
pub const SCHEMA: &str = "bench-v1";

/// Wall-clock split across the four kernel phases, summed over `iters`
/// benchmark iterations (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// SpMV multiplication phase.
    pub multiply: f64,
    /// Local-vectors reduction phase.
    pub reduce: f64,
    /// Solver vector operations.
    pub vector_ops: f64,
    /// One-time preprocessing.
    pub preprocess: f64,
    /// Iterations the accounting covers (calibration included).
    pub iters: u64,
}

impl PhaseBreakdown {
    /// Converts an [`ExecutionContext`](symspmv_runtime::ExecutionContext)
    /// ledger snapshot covering `iters` iterations.
    pub fn from_times(times: &PhaseTimes, iters: u64) -> Self {
        PhaseBreakdown {
            multiply: times.multiply.as_secs_f64(),
            reduce: times.reduce.as_secs_f64(),
            vector_ops: times.vector_ops.as_secs_f64(),
            preprocess: times.preprocess.as_secs_f64(),
            iters,
        }
    }

    /// Total attributed seconds.
    pub fn total(&self) -> f64 {
        self.multiply + self.reduce + self.vector_ops + self.preprocess
    }

    fn to_json(self) -> Json {
        let mut o = Json::obj();
        o.push("multiply_s", Json::Num(self.multiply))
            .push("reduce_s", Json::Num(self.reduce))
            .push("vector_ops_s", Json::Num(self.vector_ops))
            .push("preprocess_s", Json::Num(self.preprocess))
            .push("iters", Json::Num(self.iters as f64));
        o
    }

    fn from_json(j: &Json, ctx: &str) -> Result<Self, LedgerError> {
        let field = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| LedgerError::Schema {
                    reason: format!("{ctx}: phases.{k} missing or invalid"),
                })
        };
        Ok(PhaseBreakdown {
            multiply: field("multiply_s")?,
            reduce: field("reduce_s")?,
            vector_ops: field("vector_ops_s")?,
            preprocess: field("preprocess_s")?,
            iters: j
                .get("iters")
                .and_then(Json::as_u64)
                .ok_or_else(|| LedgerError::Schema {
                    reason: format!("{ctx}: phases.iters missing"),
                })?,
        })
    }
}

/// Derived statistics of one sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median seconds per iteration.
    pub median: f64,
    /// Median absolute deviation around the median (robust spread).
    pub mad: f64,
    /// Fastest sample.
    pub min: f64,
}

/// One benchmarked (group, id) data point: every raw sample plus the size
/// model needed to normalize it.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    /// Group the point belongs to (e.g. `spmv_formats/hood`).
    pub group: String,
    /// Benchmark id within the group (e.g. `csxsym-idx`).
    pub id: String,
    /// Iterations batched per timed sample.
    pub iters: u64,
    /// Seconds per iteration, one entry per sample, in measurement order.
    pub samples: Vec<f64>,
    /// Symmetry-kind tag of the benchmarked operator (`"symmetric"`,
    /// `"skew"`, `"structural"`), when the row measured a kind-aware
    /// kernel. `None` on rows predating the kind axis and on rows where
    /// the kind is not meaningful (e.g. pure encode benches).
    pub kind: Option<String>,
    /// Elements processed per iteration (non-zeros), if declared.
    pub elements: Option<u64>,
    /// Floating-point operations per iteration (`2·nnz` for SpMV).
    pub flops: Option<u64>,
    /// Bytes moved per iteration under the streaming size model
    /// (matrix bytes + input/output vectors).
    pub bytes: Option<u64>,
    /// Per-phase time attribution, when the target recorded one.
    pub phases: Option<PhaseBreakdown>,
}

impl SampleSet {
    /// Robust statistics of the raw samples; `None` when empty.
    pub fn stats(&self) -> Option<Stats> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mut dev: Vec<f64> = sorted.iter().map(|s| (s - median).abs()).collect();
        dev.sort_by(f64::total_cmp);
        Some(Stats {
            median,
            mad: dev[dev.len() / 2],
            min: sorted[0],
        })
    }

    /// GFLOP/s at the median, under the declared flop model.
    pub fn gflops(&self) -> Option<f64> {
        let s = self.stats()?;
        self.flops
            .filter(|_| s.median > 0.0)
            .map(|f| f as f64 / s.median / 1e9)
    }

    /// Effective GB/s at the median, under the declared byte model.
    pub fn effective_gbs(&self) -> Option<f64> {
        let s = self.stats()?;
        self.bytes
            .filter(|_| s.median > 0.0)
            .map(|b| b as f64 / s.median / 1e9)
    }

    /// Rejects NaN/inf/negative samples — they must never reach a ledger.
    pub fn validate(&self) -> Result<(), LedgerError> {
        let bad = self.samples.iter().any(|v| !v.is_finite() || *v < 0.0);
        if bad {
            return Err(LedgerError::NonFinite {
                context: format!("{}/{}", self.group, self.id),
            });
        }
        Ok(())
    }

    fn to_json(&self) -> Result<Json, LedgerError> {
        self.validate()?;
        let mut o = Json::obj();
        o.push("group", Json::Str(self.group.clone()))
            .push("id", Json::Str(self.id.clone()))
            .push("iters", Json::Num(self.iters as f64))
            .push(
                "samples_s",
                Json::Arr(self.samples.iter().map(|s| Json::Num(*s)).collect()),
            );
        if let Some(kind) = &self.kind {
            o.push("kind", Json::Str(kind.clone()));
        }
        if let Some(s) = self.stats() {
            o.push("median_s", Json::Num(s.median))
                .push("mad_s", Json::Num(s.mad))
                .push("min_s", Json::Num(s.min));
        }
        for (key, v) in [
            ("elements", self.elements),
            ("flops", self.flops),
            ("bytes", self.bytes),
        ] {
            if let Some(v) = v {
                o.push(key, Json::Num(v as f64));
            }
        }
        if let Some(g) = self.gflops() {
            o.push("gflops", Json::Num(g));
        }
        if let Some(g) = self.effective_gbs() {
            o.push("effective_gbs", Json::Num(g));
        }
        if let Some(p) = &self.phases {
            o.push("phases", p.to_json());
        }
        Ok(o)
    }

    fn from_json(j: &Json) -> Result<Self, LedgerError> {
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| LedgerError::Schema {
                    reason: format!("sample missing string field `{k}`"),
                })
        };
        let group = str_field("group")?;
        let id = str_field("id")?;
        let ctx = format!("{group}/{id}");
        let samples: Vec<f64> = j
            .get("samples_s")
            .and_then(Json::as_arr)
            .ok_or_else(|| LedgerError::Schema {
                reason: format!("{ctx}: samples_s missing"),
            })?
            .iter()
            .map(|v| {
                v.as_f64()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| LedgerError::NonFinite {
                        context: ctx.clone(),
                    })
            })
            .collect::<Result<_, _>>()?;
        let opt_u64 = |k: &str| j.get(k).and_then(Json::as_u64);
        Ok(SampleSet {
            iters: opt_u64("iters").ok_or_else(|| LedgerError::Schema {
                reason: format!("{ctx}: iters missing"),
            })?,
            samples,
            kind: j.get("kind").and_then(Json::as_str).map(str::to_string),
            elements: opt_u64("elements"),
            flops: opt_u64("flops"),
            bytes: opt_u64("bytes"),
            phases: j
                .get("phases")
                .map(|p| PhaseBreakdown::from_json(p, &ctx))
                .transpose()?,
            group,
            id,
        })
    }
}

/// A complete bench-target run: machine context plus every sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench target name (`spmv_formats`, `ci`, ...).
    pub target: String,
    /// Host the run was measured on.
    pub machine: MachineInfo,
    /// All recorded data points, in run order.
    pub samples: Vec<SampleSet>,
}

impl BenchReport {
    /// Canonical artifact file name for this target.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.target)
    }

    /// Looks up a data point by group and id.
    pub fn find(&self, group: &str, id: &str) -> Option<&SampleSet> {
        self.samples.iter().find(|s| s.group == group && s.id == id)
    }

    /// Serializes to the `bench-v1` JSON document.
    pub fn to_json(&self) -> Result<String, LedgerError> {
        let mut o = Json::obj();
        o.push("schema", Json::Str(SCHEMA.into()))
            .push("target", Json::Str(self.target.clone()))
            .push("machine", self.machine.to_json());
        let samples: Vec<Json> = self
            .samples
            .iter()
            .map(SampleSet::to_json)
            .collect::<Result<_, _>>()?;
        o.push("samples", Json::Arr(samples));
        Ok(o.to_pretty()?)
    }

    /// Parses a `bench-v1` document.
    pub fn from_json(text: &str) -> Result<Self, LedgerError> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            other => {
                return Err(LedgerError::Schema {
                    reason: format!("schema is {other:?}, expected {SCHEMA:?}"),
                })
            }
        }
        let target = doc
            .get("target")
            .and_then(Json::as_str)
            .ok_or_else(|| LedgerError::Schema {
                reason: "target missing".into(),
            })?
            .to_string();
        let machine = doc
            .get("machine")
            .map(MachineInfo::from_json)
            .transpose()?
            .ok_or_else(|| LedgerError::Schema {
                reason: "machine missing".into(),
            })?;
        let samples = doc
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or_else(|| LedgerError::Schema {
                reason: "samples missing".into(),
            })?
            .iter()
            .map(SampleSet::from_json)
            .collect::<Result<_, _>>()?;
        Ok(BenchReport {
            target,
            machine,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> SampleSet {
        SampleSet {
            group: "spmv_formats/hood".into(),
            id: "csxsym-idx".into(),
            iters: 37,
            samples: vec![1.25e-4, 1.5e-4, 1.3e-4, 9.9e-5, 2.0e-4],
            kind: Some("skew".into()),
            elements: Some(1_000_000),
            flops: Some(2_000_000),
            bytes: Some(12_345_678),
            phases: Some(PhaseBreakdown {
                multiply: 0.9,
                reduce: 0.2,
                vector_ops: 0.0,
                preprocess: 0.05,
                iters: 186,
            }),
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            target: "unit".into(),
            machine: MachineInfo::for_tests(),
            samples: vec![
                sample_set(),
                SampleSet {
                    group: "g".into(),
                    id: "bare".into(),
                    iters: 1,
                    samples: vec![0.5],
                    kind: None,
                    elements: None,
                    flops: None,
                    bytes: None,
                    phases: None,
                },
            ],
        }
    }

    // Table-driven round trip: every field shape the schema allows.
    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let text = r.to_json().unwrap();
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.file_name(), "BENCH_unit.json");
        assert!(parsed.find("g", "bare").is_some());
        assert!(parsed.find("g", "nope").is_none());
    }

    #[test]
    fn stats_are_robust_and_derived() {
        let s = sample_set();
        let st = s.stats().unwrap();
        assert_eq!(st.median, 1.3e-4);
        assert_eq!(st.min, 9.9e-5);
        assert!(st.mad > 0.0);
        // Derived throughputs follow the declared size model.
        let gflops = s.gflops().unwrap();
        assert!((gflops - 2_000_000.0 / 1.3e-4 / 1e9).abs() < 1e-9);
        let gbs = s.effective_gbs().unwrap();
        assert!((gbs - 12_345_678.0 / 1.3e-4 / 1e9).abs() < 1e-9);
    }

    #[test]
    fn empty_sample_sets_survive_but_carry_no_stats() {
        let mut r = report();
        r.samples[0].samples.clear();
        r.samples.truncate(1);
        assert!(r.samples[0].stats().is_none());
        assert!(r.samples[0].gflops().is_none());
        let text = r.to_json().unwrap();
        assert!(!text.contains("median_s"));
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn nan_and_inf_samples_are_rejected_on_write() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut r = report();
            r.samples[0].samples[2] = bad;
            assert!(matches!(r.to_json(), Err(LedgerError::NonFinite { .. }),));
        }
    }

    #[test]
    fn nan_and_inf_samples_are_rejected_on_parse() {
        // A hand-edited baseline with a negative or overflowing sample
        // must not load.
        let good = report().to_json().unwrap();
        let neg = good.replacen("0.00015,", "-0.00015,", 1);
        assert!(matches!(
            BenchReport::from_json(&neg),
            Err(LedgerError::NonFinite { .. })
        ));
        let inf = good.replacen("0.00015,", "1e999,", 1);
        assert!(BenchReport::from_json(&inf).is_err());
    }

    // Table-driven schema rejection.
    #[test]
    fn malformed_documents_rejected() {
        let good = report().to_json().unwrap();
        let cases: Vec<(String, &str)> = vec![
            ("not json at all".into(), "garbage"),
            ("{}".into(), "empty object"),
            (good.replacen("bench-v1", "bench-v0", 1), "wrong schema"),
            (good.replacen("\"target\"", "\"tarject\"", 1), "no target"),
            (good.replacen("\"machine\"", "\"mach\"", 1), "no machine"),
            (good.replacen("\"samples\"", "\"simples\"", 1), "no samples"),
            (good.replacen("\"iters\": 37,", "", 1), "sample sans iters"),
        ];
        for (text, why) in cases {
            assert!(BenchReport::from_json(&text).is_err(), "{why}");
        }
    }

    #[test]
    fn derived_stats_ignore_hand_edits() {
        // median_s in the file is cosmetic; parse recomputes from samples.
        let text = report().to_json().unwrap();
        let edited = text.replacen("\"median_s\": 0.00013", "\"median_s\": 42", 1);
        let parsed = BenchReport::from_json(&edited).unwrap();
        assert_eq!(parsed.samples[0].stats().unwrap().median, 1.3e-4);
    }

    #[test]
    fn phase_breakdown_from_times() {
        let mut t = PhaseTimes::new();
        t.multiply = std::time::Duration::from_millis(500);
        t.reduce = std::time::Duration::from_millis(250);
        let p = PhaseBreakdown::from_times(&t, 10);
        assert!((p.multiply - 0.5).abs() < 1e-12);
        assert!((p.total() - 0.75).abs() < 1e-12);
        assert_eq!(p.iters, 10);
    }
}
