//! The §V-A measurement loop.

use std::time::{Duration, Instant};
use symspmv_core::{BlockKernel, ParallelSpmv};
use symspmv_runtime::PhaseTimes;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::VectorBlock;

/// Default iteration count used throughout the paper's evaluation.
pub const DEFAULT_ITERATIONS: usize = 128;

/// Result of one measurement: wall time, phase breakdown and throughput.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Kernel name.
    pub kernel: String,
    /// Worker threads.
    pub nthreads: usize,
    /// SpMV iterations executed.
    pub iterations: usize,
    /// Total wall-clock time of the loop.
    pub wall: Duration,
    /// Phase breakdown accumulated by the kernel during the loop.
    pub times: PhaseTimes,
    /// Sustained throughput in Gflop/s (`2·NNZ·iters / wall`).
    pub gflops: f64,
    /// Storage size of the format in bytes.
    pub size_bytes: usize,
}

impl Measurement {
    /// Mean time per SpMV.
    pub fn per_spmv(&self) -> Duration {
        self.wall / self.iterations.max(1) as u32
    }
}

/// Repetitions of the measurement loop; the best (minimum-wall) repetition
/// is reported, which suppresses scheduler noise on shared machines.
pub const MEASURE_REPEATS: usize = 3;

/// Runs the paper's measurement loop: `iterations` SpMVs with a seeded
/// random input, swapping input and output vectors every iteration.
///
/// The loop is repeated [`MEASURE_REPEATS`] times and the fastest
/// repetition wins (best-of-N timing).
pub fn measure<K: ParallelSpmv + ?Sized>(kernel: &mut K, iterations: usize) -> Measurement {
    let n = kernel.n();
    let mut x = seeded_vector(n, 0xFEED);
    let mut y = vec![0.0; n];

    // Warm-up pass: touches every page and fills caches the same way for
    // every format; remember the one-time preprocessing clock.
    kernel.spmv(&x, &mut y);
    std::mem::swap(&mut x, &mut y);
    let preprocess = kernel.times().preprocess;

    let mut best = (Duration::MAX, PhaseTimes::default());
    for _ in 0..MEASURE_REPEATS.max(1) {
        kernel.reset_times();
        let t0 = Instant::now();
        for _ in 0..iterations {
            kernel.spmv(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        let wall = t0.elapsed();
        if wall < best.0 {
            best = (wall, kernel.times());
        }
    }
    let (wall, mut times) = best;
    times.preprocess = preprocess;
    let flops = kernel.flops() as f64 * iterations as f64;
    Measurement {
        kernel: kernel.name().into_owned(),
        nthreads: kernel.nthreads(),
        iterations,
        wall,
        times,
        gflops: flops / wall.as_secs_f64() / 1e9,
        size_bytes: kernel.size_bytes(),
    }
}

/// The batched analog of [`measure`]: `iterations` SpMMs over a seeded
/// `lanes`-wide block, swapping input and output blocks every iteration.
/// `gflops` counts all lanes (`2·NNZ·lanes·iters / wall`), so the
/// per-vector benefit of batching shows up directly against the scalar
/// [`measure`] number for the same kernel.
pub fn measure_spmm<K: BlockKernel + ?Sized>(
    kernel: &mut K,
    iterations: usize,
    lanes: usize,
) -> Measurement {
    let n = kernel.n();
    let mut x = VectorBlock::seeded(n, lanes, 0xFEED);
    let mut y = VectorBlock::zeros(n, lanes);

    kernel.spmm(&x, &mut y);
    std::mem::swap(&mut x, &mut y);
    let preprocess = kernel.times().preprocess;

    let mut best = (Duration::MAX, PhaseTimes::default());
    for _ in 0..MEASURE_REPEATS.max(1) {
        kernel.reset_times();
        let t0 = Instant::now();
        for _ in 0..iterations {
            kernel.spmm(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        let wall = t0.elapsed();
        if wall < best.0 {
            best = (wall, kernel.times());
        }
    }
    let (wall, mut times) = best;
    times.preprocess = preprocess;
    let flops = kernel.flops() as f64 * lanes as f64 * iterations as f64;
    Measurement {
        kernel: kernel.name().into_owned(),
        nthreads: kernel.nthreads(),
        iterations,
        wall,
        times,
        gflops: flops / wall.as_secs_f64() / 1e9,
        size_bytes: kernel.size_bytes(),
    }
}

/// Times a *serial* CSR SpMV (the unit of the §V-E preprocessing-cost
/// metric: "the preprocessing cost amounts to k serial SpM×V operations").
pub fn serial_csr_spmv_time(csr: &symspmv_sparse::CsrMatrix, iterations: usize) -> Duration {
    let n = csr.nrows() as usize;
    let mut x = seeded_vector(n, 0xBEEF);
    let mut y = vec![0.0; n];
    csr.spmv(&x, &mut y); // warm-up
    std::mem::swap(&mut x, &mut y);
    let t0 = Instant::now();
    for _ in 0..iterations {
        csr.spmv(&x, &mut y);
        std::mem::swap(&mut x, &mut y);
    }
    t0.elapsed() / iterations.max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_core::CsrParallel;
    use symspmv_runtime::ExecutionContext;
    use symspmv_sparse::CsrMatrix;

    #[test]
    fn measurement_produces_sane_numbers() {
        let coo = symspmv_sparse::gen::laplacian_2d(40, 40);
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let m = measure(&mut k, 16);
        assert_eq!(m.iterations, 16);
        assert_eq!(m.kernel, "csr");
        assert_eq!(m.nthreads, 2);
        assert!(m.gflops > 0.0);
        assert!(m.wall > Duration::ZERO);
        assert!(m.per_spmv() <= m.wall);
    }

    #[test]
    fn serial_unit_time_positive() {
        let coo = symspmv_sparse::gen::laplacian_2d(30, 30);
        let csr = CsrMatrix::from_coo(&coo);
        let t = serial_csr_spmv_time(&csr, 8);
        assert!(t > Duration::ZERO);
    }
}
