//! A minimal std-only JSON value model, writer and parser.
//!
//! The offline build environment rules out serde, so the bench ledger
//! (`BENCH_*.json`, `bench/baseline.json`) is serialized through this small
//! module instead — the same hand-rolled-serializer approach the verify
//! crate uses for `RaceCertificate`, but in JSON so the artifacts are
//! directly consumable by `jq`, spreadsheet imports and CI dashboards.
//!
//! Scope is exactly what the ledger needs: objects (insertion-ordered, so
//! writes are stable and diffs are reviewable), arrays, finite numbers,
//! strings, booleans and null. Writing a NaN or infinity is an **error**,
//! not an `null`-coercion — a non-finite measurement is a bug upstream and
//! must not silently enter a baseline.

/// A parsed or in-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/inf; writing one fails).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write and parse.
    Obj(Vec<(String, Json)>),
}

/// Why a JSON write or parse failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// A number being written is NaN or infinite.
    NonFinite {
        /// Path-ish context for the offending value (best effort).
        context: String,
    },
    /// The input text is not valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected or found.
        reason: String,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::NonFinite { context } => {
                write!(fm, "refusing to serialize non-finite number at {context}")
            }
            JsonError::Parse { offset, reason } => {
                write!(fm, "JSON parse error at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object built field by field.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — construction
    /// bug, not data).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => unreachable!("Json::push on a non-object"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, 0, "$")?;
        out.push('\n');
        Ok(out)
    }

    fn write(&self, out: &mut String, depth: usize, context: &str) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    return Err(JsonError::NonFinite {
                        context: context.to_string(),
                    });
                }
                // Rust's float Display is shortest-round-trip, so the
                // parser recovers the bit pattern exactly.
                let mut s = format!("{v}");
                if !s.contains(['.', 'e', 'E']) {
                    s.push_str(".0");
                }
                // Integers stay integers for readability.
                if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
                    s = format!("{}", *v as i64);
                }
                out.push_str(&s);
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return Ok(());
                }
                // Arrays of scalars stay on one line (sample vectors would
                // otherwise dominate the file); nested structures indent.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if !scalar {
                        newline_indent(out, depth + 1);
                    } else if i > 0 {
                        out.push(' ');
                    }
                    item.write(out, depth + 1, &format!("{context}[{i}]"))?;
                }
                if !scalar {
                    newline_indent(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return Ok(());
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1, &format!("{context}.{key}"))?;
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing garbage after document"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, reason: &str) -> JsonError {
    JsonError::Parse {
        offset,
        reason: reason.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    let v: f64 = text.parse().map_err(|_| err(start, "malformed number"))?;
    if !v.is_finite() {
        // "1e999" parses to inf; reject it here rather than let a
        // non-finite value sneak past the writer-side guarantee.
        return Err(err(start, "number overflows to non-finite"));
    }
    Ok(Json::Num(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not needed for ledger content;
                        // map unpaired ones to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "bad utf-8 in string"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-3.5),
            Json::Num(1e-9),
            Json::Num(123456789.0),
            Json::Str("he\"llo\nworld \\ ü".into()),
        ] {
            let text = v.to_pretty().unwrap();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn shortest_round_trip_floats_survive_exactly() {
        // The whole point of the ledger: medians written today parse back
        // bit-identical for tomorrow's regression compare.
        for v in [1.0 / 3.0, 2.2250738585072014e-308, 0.1 + 0.2, 6.02e23] {
            let text = Json::Num(v).to_pretty().unwrap();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn nested_structures_round_trip_preserving_order() {
        let mut inner = Json::obj();
        inner.push("b", Json::Num(2.0)).push("a", Json::Num(1.0));
        let mut doc = Json::obj();
        doc.push("name", Json::Str("x".into()))
            .push("arr", Json::Arr(vec![Json::Num(1.0), inner.clone()]))
            .push("empty_arr", Json::Arr(vec![]))
            .push("empty_obj", Json::obj());
        let text = doc.to_pretty().unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Insertion order survives (b before a).
        let arr = parsed.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr[1], inner);
    }

    #[test]
    fn non_finite_numbers_are_write_errors() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut doc = Json::obj();
            doc.push("median", Json::Num(v));
            let e = doc.to_pretty().unwrap_err();
            assert!(matches!(e, JsonError::NonFinite { ref context } if context == "$.median"));
        }
    }

    #[test]
    fn overflowing_literals_are_parse_errors() {
        assert!(matches!(
            Json::parse("[1e999]"),
            Err(JsonError::Parse { .. })
        ));
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] trailing",
            "\"unterminated",
            "nul",
            "{\"a\": +}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"n\": 5, \"s\": \"x\", \"a\": [1.5], \"f\": 2.5}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(doc.get("f").unwrap().as_u64(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
    }
}
