//! `experiments` — regenerates every table and figure of the paper's §V.
//!
//! ```text
//! experiments <subcommand> [options]
//!
//! subcommands:
//!   table1   Table I   — suite characteristics, compression ratios
//!   fig4     Figure 4  — effective-region density vs threads
//!   fig5     Figure 5  — reduction working-set overhead vs threads
//!   fig9     Figure 9  — speedup of the reduction methods vs CSR
//!   fig10    Figure 10 — multiply/reduce time breakdown
//!   fig11    Figure 11 — CSX-Sym speedup vs CSR/CSX/SSS-idx
//!   fig12    Figure 12 — per-matrix Gflop/s at max threads
//!   table3   Table III — improvement from RCM reordering
//!   fig13    Figure 13 — per-matrix Gflop/s, RCM-reordered
//!   preproc  §V-E      — CSX-Sym preprocessing cost
//!   fig14    Figure 14 — CG execution-time breakdown
//!   ablation extension — CSX-Sym detection-config design space
//!   atomics  extension — atomic updates vs local-vector reductions
//!   spmm     extension — batched multi-RHS SpMM per-vector speedup
//!   kinds    extension — skew/structural engines and the skew+RCM effect
//!   tune     extension — measured plan search + persisted plan store
//!   related  extension — related-work comparison (CSB, CSB-Sym, atomics)
//!   verify   extension — every kernel vs reference on the full suite
//!   chaos    extension — seeded fault-injection soak of the resilient
//!                        service (build with --features fault-injection)
//!   plot     extension — re-render SVG figures from existing CSVs
//!   machine  extension — host characterization (Table II substitute)
//!   all                — everything, in paper order
//!
//! options:
//!   --scale <f>      suite scale factor            (default 0.02)
//!   --iters <k>      SpMV iterations               (default 128)
//!   --threads <p>    max worker threads            (default: host cores)
//!   --out <dir>      CSV output directory          (default results/)
//!   --matrix <name>  restrict to one suite matrix  (repeatable)
//!   --cg-iters <k>   CG iterations for fig14       (default 512)
//!   --rhs <k>        right-hand sides for spmm     (default 8; one of 1,2,4,8,16)
//!   --seed <k>       chaos schedule seed           (default 0xC4A05)
//! ```

use std::process::ExitCode;
use symspmv_harness::experiments::{self, ExpConfig};

const USAGE: &str = "usage: experiments <table1|fig4|fig5|fig9|fig10|fig11|fig12|table3|fig13|preproc|fig14|ablation|atomics|spmm|kinds|colors|tune|related|verify|chaos|plot|machine|all>
                   [--scale f] [--iters k] [--threads p] [--out dir]
                   [--matrix name]... [--cg-iters k] [--rhs k] [--seed k]";

/// Parses a seed in decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

fn usage() -> ExitCode {
    eprintln!("{}", USAGE);
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };

    let mut cfg = ExpConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("missing value for {what}");
            }
            v
        };
        match flag.as_str() {
            "--scale" => match value("--scale").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 => cfg.scale = v,
                _ => return usage(),
            },
            "--iters" => match value("--iters").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.iterations = v,
                _ => return usage(),
            },
            "--threads" => match value("--threads").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.max_threads = v,
                _ => return usage(),
            },
            "--out" => match value("--out") {
                Some(v) => cfg.out_dir = v.into(),
                None => return usage(),
            },
            "--matrix" => match value("--matrix") {
                Some(v) => cfg.matrices.push(v),
                None => return usage(),
            },
            "--cg-iters" => match value("--cg-iters").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.cg_iters = v,
                _ => return usage(),
            },
            "--rhs" => match value("--rhs").and_then(|v| v.parse().ok()) {
                // Full validation (supported lane counts) happens in the
                // spmm driver, which knows the block layout's contract.
                Some(v) if v > 0 => cfg.rhs = v,
                _ => return usage(),
            },
            "--seed" => match value("--seed").and_then(|v| parse_seed(&v)) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
    }

    // Validate matrix names early.
    for name in &cfg.matrices {
        if symspmv_sparse::suite::spec_by_name(name).is_none() {
            eprintln!("unknown matrix {name:?}; valid names:");
            for s in &symspmv_sparse::suite::SUITE {
                eprintln!("  {}", s.name);
            }
            return ExitCode::from(2);
        }
    }

    println!(
        "symspmv experiments — scale {}, {} iterations, up to {} threads\n",
        cfg.scale, cfg.iterations, cfg.max_threads
    );

    let run = match cmd.as_str() {
        "table1" => experiments::table1(&cfg),
        "fig4" => experiments::fig4(&cfg),
        "fig5" => experiments::fig5(&cfg),
        "fig9" => experiments::fig9(&cfg),
        "fig10" => experiments::fig10(&cfg),
        "fig11" => experiments::fig11(&cfg),
        "fig12" => experiments::fig12(&cfg),
        "table3" => experiments::table3(&cfg),
        "fig13" => experiments::fig13(&cfg),
        "preproc" => experiments::preproc(&cfg),
        "fig14" => experiments::fig14(&cfg),
        "ablation" => experiments::ablation(&cfg),
        "atomics" => experiments::atomics(&cfg),
        "spmm" => experiments::spmm(&cfg),
        "kinds" => experiments::kinds(&cfg),
        "colors" => experiments::colors(&cfg),
        "tune" => experiments::tune(&cfg),
        "related" => experiments::related(&cfg),
        "verify" => experiments::verify(&cfg),
        "chaos" => experiments::chaos(&cfg),
        "plot" => experiments::plot(&cfg),
        "machine" => experiments::machine(&cfg),
        "all" => experiments::all(&cfg),
        _ => return usage(),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
