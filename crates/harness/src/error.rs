//! Error type for the experiment drivers.
//!
//! Drivers return `Result<(), HarnessError>` so the `experiments` binary can
//! print one actionable message and exit nonzero instead of panicking
//! mid-sweep. Every variant says what the user can do about it.

use std::path::PathBuf;
use symspmv_core::SymSpmvError;

/// What went wrong while running an experiment driver.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// Writing a CSV/SVG report (or the suite cache) failed.
    Io {
        /// The path being written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A matrix could not be prepared or a kernel could not be built on it.
    Matrix {
        /// What was being built ("csx-sym kernel", "RCM reorder", …).
        what: String,
        /// The suite matrix involved.
        matrix: String,
        /// The structured cause.
        source: SymSpmvError,
    },
    /// The `verify` driver found kernels disagreeing with the reference.
    VerificationFailed {
        /// Number of suite matrices with at least one mismatching kernel.
        failures: usize,
    },
    /// An experiment was invoked with an unusable configuration value
    /// (e.g. `--rhs` outside the supported lane counts).
    Config(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io { path, source } => write!(
                fm,
                "cannot write {}: {source} (is --out pointing at a writable directory?)",
                path.display()
            ),
            HarnessError::Matrix {
                what,
                matrix,
                source,
            } => write!(fm, "building {what} for matrix {matrix:?} failed: {source}"),
            HarnessError::VerificationFailed { failures } => write!(
                fm,
                "{failures} suite matrices FAILED kernel-vs-reference verification \
                 (see the table above for the offending rows)"
            ),
            HarnessError::Config(msg) => write!(fm, "{msg}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io { source, .. } => Some(source),
            HarnessError::Matrix { source, .. } => Some(source),
            HarnessError::VerificationFailed { .. } => None,
            HarnessError::Config(_) => None,
        }
    }
}

impl HarnessError {
    /// Wraps a structured sparse/kernel error with driver context.
    pub fn matrix(
        what: impl Into<String>,
        matrix: impl Into<String>,
        source: impl Into<SymSpmvError>,
    ) -> Self {
        HarnessError::Matrix {
            what: what.into(),
            matrix: matrix.into(),
            source: source.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::SparseError;

    #[test]
    fn messages_are_actionable() {
        let e = HarnessError::Io {
            path: PathBuf::from("/nope/out.csv"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        let msg = e.to_string();
        assert!(msg.contains("/nope/out.csv"));
        assert!(msg.contains("--out"));

        let e = HarnessError::matrix(
            "sss kernel",
            "hood",
            SparseError::NotSymmetric { row: 1, col: 2 },
        );
        assert!(e.to_string().contains("hood"));
        assert!(std::error::Error::source(&e).is_some());

        let e = HarnessError::VerificationFailed { failures: 2 };
        assert!(e.to_string().contains("2 suite matrices"));
    }
}
