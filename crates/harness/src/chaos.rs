//! `experiments chaos` — a seeded fault-injection soak of the resilient
//! SpMV service (DESIGN.md §16).
//!
//! For every matrix of the conformance kind suite the driver replays a
//! deterministic schedule of worker kills, delays, lease corruptions and
//! wedges against a [`Resilient`]-wrapped kernel running under a request
//! deadline, and checks the service contract on every request:
//!
//! * a request served by the **parallel** path must be bit-identical to
//!   the fault-free parallel baseline taken before any fault was armed
//!   (the deterministic pool makes reruns — including post-respawn reruns
//!   — bitwise reproducible);
//! * a request served by the **serial fallback** must be bit-identical to
//!   the serial SSS reference of the conformance oracle;
//! * every request is *served* — parallel or fallback, never an error —
//!   so availability stays 100% through kills, wedges and corruptions.
//!
//! Any violated check is reported with the matrix reproducer and turns
//! into [`HarnessError::VerificationFailed`], so the soak doubles as a CI
//! gate. Per-request latencies land in `BENCH_chaos.json` through the
//! structured bench ledger, making chaos runs comparable across machines
//! and commits.
//!
//! The whole schedule derives from [`ExpConfig::seed`]: the same seed
//! replays the same faults in the same rounds.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::conformance;
use crate::error::HarnessError;
use crate::experiments::ExpConfig;
use crate::ledger::{BenchReport, SampleSet};
use crate::machine::MachineInfo;
use crate::report::Table;
use symspmv_core::{
    FallbackKernel, ParallelSpmv, ReductionMethod, Resilient, RetryPolicy, Served, SymFormat,
    SymSpmv,
};
use symspmv_runtime::{ExecutionContext, Supervision};

/// Request deadline for every supervised multiply.
const DEADLINE: Duration = Duration::from_millis(250);

/// Wedge-fault sleep — comfortably past [`DEADLINE`] so the watchdog must
/// detect the overrun and mark the pool wedged.
const WEDGE_SLEEP: Duration = Duration::from_millis(400);

/// Delay-fault sleep — stretches a round without endangering the deadline.
const DELAY: Duration = Duration::from_millis(3);

/// SplitMix64: the same tiny deterministic generator the retry policy
/// uses for its jitter, reused here to draw the fault schedule.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One scheduled fault, drawn per request.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Clean request.
    None,
    /// A worker panics at the start of the next round.
    Kill,
    /// A worker sleeps [`DELAY`] at the start of the next round.
    Delay,
    /// The next buffer returned to the arena is corrupted.
    Corrupt,
    /// A worker sleeps [`WEDGE_SLEEP`], overrunning the deadline.
    Wedge,
}

/// Roughly half the requests are clean; kills dominate the fault half
/// because they exercise the retry path end to end.
fn draw_fault(rng: &mut SplitMix64) -> Fault {
    match rng.below(10) {
        0..=4 => Fault::None,
        5 | 6 => Fault::Kill,
        7 => Fault::Delay,
        8 => Fault::Corrupt,
        _ => Fault::Wedge,
    }
}

/// The constructor name out of a suite reproducer line
/// (`gen::banded_random(257, ...)` → `banded_random`).
fn short_name(repro: &str) -> &str {
    let s = repro.strip_prefix("gen::").unwrap_or(repro);
    s.split('(').next().unwrap_or(s)
}

/// Completion log of one request, offsets measured from the soak start.
struct RequestLog {
    done_at: Duration,
    latency: Duration,
    fallback: bool,
}

/// Worst wall-clock span the service spent degraded: from the start of a
/// fallback-served request to the completion of the next parallel-served
/// one (to the end of the soak when parallel service never resumed).
fn worst_recovery(log: &[RequestLog], total: Duration) -> Duration {
    let mut worst = Duration::ZERO;
    let mut degraded_since: Option<Duration> = None;
    for r in log {
        if r.fallback {
            degraded_since.get_or_insert(r.done_at.saturating_sub(r.latency));
        } else if let Some(t0) = degraded_since.take() {
            worst = worst.max(r.done_at.saturating_sub(t0));
        }
    }
    if let Some(t0) = degraded_since {
        worst = worst.max(total.saturating_sub(t0));
    }
    worst
}

/// Silences the panic chatter the soak itself provokes — injected worker
/// panics and supervision interrupts are *expected* here and are all
/// caught and classified; their default-hook backtraces would drown the
/// actual report. Genuine panics still reach the previous hook. The
/// filter stays installed for the rest of the process (the driver is the
/// binary's last act).
fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let p = info.payload();
        let expected = p
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected fault"))
            || p.downcast_ref::<symspmv_runtime::Interrupt>().is_some();
        if !expected {
            prev(info);
        }
    }));
}

/// Runs the chaos soak (see the module docs for the contract checked).
pub fn run(cfg: &ExpConfig) -> Result<(), HarnessError> {
    silence_injected_panics();
    let requests = cfg.iterations;
    println!(
        "== Chaos soak: seed {:#x}, {} requests/matrix, deadline {:?} ==\n",
        cfg.seed, requests, DEADLINE
    );
    let mut t = Table::new(&[
        "matrix",
        "kind",
        "req",
        "parallel",
        "fallback",
        "k/d/c/w",
        "worst ms",
        "recovery ms",
        "respawns",
        "health",
        "status",
    ]);
    let mut failures = 0usize;
    let mut ledger: Vec<SampleSet> = Vec::new();

    for (mi, m) in conformance::full_suite().iter().enumerate() {
        let name = short_name(m.repro);
        let n = m.coo.nrows() as usize;
        let p = cfg.max_threads.clamp(2, 4);
        let ctx = ExecutionContext::new(p);
        let x = symspmv_sparse::dense::seeded_vector(n, m.seed ^ cfg.seed);
        let want = conformance::serial_reference_kind(&m.coo, m.kind, &x);

        // Fault-free parallel baseline on the same kernel the service will
        // run, cross-checked against the serial reference so a broken
        // kernel cannot silently become its own yardstick.
        let mut kernel = SymSpmv::from_coo_kind(
            &m.coo,
            m.kind,
            &ctx,
            ReductionMethod::Indexing,
            SymFormat::Sss,
        )
        .map_err(|e| HarnessError::matrix("chaos kernel", name, e))?;
        let mut y_base = vec![0.0; n];
        kernel.spmv(&x, &mut y_base);
        let base_err = symspmv_sparse::dense::max_rel_diff(&y_base, &want);
        if base_err > conformance::REL_TOL {
            failures += 1;
            println!("  {name}: FAIL pre-fault baseline off reference by {base_err:.2e}");
            println!("    repro: {}", m.repro);
            continue;
        }
        let nnz = kernel.nnz_full() as u64;

        let fallback = FallbackKernel::from_coo_kind(&m.coo, m.kind, Arc::clone(&ctx))
            .map_err(|e| HarnessError::matrix("chaos fallback", name, e))?;
        let policy = RetryPolicy::new(3)
            .with_backoff(Duration::from_micros(50), Duration::from_millis(2))
            .with_seed(cfg.seed ^ m.seed);
        let mut service = Resilient::new(kernel, fallback, policy);

        let failures_before = failures;
        let mut rng = SplitMix64::new(cfg.seed.wrapping_add((mi as u64).wrapping_mul(0xA5A5)));
        let mut counts = [0usize; 4]; // kills, delays, corrupts, wedges
        let mut log: Vec<RequestLog> = Vec::with_capacity(requests);
        let mut latencies: Vec<f64> = Vec::with_capacity(requests);
        let mut worst_latency = Duration::ZERO;
        let mut y = vec![0.0; n];
        let soak_start = Instant::now();

        for req in 0..requests {
            let fault = draw_fault(&mut rng);
            let tid = rng.below(p as u64) as usize;
            let plan = ctx.fault_plan();
            match fault {
                Fault::None => {}
                Fault::Kill => {
                    counts[0] += 1;
                    plan.arm_worker_panic(tid, 0);
                }
                Fault::Delay => {
                    counts[1] += 1;
                    plan.arm_worker_delay(tid, 0, DELAY);
                }
                Fault::Corrupt => {
                    counts[2] += 1;
                    plan.arm_corrupt_lease(0, f64::NAN);
                }
                Fault::Wedge => {
                    counts[3] += 1;
                    plan.arm_worker_wedge(tid, 0, WEDGE_SLEEP);
                }
            }

            let t0 = Instant::now();
            let served = service.spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE));
            let latency = t0.elapsed();
            worst_latency = worst_latency.max(latency);
            latencies.push(latency.as_secs_f64());

            let check = match &served {
                Ok(Served::Parallel { .. }) => conformance::check_lane(&y, &y_base, true)
                    .map_err(|why| format!("parallel serve vs fault-free baseline: {why}")),
                Ok(Served::Fallback { .. }) => conformance::check_lane(&y, &want, true)
                    .map_err(|why| format!("fallback serve vs serial reference: {why}")),
                Err(e) => Err(format!("availability loss — request errored: {e}")),
            };
            if let Err(why) = check {
                failures += 1;
                println!(
                    "  {name}: FAIL request {req} ({fault_tag}): {why}",
                    fault_tag = match fault {
                        Fault::None => "clean",
                        Fault::Kill => "kill",
                        Fault::Delay => "delay",
                        Fault::Corrupt => "corrupt",
                        Fault::Wedge => "wedge",
                    }
                );
                println!("    repro: {} seed {:#x}", m.repro, cfg.seed);
            }
            log.push(RequestLog {
                done_at: soak_start.elapsed(),
                latency,
                fallback: matches!(served, Ok(Served::Fallback { .. })),
            });
        }
        let total = soak_start.elapsed();
        // Unfired faults (e.g. a corruption armed on a round that returned
        // no buffer) must not leak into the table's fired count.
        ctx.fault_plan().disarm_all();

        let status = if failures == failures_before {
            "ok"
        } else {
            "FAIL"
        };
        t.row(vec![
            name.to_string(),
            m.kind.tag().to_string(),
            requests.to_string(),
            service.parallel_serves().to_string(),
            service.fallback_serves().to_string(),
            format!("{}/{}/{}/{}", counts[0], counts[1], counts[2], counts[3]),
            format!("{:.1}", worst_latency.as_secs_f64() * 1e3),
            format!("{:.1}", worst_recovery(&log, total).as_secs_f64() * 1e3),
            ctx.pool_respawns().to_string(),
            format!("{:?}", ctx.health()),
            status.into(),
        ]);
        ledger.push(SampleSet {
            group: format!("chaos/{name}"),
            id: "request-latency".into(),
            iters: 1,
            samples: latencies,
            kind: Some(m.kind.tag().to_string()),
            elements: Some(nnz),
            flops: None,
            bytes: None,
            phases: None,
        });
    }

    cfg.emit("chaos", &t)?;
    let report = BenchReport {
        target: "chaos".into(),
        machine: MachineInfo::detect(),
        samples: ledger,
    };
    let text = report
        .to_json()
        .map_err(|e| HarnessError::Config(format!("chaos ledger: {e}")))?;
    let path = cfg.out_dir.join(report.file_name());
    std::fs::create_dir_all(&cfg.out_dir).map_err(|source| HarnessError::Io {
        path: cfg.out_dir.clone(),
        source,
    })?;
    std::fs::write(&path, text).map_err(|source| HarnessError::Io {
        path: path.clone(),
        source,
    })?;
    println!("[ledger written to {}]\n", path.display());

    if failures > 0 {
        return Err(HarnessError::VerificationFailed { failures });
    }
    println!("chaos soak clean: every request served bit-identically \u{2713}\n");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic() {
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..64)
                .map(|_| draw_fault(&mut rng) as u8)
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn schedule_draws_every_fault_kind() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 5];
        for _ in 0..256 {
            seen[draw_fault(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn short_names_strip_the_constructor_call() {
        assert_eq!(
            short_name("gen::banded_random(257, 16, 6.0, 91)"),
            "banded_random"
        );
        assert_eq!(short_name("laplacian_2d(18, 18)"), "laplacian_2d");
    }

    #[test]
    fn recovery_spans_degraded_service_until_parallel_resumes() {
        let ms = Duration::from_millis;
        let log = vec![
            RequestLog {
                done_at: ms(10),
                latency: ms(5),
                fallback: false,
            },
            RequestLog {
                done_at: ms(30),
                latency: ms(10),
                fallback: true,
            },
            RequestLog {
                done_at: ms(40),
                latency: ms(5),
                fallback: true,
            },
            RequestLog {
                done_at: ms(55),
                latency: ms(5),
                fallback: false,
            },
        ];
        // Degraded from t=20 (start of the first fallback) to t=55.
        assert_eq!(worst_recovery(&log, ms(60)), ms(35));
        // A soak that ends degraded counts until the end.
        let tail = vec![RequestLog {
            done_at: ms(30),
            latency: ms(10),
            fallback: true,
        }];
        assert_eq!(worst_recovery(&tail, ms(90)), ms(70));
        assert_eq!(worst_recovery(&[], ms(90)), Duration::ZERO);
    }
}
