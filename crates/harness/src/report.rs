//! Plain-text table rendering and CSV output for the experiment drivers,
//! plus the human-readable views over the structured bench ledger
//! ([`crate::ledger`]) — the drivers and `bench-ci` render the same
//! [`crate::ledger::SampleSet`] records instead of keeping parallel ad-hoc text paths.

use crate::ledger::BenchReport;
use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table that can also serialize to CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the column-aligned text form.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Serializes to CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.header, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `dir/<name>.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Renders a bench ledger as the column-aligned table the bench targets
/// print (and the CI job surfaces in its summary). One row per
/// [`crate::ledger::SampleSet`], with the derived statistics and — when the
/// size model was declared — normalized throughputs.
pub fn ledger_table(report: &BenchReport) -> Table {
    let mut t = Table::new(&[
        "group", "id", "median", "mad", "min", "GFLOP/s", "GB/s", "reduce%",
    ]);
    for s in &report.samples {
        let stats = s.stats();
        let time = |v: Option<f64>| v.map(fmt_secs).unwrap_or_else(|| "-".into());
        let num = |v: Option<f64>| v.map(|g| f(g, 2)).unwrap_or_else(|| "-".into());
        let reduce_pct = s
            .phases
            .filter(|p| p.total() > 0.0)
            .map(|p| pct(p.reduce / p.total()))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            s.group.clone(),
            s.id.clone(),
            time(stats.map(|st| st.median)),
            time(stats.map(|st| st.mad)),
            time(stats.map(|st| st.min)),
            num(s.gflops()),
            num(s.effective_gbs()),
            reduce_pct,
        ]);
    }
    t
}

/// Formats a duration in seconds with an auto-selected unit.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(vals: &[f64]) -> f64 {
    assert!(!vals.is_empty());
    let s: f64 = vals.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.5"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn fmt_secs_spans_units() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-6).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with('s'));
    }

    #[test]
    fn ledger_table_renders_sample_sets() {
        use crate::ledger::{PhaseBreakdown, SampleSet};
        use crate::machine::MachineInfo;
        let report = BenchReport {
            target: "t".into(),
            machine: MachineInfo::for_tests(),
            samples: vec![
                SampleSet {
                    group: "g".into(),
                    id: "k".into(),
                    iters: 3,
                    samples: vec![1e-3, 2e-3, 3e-3],
                    kind: None,
                    elements: Some(10),
                    flops: Some(4_000_000),
                    bytes: Some(2_000_000),
                    phases: Some(PhaseBreakdown {
                        multiply: 0.75,
                        reduce: 0.25,
                        vector_ops: 0.0,
                        preprocess: 0.0,
                        iters: 9,
                    }),
                },
                SampleSet {
                    group: "g".into(),
                    id: "empty".into(),
                    iters: 1,
                    samples: vec![],
                    kind: None,
                    elements: None,
                    flops: None,
                    bytes: None,
                    phases: None,
                },
            ],
        };
        let t = ledger_table(&report);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("2.000 ms")); // median
        assert!(text.contains("2.00")); // GFLOP/s at the median
        assert!(text.contains("25.0%")); // reduce fraction
        assert!(text.contains('-')); // empty set renders placeholders
    }
}

/// Parses a simple CSV produced by [`Table::to_csv`] back into header +
/// rows. Handles the quoted-field escaping `to_csv` emits.
pub fn parse_csv(text: &str) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let mut lines = text.lines();
    let header = split_csv_line(lines.next()?);
    let rows: Vec<Vec<String>> = lines
        .filter(|l| !l.trim().is_empty())
        .map(split_csv_line)
        .collect();
    if rows.iter().any(|r| r.len() != header.len()) {
        return None;
    }
    Some((header, rows))
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => out.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    out.push(cur);
    out
}

/// Parses a numeric cell that may carry a `%` suffix (percentages come
/// back as fractions).
pub fn parse_cell_number(cell: &str) -> Option<f64> {
    let t = cell.trim();
    if let Some(stripped) = t.strip_suffix('%') {
        stripped.trim().parse::<f64>().ok().map(|v| v / 100.0)
    } else {
        t.parse::<f64>().ok()
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "1.5".into()]);
        t.row(vec!["plain".into(), "2".into()]);
        let (hdr, rows) = parse_csv(&t.to_csv()).unwrap();
        assert_eq!(hdr, vec!["a", "b"]);
        assert_eq!(rows[0], vec!["x,y", "1.5"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn cell_numbers() {
        assert_eq!(parse_cell_number("12.5%"), Some(0.125));
        assert_eq!(parse_cell_number(" 3.0 "), Some(3.0));
        assert_eq!(parse_cell_number("n/a"), None);
    }

    #[test]
    fn ragged_csv_rejected() {
        assert!(parse_csv("a,b\n1\n").is_none());
    }
}
