//! Static SVG line charts for the regenerated figures.
//!
//! Follows the data-viz method: categorical hues in fixed validated order
//! (blue, aqua, green, yellow — reordered so the two low-contrast hues are
//! never adjacent; set validated with the palette validator: CVD ΔE 24.2,
//! relief rule satisfied by direct end-labels plus the CSV table twin every
//! figure ships with), 2px round-capped lines, ≥8px end markers with a 2px
//! surface ring, hairline solid gridlines one step off the surface, text in
//! text tokens (never the series color), a legend for ≥2 series, one axis.

#![allow(clippy::write_with_newline)] // raw SVG template strings end lines explicitly

use std::fmt::Write as _;
use std::path::Path;

/// Fixed categorical order (validated; see module docs).
const SERIES_COLORS: [&str; 4] = ["#2a78d6", "#1baf7a", "#008300", "#eda100"];
const SURFACE: &str = "#fcfcfb";
const GRID: &str = "#e8e7e3";
const TEXT_PRIMARY: &str = "#0b0b0b";
const TEXT_SECONDARY: &str = "#52514e";

/// One line series: a name and `(x, y)` samples (x strictly increasing).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend / end-label name.
    pub name: String,
    /// Samples; x values should be shared across series.
    pub points: Vec<(f64, f64)>,
}

/// Renders a line chart as a standalone SVG document.
///
/// X positions are *ordinal*: each distinct x value takes one equal slot
/// (thread counts 1, 2, 4, 8 read evenly spaced, as in the paper's
/// figures). At most four series are accepted — beyond that the method
/// calls for small multiples, which the callers honor by splitting.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    assert!(!series.is_empty() && series.len() <= SERIES_COLORS.len());
    // Ordinal x slots from the union of x values.
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let slot_of = |x: f64| {
        xs.iter()
            .position(|&v| v == x)
            .unwrap_or_else(|| unreachable!("xs is the union of all series x values"))
            as f64
    };

    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let y_top = nice_ceil(y_max);

    let (w, h) = (640.0, 400.0);
    let (ml, mr, mt, mb) = (64.0, 130.0, 54.0, 48.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let px = |slot: f64| ml + pw * slot / (xs.len() - 1).max(1) as f64;
    let py = |v: f64| mt + ph * (1.0 - v / y_top);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">
<rect width="{w}" height="{h}" fill="{SURFACE}"/>
<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{TEXT_PRIMARY}">{}</text>
"#,
        escape(title)
    );

    // Legend row — present for ≥2 series (a single series is named by the
    // title, so a one-swatch box would only restate it).
    let legend: &[Series] = if series.len() >= 2 { series } else { &[] };
    let mut lx = ml;
    for (i, s) in legend.iter().enumerate() {
        let color = SERIES_COLORS[i];
        let _ = write!(
            svg,
            r#"<circle cx="{:.1}" cy="38" r="4" fill="{color}"/><text x="{:.1}" y="42" font-size="11" fill="{TEXT_SECONDARY}">{}</text>
"#,
            lx + 4.0,
            lx + 12.0,
            escape(&s.name)
        );
        lx += 18.0 + 7.0 * s.name.len() as f64;
    }

    // Horizontal gridlines + y ticks (clean numbers).
    for k in 0..=4 {
        let v = y_top * k as f64 / 4.0;
        let y = py(v);
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>
<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" fill="{TEXT_SECONDARY}">{}</text>
"#,
            ml + pw,
            ml - 8.0,
            y + 3.5,
            fmt_tick(v)
        );
    }
    // X ticks.
    for (i, &x) in xs.iter().enumerate() {
        let xx = px(i as f64);
        let _ = write!(
            svg,
            r#"<text x="{xx:.1}" y="{:.1}" font-size="10" text-anchor="middle" fill="{TEXT_SECONDARY}">{}</text>
"#,
            mt + ph + 16.0,
            fmt_tick(x)
        );
    }
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle" fill="{TEXT_SECONDARY}">{}</text>
<text x="14" y="{:.1}" font-size="11" text-anchor="middle" fill="{TEXT_SECONDARY}" transform="rotate(-90 14 {:.1})">{}</text>
"#,
        ml + pw / 2.0,
        h - 12.0,
        escape(x_label),
        mt + ph / 2.0,
        mt + ph / 2.0,
        escape(y_label)
    );

    // Lines (2px, round join/cap), end markers (r=4 + 2px surface ring),
    // and direct end-labels in text ink with the colored marker as the key.
    // When series converge at the right edge the labels would collide;
    // rather than stacking them apart (which detaches them from their
    // lines), colliding labels are dropped — the legend carries identity.
    let mut label_ys: Vec<f64> = Vec::new();
    for (i, s) in series.iter().enumerate() {
        let color = SERIES_COLORS[i];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, v)| format!("{:.1},{:.1}", px(slot_of(x)), py(v)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>
"#,
            path.join(" ")
        );
        if let Some(&(x, v)) = s.points.last() {
            let (cx, cy) = (px(slot_of(x)), py(v));
            let _ = write!(
                svg,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="6" fill="{SURFACE}"/><circle cx="{cx:.1}" cy="{cy:.1}" r="4" fill="{color}"/>
"#,
            );
            let collides =
                series.len() >= 2 && label_ys.iter().any(|&prev| (prev - cy).abs() < 12.0);
            if !collides {
                label_ys.push(cy);
                let _ = write!(
                    svg,
                    r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{TEXT_PRIMARY}">{} {}</text>
"#,
                    cx + 10.0,
                    cy + 3.5,
                    escape(&s.name),
                    fmt_tick(v)
                );
            }
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// One stacked bar: a group label and one value per segment series.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Category label under the bar.
    pub label: String,
    /// Segment values, one per segment name (same order).
    pub segments: Vec<f64>,
}

/// Renders a stacked-bar chart (the Fig. 10 / Fig. 14 form): one bar per
/// group, segments stacked from a single baseline with 2px surface gaps,
/// 4px rounded cap on the top segment only, ≤24px bar thickness, legend
/// for the segment identities, values carried by the y-axis and the CSV
/// twin (selective labeling — per-segment numbers would flood the chart).
pub fn stacked_bars(title: &str, y_label: &str, segment_names: &[&str], bars: &[Bar]) -> String {
    assert!(!bars.is_empty() && !segment_names.is_empty());
    assert!(segment_names.len() <= SERIES_COLORS.len());
    for b in bars {
        assert_eq!(
            b.segments.len(),
            segment_names.len(),
            "ragged bar {}",
            b.label
        );
    }
    let y_top = nice_ceil(
        bars.iter()
            .map(|b| b.segments.iter().sum::<f64>())
            .fold(0.0f64, f64::max)
            .max(1e-9),
    );

    let (w, h) = ((120 + bars.len() * 56).max(400) as f64, 400.0);
    let (ml, mr, mt, mb) = (64.0, 24.0, 54.0, 64.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let slot = pw / bars.len() as f64;
    let bar_w = (slot * 0.6).min(24.0);
    let py = |v: f64| mt + ph * (1.0 - v / y_top);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">
<rect width="{w}" height="{h}" fill="{SURFACE}"/>
<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{TEXT_PRIMARY}">{}</text>
"#,
        escape(title)
    );
    // Legend.
    let mut lx = ml;
    for (i, name) in segment_names.iter().enumerate() {
        let color = SERIES_COLORS[i];
        let _ = write!(
            svg,
            r#"<rect x="{:.1}" y="32" width="10" height="10" rx="2" fill="{color}"/><text x="{:.1}" y="41" font-size="11" fill="{TEXT_SECONDARY}">{}</text>
"#,
            lx,
            lx + 14.0,
            escape(name)
        );
        lx += 22.0 + 7.0 * name.len() as f64;
    }
    // Gridlines + y ticks.
    for k in 0..=4 {
        let v = y_top * k as f64 / 4.0;
        let y = py(v);
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>
<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" fill="{TEXT_SECONDARY}">{}</text>
"#,
            ml + pw,
            ml - 8.0,
            y + 3.5,
            fmt_tick(v)
        );
    }
    // Bars.
    for (bi, bar) in bars.iter().enumerate() {
        let x0 = ml + slot * bi as f64 + (slot - bar_w) / 2.0;
        let mut acc = 0.0;
        let nseg = bar.segments.len();
        let top_seg = bar.segments.iter().rposition(|&v| v > 0.0).unwrap_or(0);
        for (si, &v) in bar.segments.iter().enumerate() {
            if v <= 0.0 {
                continue;
            }
            let y1 = py(acc);
            let y0 = py(acc + v);
            // 2px surface gap between stacked segments (not at baseline).
            let gap_top = if si == top_seg { 0.0 } else { 2.0 };
            let height = (y1 - y0 - gap_top).max(0.5);
            let rounded = si == top_seg;
            let _ = write!(
                svg,
                r#"<path d="{}" fill="{}"/>
"#,
                bar_path(x0, y0, bar_w, height, if rounded { 4.0 } else { 0.0 }),
                SERIES_COLORS[si]
            );
            acc += v;
            let _ = nseg;
        }
        // Category label.
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" fill="{TEXT_SECONDARY}" transform="rotate(-35 {:.1} {:.1})">{}</text>
"#,
            x0 + bar_w / 2.0,
            mt + ph + 14.0,
            x0 + bar_w / 2.0,
            mt + ph + 14.0,
            escape(&bar.label)
        );
    }
    // Axis label.
    let _ = write!(
        svg,
        r#"<text x="14" y="{:.1}" font-size="11" text-anchor="middle" fill="{TEXT_SECONDARY}" transform="rotate(-90 14 {:.1})">{}</text>
</svg>
"#,
        mt + ph / 2.0,
        mt + ph / 2.0,
        escape(y_label)
    );
    svg
}

/// Rect path with rounded top corners (radius `r`), square baseline.
fn bar_path(x: f64, y: f64, w: f64, h: f64, r: f64) -> String {
    if r <= 0.0 || h < r {
        return format!("M{x:.1} {y:.1} h{w:.1} v{h:.1} h-{w:.1} Z");
    }
    format!(
        "M{:.1} {:.1} h{:.1} a{r} {r} 0 0 1 {r} {r} v{:.1} h-{w:.1} v-{:.1} a{r} {r} 0 0 1 {r} -{r} Z",
        x + r,
        y,
        w - 2.0 * r,
        h - r,
        h - r,
    )
}

fn nice_ceil(v: f64) -> f64 {
    let mag = 10f64.powf(v.log10().floor());
    let r = v / mag;
    let step = if r <= 1.0 {
        1.0
    } else if r <= 2.0 {
        2.0
    } else if r <= 4.0 {
        4.0
    } else if r <= 5.0 {
        5.0
    } else {
        10.0
    };
    step * mag
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        let s = format!("{v:.1}");
        s.strip_suffix(".0").map(str::to_string).unwrap_or(s)
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Writes an SVG document to `dir/<name>.svg`.
pub fn write_svg(dir: &Path, name: &str, svg: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.svg"));
    std::fs::write(&path, svg)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                name: "csr".into(),
                points: vec![(1.0, 1.0), (2.0, 1.8), (4.0, 2.5)],
            },
            Series {
                name: "sss-idx".into(),
                points: vec![(1.0, 1.4), (2.0, 2.6), (4.0, 4.1)],
            },
        ]
    }

    #[test]
    fn renders_valid_svg_with_marks_and_legend() {
        let svg = line_chart("Speedup", "threads", "speedup vs serial CSR", &sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // End marker = surface ring + colored dot per series.
        assert_eq!(svg.matches("r=\"6\"").count(), 2);
        assert_eq!(svg.matches("r=\"4\"").count(), 2 + 2); // legend dots too
                                                           // Legend names present; text never wears series color directly.
        assert!(svg.contains(">csr<") || svg.contains(">csr "));
        assert!(svg.contains(TEXT_SECONDARY));
    }

    #[test]
    fn escapes_markup_in_titles() {
        let s = vec![Series {
            name: "a<b".into(),
            points: vec![(1.0, 1.0), (2.0, 2.0)],
        }];
        let svg = line_chart("x < y & z", "t", "v", &s);
        assert!(svg.contains("x &lt; y &amp; z"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn nice_ceiling() {
        assert_eq!(nice_ceil(0.9), 1.0);
        assert_eq!(nice_ceil(1.3), 2.0);
        assert_eq!(nice_ceil(3.7), 4.0);
        assert_eq!(nice_ceil(7.2), 10.0);
        assert_eq!(nice_ceil(42.0), 50.0);
    }

    #[test]
    #[should_panic]
    fn more_than_four_series_rejected() {
        let s: Vec<Series> = (0..5)
            .map(|i| Series {
                name: format!("s{i}"),
                points: vec![(0.0, 1.0), (1.0, 2.0)],
            })
            .collect();
        let _ = line_chart("t", "x", "y", &s);
    }
}

#[cfg(test)]
mod bar_tests {
    use super::*;

    #[test]
    fn stacked_bars_render() {
        let bars = vec![
            Bar {
                label: "csr".into(),
                segments: vec![3.0, 0.0, 1.0],
            },
            Bar {
                label: "sss-idx".into(),
                segments: vec![2.0, 0.4, 1.0],
            },
        ];
        let svg = stacked_bars(
            "Breakdown",
            "time (ms)",
            &["spmv", "reduce", "vecops"],
            &bars,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // Two bars: csr has 2 nonzero segments, sss-idx has 3.
        assert_eq!(svg.matches("<path").count(), 5);
        // Legend square per segment name.
        assert_eq!(svg.matches("<rect").count(), 1 + 3); // surface + 3 keys
        assert!(svg.contains(">spmv<"));
    }

    #[test]
    fn zero_segments_skipped_entirely() {
        let bars = vec![Bar {
            label: "a".into(),
            segments: vec![0.0, 2.0],
        }];
        let svg = stacked_bars("t", "v", &["x", "y"], &bars);
        assert_eq!(svg.matches("<path").count(), 1);
    }

    #[test]
    #[should_panic(expected = "ragged bar")]
    fn ragged_bars_rejected() {
        let bars = vec![Bar {
            label: "a".into(),
            segments: vec![1.0],
        }];
        let _ = stacked_bars("t", "v", &["x", "y"], &bars);
    }

    #[test]
    fn bar_path_geometry() {
        let p = bar_path(10.0, 20.0, 20.0, 30.0, 4.0);
        assert!(p.starts_with("M14.0 20.0"));
        assert!(p.ends_with('Z'));
        let square = bar_path(0.0, 0.0, 10.0, 2.0, 4.0); // too short to round
        assert!(square.contains('v'));
        assert!(!square.contains('a'));
    }
}
