#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Measurement framework and experiment drivers (§V).
//!
//! The paper's methodology: "we performed 128 consecutive SpM×V operations
//! with randomly created input vectors, swapping the input and output
//! vectors at every iteration", through a common SpMV interface shared by
//! all formats. [`framework`] implements that loop; [`kernels`] is the
//! format factory; [`experiments`] regenerates every table and figure of
//! the evaluation section (see DESIGN.md §6 for the index).

#[cfg(feature = "fault-injection")]
pub mod chaos;
pub mod conformance;
pub mod error;
pub mod experiments;
pub mod framework;
pub mod json;
pub mod kernels;
pub mod ledger;
pub mod machine;
pub mod plot;
pub mod report;

pub use error::HarnessError;
pub use framework::{measure, Measurement};
pub use kernels::{build_kernel, KernelSpec};
pub use ledger::{BenchReport, PhaseBreakdown, SampleSet};
pub use machine::MachineInfo;
