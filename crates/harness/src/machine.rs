//! Host characterization — the stand-in for the paper's Table II
//! (platform description + STREAM-measured sustained bandwidth).

use crate::json::Json;
use crate::ledger::LedgerError;
use crate::report::Table;
use std::time::Instant;

/// One row of host information.
fn read_trimmed(path: &str) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

/// CPU model name from /proc/cpuinfo (Linux).
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Cache descriptions from sysfs: (level, type, size).
pub fn caches() -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for idx in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let (Some(level), Some(ctype), Some(size)) = (
            read_trimmed(&format!("{base}/level")),
            read_trimmed(&format!("{base}/type")),
            read_trimmed(&format!("{base}/size")),
        ) else {
            break;
        };
        out.push((level, ctype, size));
    }
    out
}

/// STREAM-triad-style sustained bandwidth estimate in GB/s:
/// `a[i] = b[i] + s·c[i]` over arrays well beyond cache size.
pub fn triad_bandwidth_gbs() -> f64 {
    let n = 8_000_000usize; // 3 arrays x 64 MB total
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let s = 3.0;
    // Warm-up + measure best of 3.
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let t = Instant::now();
        for i in 0..n {
            a[i] = b[i] + s * c[i];
        }
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(&a);
        best = best.min(dt);
    }
    // 3 x 8 bytes moved per element (2 reads + 1 write).
    (24.0 * n as f64) / best / 1e9
}

/// The machine annotation attached to every bench ledger
/// ([`crate::ledger::BenchReport`]).
///
/// SpMV throughput is only interpretable against the host it was measured
/// on (bandwidth-bound kernels compare against the memory system, not the
/// clock), so the ledger refuses to exist without one of these. Detection
/// never fails — unknown facts degrade to `"unknown"` / empty rather than
/// blocking a measurement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// Available hardware parallelism.
    pub ncpus: usize,
    /// CPU model string from /proc/cpuinfo.
    pub cpu_model: String,
    /// Cache descriptions from sysfs, e.g. `"L1 data 32K"`.
    pub caches: Vec<String>,
    /// `rustc --version` of the toolchain that built the bench.
    pub rustc: String,
    /// Short git revision of the measured tree (`+dirty` when modified).
    pub git_rev: String,
}

impl MachineInfo {
    /// Detects the current host, toolchain and source revision.
    pub fn detect() -> MachineInfo {
        MachineInfo {
            ncpus: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            cpu_model: cpu_model(),
            caches: caches()
                .into_iter()
                .map(|(level, ctype, size)| format!("L{level} {} {size}", ctype.to_lowercase()))
                .collect(),
            rustc: command_line("rustc", &["--version"]),
            git_rev: git_revision(),
        }
    }

    /// A fixed instance for deterministic serialization tests.
    pub fn for_tests() -> MachineInfo {
        MachineInfo {
            ncpus: 8,
            cpu_model: "Test CPU \"quoted\"".into(),
            caches: vec!["L1 data 32K".into(), "L2 unified 1024K".into()],
            rustc: "rustc 1.0.0-test".into(),
            git_rev: "deadbee".into(),
        }
    }

    /// The revision with any `+dirty` suffix stripped — the form used in
    /// committed baselines and comparison keys, so a run from a modified
    /// tree is attributed to the commit it is based on instead of minting
    /// a revision string no other run can ever match.
    pub fn git_rev_clean(&self) -> &str {
        self.git_rev.strip_suffix("+dirty").unwrap_or(&self.git_rev)
    }

    /// A copy with [`MachineInfo::git_rev_clean`] applied, for ledgers
    /// that get committed (the bench baseline). Run artifacts keep the
    /// raw `+dirty` marker — it is diagnostic there, and only harmful in
    /// a file that outlives the working tree that produced it.
    pub fn normalized(mut self) -> MachineInfo {
        self.git_rev = self.git_rev_clean().to_string();
        self
    }

    /// Serializes into the ledger's `machine` block.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("ncpus", Json::Num(self.ncpus as f64))
            .push("cpu_model", Json::Str(self.cpu_model.clone()))
            .push(
                "caches",
                Json::Arr(self.caches.iter().map(|c| Json::Str(c.clone())).collect()),
            )
            .push("rustc", Json::Str(self.rustc.clone()))
            .push("git_rev", Json::Str(self.git_rev.clone()));
        o
    }

    /// Parses the `machine` block.
    pub fn from_json(j: &Json) -> Result<MachineInfo, LedgerError> {
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| LedgerError::Schema {
                    reason: format!("machine.{k} missing"),
                })
        };
        Ok(MachineInfo {
            ncpus: j
                .get("ncpus")
                .and_then(Json::as_u64)
                .ok_or_else(|| LedgerError::Schema {
                    reason: "machine.ncpus missing".into(),
                })? as usize,
            cpu_model: str_field("cpu_model")?,
            caches: j
                .get("caches")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|i| i.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
            rustc: str_field("rustc")?,
            git_rev: str_field("git_rev")?,
        })
    }
}

/// Runs `cmd args...` and returns its trimmed stdout, or `"unknown"`.
fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Short HEAD revision, suffixed `+dirty` when the tree has modifications.
fn git_revision() -> String {
    let rev = command_line("git", &["rev-parse", "--short", "HEAD"]);
    if rev == "unknown" {
        return rev;
    }
    let status = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output();
    match status {
        Ok(o) if o.status.success() && !o.stdout.is_empty() => format!("{rev}+dirty"),
        _ => rev,
    }
}

/// Prints the host description table (Table II substitute, DESIGN.md S5).
pub fn describe() -> Table {
    let mut t = Table::new(&["property", "value"]);
    t.row(vec!["cpu model".into(), cpu_model()]);
    t.row(vec![
        "available parallelism".into(),
        std::thread::available_parallelism()
            .map(|p| p.get().to_string())
            .unwrap_or("?".into()),
    ]);
    for (level, ctype, size) in caches() {
        t.row(vec![
            format!("L{level} {} cache", ctype.to_lowercase()),
            size,
        ]);
    }
    t.row(vec![
        "triad bandwidth (GB/s)".into(),
        format!("{:.2}", triad_bandwidth_gbs()),
    ]);
    t.row(vec![
        "paper platform A".into(),
        "Dunnington: 4x6 cores, 5.4 GB/s sustained".into(),
    ]);
    t.row(vec![
        "paper platform B".into(),
        "Gainestown: 2x4 cores (16 threads), 2x15.5 GB/s sustained".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_info_detects_and_round_trips() {
        let m = MachineInfo::detect();
        assert!(m.ncpus >= 1);
        assert!(!m.cpu_model.is_empty());
        let parsed = MachineInfo::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn dirty_suffix_is_normalized_out_of_committed_revisions() {
        let mut m = MachineInfo::for_tests();
        m.git_rev = "deadbee+dirty".into();
        assert_eq!(m.git_rev_clean(), "deadbee");
        assert_eq!(m.clone().normalized().git_rev, "deadbee");
        // Already-clean revisions pass through untouched.
        m.git_rev = "deadbee".into();
        assert_eq!(m.git_rev_clean(), "deadbee");
        assert_eq!(m.normalized().git_rev, "deadbee");
    }

    #[test]
    fn machine_info_rejects_missing_fields() {
        let mut j = MachineInfo::for_tests().to_json();
        j = match j {
            Json::Obj(fields) => {
                Json::Obj(fields.into_iter().filter(|(k, _)| k != "rustc").collect())
            }
            other => other,
        };
        assert!(MachineInfo::from_json(&j).is_err());
    }

    #[test]
    fn describe_has_rows() {
        // Cheap structural check only (the bandwidth probe is expensive, so
        // exercise the pieces that don't allocate 192 MB).
        assert!(!cpu_model().is_empty());
        let _ = caches();
    }
}
