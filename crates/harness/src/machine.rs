//! Host characterization — the stand-in for the paper's Table II
//! (platform description + STREAM-measured sustained bandwidth).

use crate::report::Table;
use std::time::Instant;

/// One row of host information.
fn read_trimmed(path: &str) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

/// CPU model name from /proc/cpuinfo (Linux).
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Cache descriptions from sysfs: (level, type, size).
pub fn caches() -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for idx in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let (Some(level), Some(ctype), Some(size)) = (
            read_trimmed(&format!("{base}/level")),
            read_trimmed(&format!("{base}/type")),
            read_trimmed(&format!("{base}/size")),
        ) else {
            break;
        };
        out.push((level, ctype, size));
    }
    out
}

/// STREAM-triad-style sustained bandwidth estimate in GB/s:
/// `a[i] = b[i] + s·c[i]` over arrays well beyond cache size.
pub fn triad_bandwidth_gbs() -> f64 {
    let n = 8_000_000usize; // 3 arrays x 64 MB total
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let s = 3.0;
    // Warm-up + measure best of 3.
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let t = Instant::now();
        for i in 0..n {
            a[i] = b[i] + s * c[i];
        }
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(&a);
        best = best.min(dt);
    }
    // 3 x 8 bytes moved per element (2 reads + 1 write).
    (24.0 * n as f64) / best / 1e9
}

/// Prints the host description table (Table II substitute, DESIGN.md S5).
pub fn describe() -> Table {
    let mut t = Table::new(&["property", "value"]);
    t.row(vec!["cpu model".into(), cpu_model()]);
    t.row(vec![
        "available parallelism".into(),
        std::thread::available_parallelism()
            .map(|p| p.get().to_string())
            .unwrap_or("?".into()),
    ]);
    for (level, ctype, size) in caches() {
        t.row(vec![
            format!("L{level} {} cache", ctype.to_lowercase()),
            size,
        ]);
    }
    t.row(vec![
        "triad bandwidth (GB/s)".into(),
        format!("{:.2}", triad_bandwidth_gbs()),
    ]);
    t.row(vec![
        "paper platform A".into(),
        "Dunnington: 4x6 cores, 5.4 GB/s sustained".into(),
    ]);
    t.row(vec![
        "paper platform B".into(),
        "Gainestown: 2x4 cores (16 threads), 2x15.5 GB/s sustained".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_has_rows() {
        // Cheap structural check only (the bandwidth probe is expensive, so
        // exercise the pieces that don't allocate 192 MB).
        assert!(!cpu_model().is_empty());
        let _ = caches();
    }
}
