//! End-to-end tests of the `experiments` binary's command-line interface.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_subcommand_rejected() {
    let out = bin().arg("fig99").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_rejected() {
    let out = bin().args(["table1", "--bogus", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn bad_matrix_name_lists_valid_names() {
    let out = bin()
        .args(["table1", "--matrix", "not_a_matrix"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ldoor"), "should list valid names: {err}");
}

#[test]
fn invalid_scale_rejected() {
    for bad in ["-1", "0", "abc"] {
        let out = bin().args(["table1", "--scale", bad]).output().unwrap();
        assert!(!out.status.success(), "scale {bad} should be rejected");
    }
}

#[test]
fn table1_runs_end_to_end() {
    let dir = std::env::temp_dir().join("symspmv_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args([
            "table1",
            "--scale",
            "0.002",
            "--matrix",
            "hood",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hood"));
    assert!(stdout.contains("CR(CSX-Sym)"));
    assert!(dir.join("table1.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig5_writes_csv_and_svg() {
    let dir = std::env::temp_dir().join("symspmv_cli_fig5");
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args([
            "fig5",
            "--scale",
            "0.002",
            "--matrix",
            "nd12k",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(dir.join("fig5.csv").exists());
    assert!(dir.join("fig5.svg").exists());
    let svg = std::fs::read_to_string(dir.join("fig5.svg")).unwrap();
    assert!(svg.starts_with("<svg"));
    let _ = std::fs::remove_dir_all(&dir);
}
