//! Cross-layer stress tests for the plan-memoization path: repeated engine
//! builds against one `ExecutionContext` must converge to cache hits, share
//! one certified plan per configuration, and make repeat preprocessing
//! effectively free.

use std::sync::Arc;
use std::time::Duration;
use symspmv_core::sym::{ReductionMethod, SymFormat, SymSpmv};
use symspmv_core::traits::ParallelSpmv;
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::SssMatrix;

fn big_matrix() -> SssMatrix {
    let coo = symspmv_sparse::gen::banded_random(3000, 30, 14.0, 11);
    SssMatrix::from_coo(&coo, 0.0).unwrap()
}

/// Satellite: the second build of the same (matrix, nthreads, strategy)
/// configuration hits the plan cache — same `Arc`, hit counter moves, and
/// the repeat preprocess phase is far cheaper than the first (the symbolic
/// analysis, partitioning and certification all ran exactly once).
#[test]
fn repeat_build_hits_plan_cache_and_skips_preprocessing() {
    let sss = big_matrix();
    // Populate the memoized fingerprint before cloning: every clone below
    // carries it, so repeat builds don't even re-walk the structure for
    // the cache key.
    let _ = sss.fingerprint();
    let ctx = ExecutionContext::new(4);

    let first = SymSpmv::from_sss(sss.clone(), &ctx, ReductionMethod::Indexing, SymFormat::Sss);
    let misses = ctx.plan_cache_misses();
    let t_first = first.times().preprocess;
    assert!(t_first > Duration::ZERO);

    let second = SymSpmv::from_sss(sss.clone(), &ctx, ReductionMethod::Indexing, SymFormat::Sss);
    let t_second = second.times().preprocess;

    assert!(
        Arc::ptr_eq(first.plan(), second.plan()),
        "second build must reuse the cached plan"
    );
    assert!(ctx.plan_cache_hits() >= 1);
    assert_eq!(
        ctx.plan_cache_misses(),
        misses,
        "second build must not miss"
    );
    // A cache hit is a map lookup; the first build ran the O(nnz) symbolic
    // analysis plus certification. An order of magnitude of slack keeps
    // this robust on noisy machines while still failing if memoization
    // silently stops working.
    assert!(
        t_second * 5 < t_first,
        "repeat preprocess not amortized: first={t_first:?} second={t_second:?}"
    );
}

/// Many engines, three strategies, one context: the cache holds one plan
/// per strategy (plus the shared partition entry) no matter how many
/// engines are built, and every plan of a strategy is the same `Arc`.
#[test]
fn many_builds_share_plans_per_strategy() {
    let sss = big_matrix();
    let ctx = ExecutionContext::new(4);
    let methods = [
        ReductionMethod::Naive,
        ReductionMethod::EffectiveRanges,
        ReductionMethod::Indexing,
    ];

    let mut engines = Vec::new();
    for _ in 0..4 {
        for m in methods {
            engines.push(SymSpmv::from_sss(sss.clone(), &ctx, m, SymFormat::Sss));
        }
    }
    // 3 strategy plans + 1 shared "parts" entry.
    assert_eq!(ctx.plan_cache_len(), 4);
    for group in engines.chunks(3).skip(1) {
        for (engine, reference) in group.iter().zip(&engines[..3]) {
            assert!(Arc::ptr_eq(engine.plan(), reference.plan()));
        }
    }
    // The shared partition: every strategy's plan points at the same Arc.
    assert!(Arc::ptr_eq(
        &engines[0].plan().parts,
        &engines[2].plan().parts
    ));

    // All engines still compute the right thing.
    let n = sss.n() as usize;
    let x = symspmv_sparse::dense::seeded_vector(n, 3);
    let mut y_ref = vec![0.0; n];
    sss.spmv(&x, &mut y_ref);
    for engine in engines.iter_mut().take(3) {
        let mut y = vec![f64::NAN; n];
        engine.spmv(&x, &mut y);
        symspmv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-12);
    }
}
