#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! The paper's contribution: multithreaded *symmetric* SpMV.
//!
//! Storing only the lower triangle halves the memory traffic of SpMV but
//! introduces transposed writes `y[c] += a·x[r]` that cross thread-partition
//! boundaries. The standard fix — per-thread local output vectors reduced
//! after the multiply — costs `Θ(p·N)` extra traffic and stops the kernel
//! from scaling (§III). This crate implements:
//!
//! * [`csr_mt::CsrParallel`] — the unsymmetric CSR baseline every figure
//!   compares against;
//! * [`csx_mt::CsxParallel`] — the unsymmetric CSX baseline (Fig. 11/12);
//! * [`sym::SymSpmv`] — the symmetric kernel over SSS or CSX-Sym storage
//!   with all three reduction schemes of §III: the naive local-vectors
//!   method (Alg. 3), the *effective ranges* method of Batista et al., and
//!   the paper's **local-vectors indexing** scheme;
//! * [`symbolic`] — the structure-only conflict analysis that builds the
//!   `(vid, idx)` reduction index and measures the effective-region density
//!   of Fig. 4;
//! * [`csx_sym`] — the **CSX-Sym** storage format (§IV-B): per-partition
//!   CSX encoding of the lower triangle with the boundary-legality rule;
//! * [`bcsr_mt`] — the auto-tuned register-blocking (BCSR) baseline;
//! * [`csb_mt`] — the CSB and CSB-Sym comparators from the related work
//!   (Buluç et al., refs. 8 and 27 of the paper);
//! * [`sym_color`] — the "colorful" method of Batista et al. (ref. 7,
//!   §VI): conflict-free row coloring instead of any reduction;
//! * [`sym_atomic`] — an extension baseline: atomic conflicting updates
//!   instead of local vectors (the CSB-style alternative discussed in the
//!   paper's related work, §VI);
//! * [`ws`] — the working-set models of Eq. 3–6 (Fig. 5);
//! * [`auto`] — cost-model plan selection ([`SymSpmv::auto`]) and the
//!   [`PlanAdvisor`] hook the persisted plan store plugs into
//!   (DESIGN.md §18);
//! * [`resilience`] — bounded retry ([`RetryPolicy`]), the serial
//!   [`FallbackKernel`] of last resort, and the [`Resilient`] wrapper that
//!   keeps serving when the pool degrades (DESIGN.md §16).

pub mod auto;
pub mod bcsr_mt;
pub mod csb_mt;
pub mod csr_mt;
pub mod csx_mt;
pub mod csx_sym;
pub mod error;
pub mod plan;
pub mod resilience;
pub mod shared;
pub mod sym;
pub mod sym_atomic;
pub mod sym_color;
pub mod symbolic;
pub mod traits;
pub mod ws;

pub use auto::{AutoChoice, FormatTag, PlanAdvisor, PlanSource, PlanSpec};
pub use bcsr_mt::BcsrParallel;
pub use csb_mt::{CsbParallel, CsbSymParallel};
pub use csr_mt::CsrParallel;
pub use csx_mt::CsxParallel;
pub use csx_sym::CsxSymMatrix;
pub use error::SymSpmvError;
pub use plan::CachedSymPlan;
pub use resilience::{fallback_worthy, FallbackKernel, Resilient, RetryPolicy, Served};
pub use sym::{ReductionMethod, SymFormat, SymSpmv};
pub use sym_atomic::SssAtomicParallel;
pub use sym_color::SssColorParallel;
pub use traits::{classify_unwind, BlockKernel, ParallelSpmmExt, ParallelSpmv, SymbolicDescribe};

// Re-exported so block-kernel callers need only this crate in scope.
pub use symspmv_runtime::ParallelSpmm;
pub use symspmv_sparse::VectorBlock;
