//! Memoized, race-certified symmetric-SpMV plans.
//!
//! Everything [`super::sym::SymSpmv`] derives from the matrix structure and
//! the thread count — the balanced row partition, the local-vector layout,
//! the conflict index, the reduction chunks — is bundled into one immutable
//! [`CachedSymPlan`] and memoized in the [`ExecutionContext`] plan cache
//! under `(matrix fingerprint, nthreads, strategy tag)`. Building a second
//! engine for the same configuration (a strategy sweep, a solver restart)
//! reuses the plan wholesale; switching only the strategy still reuses the
//! shared row partition through the `"parts"` pseudo-strategy namespace.
//!
//! Every plan carries the [`RaceCertificate`] proving its write sets are
//! race-free; the certificate is produced by `symspmv-verify` at plan time
//! (amortized by the cache) and re-validated by the kernel in debug builds
//! before every dispatch.

use crate::symbolic::{self, ConflictIndex};
use std::any::Any;
use std::sync::Arc;
use symspmv_runtime::{
    balanced_ranges, partition::symmetric_row_weights, ExecutionContext, PlanKey, Range,
    ReductionStrategy,
};
use symspmv_sparse::SssMatrix;
use symspmv_verify::{
    certify_race_symbolic, certify_sym_symbolic, ColoringFacts, RaceCertificate, StructureFacts,
    SymPlanRef, SymStrategyKind,
};

/// The pseudo-strategy namespace under which the shared row partition is
/// memoized: every strategy for the same (matrix, nthreads) pair reuses it.
const PARTS_NAMESPACE: &str = "parts";

/// The RACE group schedule of a scheduled (coloring) strategy: the rows of
/// each distance-2-disjoint group plus the per-thread split of every
/// group's row list. The kernel runs the groups one barrier apart with all
/// threads writing `y` directly.
#[derive(Debug)]
pub struct GroupSchedule {
    /// Rows of each group, ascending; the groups partition `0..n`.
    pub groups: Vec<Vec<u32>>,
    /// Per-group, per-thread ranges into the group's row list,
    /// nnz-balanced within the group.
    pub group_parts: Vec<Vec<Range>>,
    /// Group id of every row.
    pub group_of: Vec<u32>,
    /// BFS level of every row (axiom data for the symbolic certifier).
    pub levels: Vec<u32>,
    /// Within-level subcolor of every row (axiom data).
    pub subcolors: Vec<u32>,
}

/// One fully-derived, certified plan for a (matrix, nthreads, strategy)
/// configuration.
#[derive(Debug)]
pub struct CachedSymPlan {
    /// Structural fingerprint of the matrix the plan was derived from.
    pub fingerprint: u64,
    /// nnz-balanced row partition (shared across strategies).
    pub parts: Arc<Vec<Range>>,
    /// Per-thread offsets into the flat leased local store.
    pub offsets: Vec<usize>,
    /// Length of the flat local store the layout needs.
    pub local_len: usize,
    /// Conflict index (index-consuming strategies; empty otherwise).
    pub index: ConflictIndex,
    /// Row chunks of the naive/effective reduce phase.
    pub reduce_chunks: Vec<Range>,
    /// The machine-checked race-freedom proof for this plan.
    pub cert: RaceCertificate,
    /// RACE group schedule (scheduled strategies only; `None` for the
    /// local-vectors reduction family).
    pub schedule: Option<Arc<GroupSchedule>>,
}

impl CachedSymPlan {
    /// Derives (or retrieves from the context's plan cache) the certified
    /// plan for `sss` under `strategy` with the context's thread count.
    pub fn obtain(
        sss: &SssMatrix,
        ctx: &Arc<ExecutionContext>,
        strategy: &Arc<dyn ReductionStrategy>,
    ) -> Arc<CachedSymPlan> {
        let fingerprint = sss.fingerprint();
        let nthreads = ctx.nthreads();
        let key = PlanKey {
            matrix: fingerprint,
            nthreads,
            strategy: strategy.name().to_string(),
        };
        if let Some(hit) = ctx.plan_cache_get(&key) {
            if let Ok(plan) = Arc::downcast::<CachedSymPlan>(hit) {
                return plan;
            }
        }
        let plan = Arc::new(Self::derive(sss, ctx, strategy, fingerprint));
        ctx.plan_cache_put(key, Arc::clone(&plan) as Arc<dyn Any + Send + Sync>);
        plan
    }

    fn derive(
        sss: &SssMatrix,
        ctx: &Arc<ExecutionContext>,
        strategy: &Arc<dyn ReductionStrategy>,
        fingerprint: u64,
    ) -> CachedSymPlan {
        let n = sss.n() as usize;
        let nthreads = ctx.nthreads();

        // The partition depends only on (matrix, nthreads): share it across
        // strategy switches through the pseudo-strategy namespace.
        let parts_key = PlanKey {
            matrix: fingerprint,
            nthreads,
            strategy: PARTS_NAMESPACE.to_string(),
        };
        let parts: Arc<Vec<Range>> = ctx
            .plan_cache_get(&parts_key)
            .and_then(|hit| Arc::downcast::<Vec<Range>>(hit).ok())
            .unwrap_or_else(|| {
                let p = Arc::new(balanced_ranges(
                    &symmetric_row_weights(sss.rowptr()),
                    nthreads,
                ));
                ctx.plan_cache_put(parts_key, Arc::clone(&p) as Arc<dyn Any + Send + Sync>);
                p
            });

        if strategy.scheduled() {
            return Self::derive_scheduled(sss, fingerprint, parts, nthreads);
        }

        // The conflict analysis runs for every strategy now: the symbolic
        // certifier consumes the per-thread conflict profile, and index-free
        // strategies keep their empty entry/split shape while carrying the
        // real profile.
        let analysis = symbolic::analyze(sss, &parts);
        let index = if strategy.needs_index() {
            analysis
        } else {
            ConflictIndex {
                entries: Vec::new(),
                conflicts: analysis.conflicts,
                splits: vec![0; nthreads + 1],
                effective_region_len: parts.iter().map(|r| r.start as usize).sum(),
            }
        };
        let layout = strategy.layout(n, &parts);
        let reduce_chunks = balanced_ranges(&vec![1u64; n], nthreads);

        let kind = if !strategy.direct_write() {
            SymStrategyKind::Naive
        } else if strategy.needs_index() {
            SymStrategyKind::Indexing
        } else {
            SymStrategyKind::EffectiveRanges
        };
        let plan_ref = SymPlanRef {
            parts: &parts,
            offsets: &layout.offsets,
            local_len: layout.flat_len,
            strategy: kind,
            entries: &index.entries,
            splits: &index.splits,
            row_chunks: &reduce_chunks,
        };
        let facts = StructureFacts::of(sss);
        let cert = match certify_sym_symbolic(&facts, &plan_ref, &index.conflicts) {
            Ok(cert) => cert,
            // The plan was just derived from the structure by construction;
            // a certification failure here is a bug in the planner (or the
            // verifier), never a user-input condition.
            Err(e) => unreachable!("freshly derived plan failed race certification: {e}"),
        };
        // Debug builds re-prove by exhaustive enumeration and demand the two
        // certifiers agree bit-for-bit (modulo the recorded proof form).
        #[cfg(debug_assertions)]
        {
            match symspmv_verify::certify_sym(sss, &plan_ref) {
                Ok(enumerated) => {
                    let mut normalized = cert.clone();
                    normalized.proof = symspmv_verify::ProofForm::Enumerative;
                    assert_eq!(
                        normalized, enumerated,
                        "symbolic and enumerative certificates diverge"
                    );
                }
                Err(e) => unreachable!("enumerative re-certification failed: {e}"),
            }
        }

        CachedSymPlan {
            fingerprint,
            parts,
            offsets: layout.offsets,
            local_len: layout.flat_len,
            index,
            reduce_chunks,
            cert,
            schedule: None,
        }
    }

    /// Derives the plan of a scheduled (RACE coloring) strategy: a
    /// recursive level coloring partitions the rows into
    /// distance-2-disjoint groups, each group is nnz-balanced across the
    /// threads, and the schedule is dual-certified — symbolically from the
    /// coloring axioms, and (in debug builds) by exhaustive write-set
    /// enumeration, with the two certificates required to agree exactly.
    /// No local vectors exist: `local_len` is zero, so the kernel's reduce
    /// phase vanishes.
    fn derive_scheduled(
        sss: &SssMatrix,
        fingerprint: u64,
        parts: Arc<Vec<Range>>,
        nthreads: usize,
    ) -> CachedSymPlan {
        let n = sss.n() as usize;
        let coloring = symspmv_reorder::level_color_lower(sss.n(), sss.rowptr(), sss.colind());
        let group_parts: Vec<Vec<Range>> = coloring
            .groups
            .iter()
            .map(|rows| {
                let weights: Vec<u64> = rows
                    .iter()
                    .map(|&r| 2 * sss.row(r).0.len() as u64 + 1)
                    .collect();
                balanced_ranges(&weights, nthreads)
            })
            .collect();
        let schedule = GroupSchedule {
            groups: coloring.groups,
            group_parts,
            group_of: coloring.group_of,
            levels: coloring.levels,
            subcolors: coloring.subcolors,
        };

        let facts = StructureFacts::of(sss);
        let cert = ColoringFacts::establish(sss, &schedule.levels, &schedule.subcolors)
            .and_then(|coloring_facts| {
                certify_race_symbolic(
                    &facts,
                    &coloring_facts,
                    &schedule.group_of,
                    &schedule.groups,
                    &schedule.group_parts,
                    nthreads,
                )
            })
            .unwrap_or_else(|e| {
                // The schedule was just derived from the structure by
                // construction; a certification failure is a scheduler (or
                // verifier) bug, never a user-input condition.
                unreachable!("freshly derived schedule failed race certification: {e}")
            });
        // Debug builds re-prove by exhaustive enumeration; the two proofs
        // are required to agree bit-for-bit, proof form included.
        #[cfg(debug_assertions)]
        {
            match symspmv_verify::certify_race(
                sss,
                &schedule.groups,
                &schedule.group_parts,
                nthreads,
            ) {
                Ok(enumerated) => assert_eq!(
                    cert, enumerated,
                    "symbolic and enumerative race certificates diverge"
                ),
                Err(e) => unreachable!("enumerative re-certification failed: {e}"),
            }
        }

        CachedSymPlan {
            fingerprint,
            parts,
            offsets: vec![0; nthreads],
            local_len: 0,
            index: ConflictIndex {
                entries: Vec::new(),
                conflicts: vec![Vec::new(); nthreads],
                splits: vec![0; nthreads + 1],
                effective_region_len: 0,
            },
            reduce_chunks: balanced_ranges(&vec![1u64; n], nthreads),
            cert,
            schedule: Some(Arc::new(schedule)),
        }
    }
}

/// Debug-build dispatch gate for the plain row-partitioned kernels (CSR,
/// CSX chunks, BCSR block rows, CSB block rows): asserts the partition
/// tiles `0..n` disjointly, naming the kernel family in the panic. Free in
/// release builds.
#[inline]
pub fn debug_certify_rows(n: u32, parts: &[Range], family: &str) {
    #[cfg(not(debug_assertions))]
    let _ = (n, parts, family);
    #[cfg(debug_assertions)]
    if let Err(e) = symspmv_verify::certify_rows(0, n, parts, family) {
        unreachable!("{family}: partition failed race certification: {e}");
    }
}

/// Debug-build certification of a greedy coloring: no two rows of one
/// class may share a write target. Free in release builds.
#[inline]
pub fn debug_certify_color(sss: &SssMatrix, classes: &[Vec<u32>]) {
    #[cfg(not(debug_assertions))]
    let _ = (sss, classes);
    #[cfg(debug_assertions)]
    if let Err(e) = symspmv_verify::certify_color(sss, classes) {
        unreachable!("coloring failed race certification: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::ReductionMethod;

    fn strategy(ctx: &Arc<ExecutionContext>, m: ReductionMethod) -> Arc<dyn ReductionStrategy> {
        ctx.reduction(m.tag()).unwrap()
    }

    #[test]
    fn same_configuration_reuses_plan() {
        let coo = symspmv_sparse::gen::banded_random(300, 16, 8.0, 3);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let ctx = ExecutionContext::new(4);
        let s = strategy(&ctx, ReductionMethod::Indexing);
        let a = CachedSymPlan::obtain(&sss, &ctx, &s);
        let b = CachedSymPlan::obtain(&sss, &ctx, &s);
        assert!(Arc::ptr_eq(&a, &b), "second obtain must hit the cache");
        assert!(ctx.plan_cache_hits() >= 1);
    }

    #[test]
    fn strategy_switch_shares_the_partition() {
        let coo = symspmv_sparse::gen::banded_random(300, 16, 8.0, 3);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let ctx = ExecutionContext::new(4);
        let idx = CachedSymPlan::obtain(&sss, &ctx, &strategy(&ctx, ReductionMethod::Indexing));
        let eff = CachedSymPlan::obtain(
            &sss,
            &ctx,
            &strategy(&ctx, ReductionMethod::EffectiveRanges),
        );
        assert!(
            Arc::ptr_eq(&idx.parts, &eff.parts),
            "strategies must share the row partition"
        );
        assert_ne!(idx.cert.strategy, eff.cert.strategy);
    }

    #[test]
    fn different_matrices_get_distinct_plans() {
        let a = SssMatrix::from_coo(&symspmv_sparse::gen::laplacian_2d(12, 12), 0.0).unwrap();
        let b = SssMatrix::from_coo(&symspmv_sparse::gen::laplacian_2d(13, 13), 0.0).unwrap();
        let ctx = ExecutionContext::new(2);
        let s = strategy(&ctx, ReductionMethod::EffectiveRanges);
        let pa = CachedSymPlan::obtain(&a, &ctx, &s);
        let pb = CachedSymPlan::obtain(&b, &ctx, &s);
        assert_ne!(pa.fingerprint, pb.fingerprint);
        assert!(!Arc::ptr_eq(&pa, &pb));
    }

    #[test]
    fn certificates_validate_for_their_own_configuration_only() {
        let coo = symspmv_sparse::gen::laplacian_2d(16, 16);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let ctx = ExecutionContext::new(4);
        let plan = CachedSymPlan::obtain(&sss, &ctx, &strategy(&ctx, ReductionMethod::Indexing));
        plan.cert
            .validate_for(sss.fingerprint(), 4, "sym-sss", "idx")
            .unwrap();
        assert!(plan
            .cert
            .validate_for(sss.fingerprint(), 8, "sym-sss", "idx")
            .is_err());
    }
}
