//! The "colorful" symmetric SpMV (Batista et al. — ref. 7, discussed in
//! §VI) — the third way to handle the transposed-write conflicts.
//!
//! Instead of local vectors or atomics, rows are greedily *colored* so
//! that no two rows of the same color ever write the same output element
//! (row `r` writes `y[r]` and `y[c]` for every stored lower element
//! `(r, c)`). The kernel then processes one color class at a time: within
//! a class all writes are disjoint, so threads write `y` directly; a
//! barrier separates classes. There is no reduction phase — the cost moved
//! into the barriers and the loss of row locality, which is why the paper
//! reports the method "could not achieve a performance gain over the
//! typical local vectors method".

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{balanced_ranges, ExecutionContext, PhaseTimes, Range};
use symspmv_sparse::symmetry::{SymmetryKind, SymmetryOps};
use symspmv_sparse::{with_symmetry_ops, CooMatrix, Idx, SparseError, SssMatrix, Val};

/// Result of the conflict coloring.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Color of each row.
    pub color_of: Vec<u32>,
    /// Rows grouped by color (each group sorted ascending).
    pub classes: Vec<Vec<Idx>>,
}

impl Coloring {
    /// Number of color classes.
    pub fn ncolors(&self) -> usize {
        self.classes.len()
    }
}

/// Greedily colors the rows of an SSS matrix so no two same-colored rows
/// share a write target.
///
/// Write set of row `r`: `{r} ∪ cols(r)`. Two rows conflict iff their
/// write sets intersect, i.e. they share a column, or one row's index is
/// in the other's column set. The single-pass greedy visits rows in
/// ascending order and tracks, per column, the colors already "attached"
/// to it; the smallest color attached to none of the row's write targets
/// is chosen.
pub fn color_rows(sss: &SssMatrix) -> Coloring {
    let n = sss.n() as usize;
    // colors_at[c] = colors of all previously processed rows whose write
    // set contains c (small Vec: conflict degrees are modest outside hubs).
    let mut colors_at: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut color_of = vec![0u32; n];
    // Scratch bitmap of forbidden colors, epoch-versioned to avoid clears.
    let mut forbidden: Vec<u64> = vec![0; 64];
    let mut epoch: u64 = 0;

    let mut ncolors = 0u32;
    for r in 0..n {
        epoch += 1;
        let (cols, _) = sss.row(r as Idx);
        let forbid = |color: u32, forbidden: &mut Vec<u64>| {
            let idx = color as usize;
            if idx >= forbidden.len() {
                forbidden.resize(idx + 1, 0);
            }
            forbidden[idx] = epoch;
        };
        for &col in &colors_at[r] {
            forbid(col, &mut forbidden);
        }
        for &c in cols {
            for &col in &colors_at[c as usize] {
                forbid(col, &mut forbidden);
            }
        }
        let mut chosen = 0u32;
        while (chosen as usize) < forbidden.len() && forbidden[chosen as usize] == epoch {
            chosen += 1;
        }
        color_of[r] = chosen;
        ncolors = ncolors.max(chosen + 1);
        // Attach the chosen color to every write target of this row.
        colors_at[r].push(chosen);
        for &c in cols {
            colors_at[c as usize].push(chosen);
        }
    }

    let mut classes: Vec<Vec<Idx>> = vec![Vec::new(); ncolors as usize];
    for (r, &c) in color_of.iter().enumerate() {
        classes[c as usize].push(r as Idx);
    }
    Coloring { color_of, classes }
}

/// Symmetric SpMV over SSS storage using conflict coloring — no local
/// vectors, no atomics, one parallel region (with internal barrier) per
/// color class.
pub struct SssColorParallel {
    sss: SssMatrix,
    coloring: Coloring,
    /// Per color class: thread partition over the class's row list.
    class_parts: Vec<Vec<Range>>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl SssColorParallel {
    /// Builds the kernel from a full symmetric COO matrix.
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Result<Self, SparseError> {
        Self::from_coo_kind(coo, SymmetryKind::Symmetric, ctx)
    }

    /// Builds the kernel from a full COO matrix with an explicit
    /// [`SymmetryKind`]. The coloring depends only on the sparsity pattern,
    /// never on the kind.
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        ctx: &Arc<ExecutionContext>,
    ) -> Result<Self, SparseError> {
        let sss = SssMatrix::from_coo_kind(coo, kind, 0.0)?;
        Ok(Self::from_sss(sss, ctx))
    }

    /// Builds the kernel from SSS storage; the coloring is computed here
    /// and timed as preprocessing.
    pub fn from_sss(sss: SssMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let nthreads = ctx.nthreads();
        let mut times = PhaseTimes::new();
        let coloring = time_into(&mut times.preprocess, || color_rows(&sss));
        crate::plan::debug_certify_color(&sss, &coloring.classes);
        let class_parts = coloring
            .classes
            .iter()
            .map(|rows| {
                let weights: Vec<u64> = rows
                    .iter()
                    .map(|&r| {
                        let (cols, _) = sss.row(r);
                        2 * cols.len() as u64 + 1
                    })
                    .collect();
                balanced_ranges(&weights, nthreads)
            })
            .collect();
        SssColorParallel {
            sss,
            coloring,
            class_parts,
            ctx: Arc::clone(ctx),
            times,
        }
    }

    /// The conflict coloring in use.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }
}

impl ParallelSpmv for SssColorParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        let n = self.sss.n() as usize;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        let y_buf = SharedBuf::new(y);
        let sss = &self.sss;
        let coloring = &self.coloring;
        let class_parts = &self.class_parts;

        time_into(&mut self.times.multiply, || {
            // Diagonal init, row-parallel.
            let chunks = balanced_ranges(&vec![1u64; n], self.ctx.nthreads());
            self.ctx.run(&|tid| {
                let chunk = chunks[tid];
                // SAFETY(cert: disjoint-direct): chunks tile 0..N disjointly.
                let my = unsafe { y_buf.range_mut(chunk.start as usize, chunk.end as usize) };
                let dv = &sss.dvalues()[chunk.start as usize..chunk.end as usize];
                let xs = &x[chunk.start as usize..chunk.end as usize];
                for ((slot, &d), &xi) in my.iter_mut().zip(dv).zip(xs) {
                    *slot = d * xi;
                }
            });

            // One parallel pass per color class; each run is the barrier.
            // The transposed write carries `O::transposed(v, u)` — the
            // coloring itself is kind-independent (write sets are pure
            // structure).
            with_symmetry_ops!(sss.kind(), O => {
                for (rows, parts) in coloring.classes.iter().zip(class_parts) {
                    self.ctx.run(&|tid| {
                        let part = parts[tid];
                        for &r in &rows[part.start as usize..part.end as usize] {
                            let (cols, vals, pair) = sss.row_with_paired(r);
                            let xr = x[r as usize];
                            let mut acc = 0.0;
                            for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                                acc += v * x[c as usize];
                                // SAFETY(cert: color-class): within a color
                                // class no two rows share a write target, and
                                // threads own disjoint rows of the class.
                                unsafe { y_buf.add(c as usize, O::transposed(v, u) * xr) };
                            }
                            // SAFETY(cert: color-class): row r's own slot is
                            // part of its write set, disjoint within the class.
                            unsafe { y_buf.add(r as usize, acc) };
                        }
                    });
                }
            });
        });
    }

    fn n(&self) -> usize {
        self.sss.n() as usize
    }

    fn nnz_full(&self) -> usize {
        2 * self.sss.lower_nnz() + self.sss.n() as usize
    }

    fn size_bytes(&self) -> usize {
        self.sss.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("sss-color")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    fn check_coloring_valid(sss: &SssMatrix, coloring: &Coloring) {
        // Within each class, write sets must be pairwise disjoint.
        use std::collections::HashSet;
        for rows in &coloring.classes {
            let mut seen: HashSet<Idx> = HashSet::new();
            for &r in rows {
                let (cols, _) = sss.row(r);
                assert!(seen.insert(r), "row {r} writes y[{r}] already claimed");
                for &c in cols {
                    assert!(seen.insert(c), "class shares write target y[{c}]");
                }
            }
        }
        // Classes partition the rows.
        let total: usize = coloring.classes.iter().map(Vec::len).sum();
        assert_eq!(total, sss.n() as usize);
    }

    #[test]
    fn coloring_is_valid_on_banded_matrix() {
        let coo = symspmv_sparse::gen::banded_random(300, 12, 8.0, 5);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let coloring = color_rows(&sss);
        check_coloring_valid(&sss, &coloring);
        assert!(coloring.ncolors() > 1);
        assert!(
            coloring.ncolors() < 80,
            "greedy should stay near the conflict degree: {}",
            coloring.ncolors()
        );
    }

    #[test]
    fn coloring_on_hub_matrix() {
        // A hub column forces every hub-touching row into its own class.
        let mut coo = CooMatrix::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 2.0);
        }
        for r in 1..20u32 {
            coo.push(r, 0, 1.0);
            coo.push(0, r, 1.0);
        }
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let coloring = color_rows(&sss);
        check_coloring_valid(&sss, &coloring);
        assert!(coloring.ncolors() >= 19, "hub rows mutually conflict");
    }

    #[test]
    fn spmv_matches_serial_on_suite_classes() {
        for coo in [
            symspmv_sparse::gen::banded_random(400, 20, 9.0, 2),
            symspmv_sparse::gen::mixed_bandwidth(300, 7.0, 0.5, 10, 4),
            symspmv_sparse::gen::block_structural(60, 3, 6.0, 12, 6),
        ] {
            let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
            let n = sss.n() as usize;
            let x = seeded_vector(n, 8);
            let mut y_ref = vec![0.0; n];
            sss.spmv(&x, &mut y_ref);
            for p in [1usize, 3, 8] {
                let ctx = ExecutionContext::new(p);
                let mut k = SssColorParallel::from_coo(&coo, &ctx).unwrap();
                let mut y = vec![f64::NAN; n];
                k.spmv(&x, &mut y);
                assert_vec_close(&y, &y_ref, 1e-12);
            }
        }
    }

    #[test]
    fn preprocessing_recorded_and_named() {
        let coo = symspmv_sparse::gen::laplacian_2d(20, 20);
        let k = SssColorParallel::from_coo(&coo, &ExecutionContext::new(2)).unwrap();
        assert_eq!(k.name(), "sss-color");
        assert!(k.times().preprocess > std::time::Duration::ZERO);
        assert!(k.coloring().ncolors() >= 2);
    }
}
