//! Structure-only conflict analysis for the local-vectors indexing scheme
//! (§III-C).
//!
//! For a row partition of the lower triangle, thread `i`'s transposed writes
//! `y[c] += a·x[r]` with `c < start_i` hit its local vector. The *conflict
//! set* of thread `i` is the set of distinct such rows `c`; the paper's
//! `(vid, idx)` index enumerates exactly these entries, sorted by `idx` so
//! the reduction can be split among threads without ever sharing an output
//! row.

use symspmv_runtime::{balanced_ranges, Range};
use symspmv_sparse::{Idx, SssMatrix};

// The entry type lives in the runtime crate next to the reduction
// strategies that consume it; re-exported here so the analysis API is
// self-contained. The paper stores both fields in four bytes each ("we use
// generously four bytes for the vid field"); the layout mirrors that.
pub use symspmv_runtime::reduction::IndexEntry;

/// The symbolic analysis result driving the indexing reduction.
#[derive(Debug, Clone)]
pub struct ConflictIndex {
    /// All `(vid, idx)` pairs, sorted by `(idx, vid)`.
    pub entries: Vec<IndexEntry>,
    /// Per-thread conflict rows (sorted), `conflicts[i]` for thread `i`.
    pub conflicts: Vec<Vec<Idx>>,
    /// Reduction split boundaries into `entries` (`nthreads + 1` values);
    /// no `idx` value is shared between two slices.
    pub splits: Vec<usize>,
    /// Total size of the effective regions, `Σ_i start_i` elements.
    pub effective_region_len: usize,
}

impl ConflictIndex {
    /// Density `d` of the effective regions (Fig. 4): conflicting entries
    /// over total effective-region length.
    pub fn density(&self) -> f64 {
        if self.effective_region_len == 0 {
            0.0
        } else {
            self.entries.len() as f64 / self.effective_region_len as f64
        }
    }

    /// Bytes of the index itself (two 4-byte fields per entry).
    pub fn index_bytes(&self) -> usize {
        8 * self.entries.len()
    }

    /// Bytes of the index under the compact layout the paper mentions
    /// ("two or even a single byte is enough" for `vid` on current
    /// machines): one byte of vid when < 256 threads, two below 65 536,
    /// plus the 4-byte `idx`.
    pub fn index_bytes_packed(&self, nthreads: usize) -> usize {
        let vid_bytes = if nthreads <= 1 << 8 {
            1
        } else if nthreads <= 1 << 16 {
            2
        } else {
            4
        };
        (4 + vid_bytes) * self.entries.len()
    }
}

/// Runs the symbolic analysis for an SSS matrix under a row partition.
///
/// Only the sparsity structure is inspected; values never matter, so the
/// analysis is reusable across CG iterations and shared by the SSS and
/// CSX-Sym kernels (the optimization "is orthogonal to the CSX-Sym format",
/// §IV-B).
pub fn analyze(sss: &SssMatrix, parts: &[Range]) -> ConflictIndex {
    let p = parts.len();
    let mut conflicts: Vec<Vec<Idx>> = vec![Vec::new(); p];
    let mut seen = vec![false; sss.n() as usize];
    for (i, part) in parts.iter().enumerate() {
        let split = part.start;
        if split == 0 {
            continue;
        }
        let my = &mut conflicts[i];
        for r in part.start..part.end {
            let (cols, _) = sss.row(r);
            for &c in cols {
                if c < split && !seen[c as usize] {
                    seen[c as usize] = true;
                    my.push(c);
                }
            }
        }
        my.sort_unstable();
        for &c in my.iter() {
            seen[c as usize] = false;
        }
    }

    let mut entries: Vec<IndexEntry> = conflicts
        .iter()
        .enumerate()
        .flat_map(|(i, rows)| {
            rows.iter().map(move |&c| IndexEntry {
                vid: i as Idx,
                idx: c,
            })
        })
        .collect();
    entries.sort_unstable_by_key(|e| (e.idx, e.vid));

    let splits = split_entries(&entries, p);
    let effective_region_len = parts.iter().map(|r| r.start as usize).sum();
    ConflictIndex {
        entries,
        conflicts,
        splits,
        effective_region_len,
    }
}

/// Splits the sorted index into `p` balanced slices, moving each boundary
/// forward so an `idx` value never spans two slices — the independence
/// restriction of §III-C's parallelization paragraph.
fn split_entries(entries: &[IndexEntry], p: usize) -> Vec<usize> {
    let weights = vec![1u64; entries.len()];
    let ranges = balanced_ranges(&weights, p);
    let mut splits = Vec::with_capacity(p + 1);
    splits.push(0usize);
    for r in &ranges[..p - 1] {
        let mut b = r.end as usize;
        while b > 0 && b < entries.len() && entries[b].idx == entries[b - 1].idx {
            b += 1;
        }
        let b = b
            .min(entries.len())
            .max(splits.last().copied().unwrap_or(0));
        splits.push(b);
    }
    splits.push(entries.len());
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::{CooMatrix, SssMatrix};

    fn sss_from_lower(entries: &[(Idx, Idx)], n: Idx) -> SssMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        for &(r, c) in entries {
            assert!(c < r);
            coo.push(r, c, -1.0);
        }
        SssMatrix::from_lower_coo(&coo).unwrap()
    }

    fn parts2(n: Idx) -> Vec<Range> {
        vec![
            Range {
                start: 0,
                end: n / 2,
            },
            Range {
                start: n / 2,
                end: n,
            },
        ]
    }

    #[test]
    fn conflicts_found_per_thread() {
        // Rows 4..8 with writes below row 4: (5,1), (6,1), (7,3).
        let sss = sss_from_lower(&[(5, 1), (6, 1), (7, 3), (6, 5)], 8);
        let ci = analyze(&sss, &parts2(8));
        assert!(ci.conflicts[0].is_empty(), "thread 0 can never conflict");
        assert_eq!(ci.conflicts[1], vec![1, 3]);
        assert_eq!(ci.entries.len(), 2);
        assert_eq!(ci.effective_region_len, 4);
        assert!((ci.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_columns_deduplicated() {
        let sss = sss_from_lower(&[(5, 1), (6, 1), (7, 1)], 8);
        let ci = analyze(&sss, &parts2(8));
        assert_eq!(ci.conflicts[1], vec![1]);
    }

    #[test]
    fn entries_sorted_by_idx() {
        let sss = sss_from_lower(&[(9, 0), (9, 5), (5, 2), (11, 2)], 12);
        let parts = vec![
            Range { start: 0, end: 4 },
            Range { start: 4, end: 8 },
            Range { start: 8, end: 12 },
        ];
        let ci = analyze(&sss, &parts);
        for w in ci.entries.windows(2) {
            assert!((w[0].idx, w[0].vid) < (w[1].idx, w[1].vid));
        }
        // idx 2 appears for vid 1 (row 5) and vid 2 (row 11).
        let idx2: Vec<_> = ci.entries.iter().filter(|e| e.idx == 2).collect();
        assert_eq!(idx2.len(), 2);
    }

    #[test]
    fn splits_never_share_an_idx() {
        // Many entries with the same idx: the boundary must skip past them.
        let mut lower = Vec::new();
        for r in 8..16u32 {
            lower.push((r, 0)); // every thread conflicts on row 0
            lower.push((r, r - 8));
        }
        let lower: Vec<(Idx, Idx)> = lower.into_iter().filter(|&(r, c)| c < r).collect();
        let sss = sss_from_lower(&lower, 16);
        let parts: Vec<Range> = (0..4)
            .map(|i| Range {
                start: i * 4,
                end: (i + 1) * 4,
            })
            .collect();
        let ci = analyze(&sss, &parts);
        assert_eq!(ci.splits.len(), 5);
        for w in ci.splits.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for k in 1..ci.splits.len() - 1 {
            let b = ci.splits[k];
            if b > 0 && b < ci.entries.len() {
                assert_ne!(
                    ci.entries[b - 1].idx,
                    ci.entries[b].idx,
                    "split {k} shares idx {}",
                    ci.entries[b].idx
                );
            }
        }
    }

    #[test]
    fn single_thread_has_no_conflicts() {
        let sss = sss_from_lower(&[(3, 0), (5, 2)], 6);
        let ci = analyze(&sss, &[Range { start: 0, end: 6 }]);
        assert!(ci.entries.is_empty());
        assert_eq!(ci.density(), 0.0);
        assert_eq!(ci.splits, vec![0, 0]);
    }

    #[test]
    fn density_decreases_with_thread_count() {
        // The Fig. 4 effect: more threads → sparser effective regions.
        // The effect is driven by scattered (high-bandwidth) entries, whose
        // conflict count stays roughly constant while the effective regions
        // grow with p — so use a mixed-bandwidth generator like the paper's
        // corner-case matrices.
        let coo = symspmv_sparse::gen::mixed_bandwidth(2048, 10.0, 0.3, 16, 5);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let weights = symspmv_runtime::partition::symmetric_row_weights(sss.rowptr());
        let d: Vec<f64> = [2usize, 8, 32]
            .iter()
            .map(|&p| analyze(&sss, &balanced_ranges(&weights, p)).density())
            .collect();
        assert!(d[0] > d[2], "densities not decreasing: {d:?}");
        assert!(d[2] > 0.0);
    }
}

#[cfg(test)]
mod packed_tests {
    use super::*;
    use symspmv_runtime::balanced_ranges;
    use symspmv_sparse::SssMatrix;

    #[test]
    fn packed_layout_saves_three_eighths() {
        let coo = symspmv_sparse::gen::mixed_bandwidth(512, 8.0, 0.4, 8, 3);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let parts = balanced_ranges(
            &symspmv_runtime::partition::symmetric_row_weights(sss.rowptr()),
            8,
        );
        let ci = analyze(&sss, &parts);
        assert!(ci.index_bytes() > 0);
        assert_eq!(ci.index_bytes_packed(8), ci.index_bytes() / 8 * 5);
        assert_eq!(ci.index_bytes_packed(1 << 12), ci.index_bytes() / 8 * 6);
        assert_eq!(ci.index_bytes_packed(1 << 20), ci.index_bytes());
    }
}
