//! The multithreaded symmetric SpMV engine (§III + §IV).
//!
//! [`SymSpmv`] binds a symmetric matrix (stored as SSS or CSX-Sym), a
//! static nnz-balanced row partition and a [`ReductionStrategy`] borrowed
//! from the shared [`ExecutionContext`], and executes `y = A·x` in two
//! timed phases:
//!
//! 1. **multiply** — each thread computes its partition; transposed writes
//!    that would cross partition boundaries go to local vectors (where they
//!    go depends on the strategy's layout);
//! 2. **reduce** — the local vectors are folded into `y` in parallel by the
//!    strategy.
//!
//! The three built-in strategies implement Fig. 3 of the paper (see
//! `symspmv_runtime::reduction` for the details); [`ReductionMethod`] is
//! the enum-shaped convenience handle that maps onto the registry names
//! (`"naive"`, `"eff"`, `"idx"`). The local vectors themselves are leased
//! from the context's buffer arena per call, so consecutive invocations —
//! and different kernels sharing one context — recycle the same
//! first-touch-initialized pages.

use crate::csx_sym::{
    spmm_sym_stream, spmm_sym_stream_local_only, spmv_sym_stream, spmv_sym_stream_local_only,
    CsxSymMatrix,
};
use crate::error::SymSpmvError;
use crate::plan::{CachedSymPlan, GroupSchedule};
use crate::shared::SharedBuf;
use crate::symbolic::ConflictIndex;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_csx::detect::DetectConfig;
use symspmv_runtime::reduction::ReduceJob;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{ExecutionContext, ParallelSpmm, PhaseTimes, Range, ReductionStrategy};
use symspmv_sparse::block::{VectorBlock, MAX_LANES};
use symspmv_sparse::symmetry::{SymmetryKind, SymmetryOps};
use symspmv_sparse::{with_symmetry_ops, CooMatrix, SparseError, SssMatrix, Val};

/// How local vectors are organized and reduced (Fig. 3 b/c/d).
///
/// Each variant names a strategy pre-registered with every
/// [`ExecutionContext`]; custom strategies registered later are reachable
/// through [`SymSpmv::from_sss_named`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionMethod {
    /// Full-length local vector per thread (Alg. 3).
    Naive,
    /// Effective ranges (Batista et al., ref. 7 of the paper).
    EffectiveRanges,
    /// Local-vectors indexing (§III-C — the paper's scheme).
    Indexing,
    /// RACE-style coloring schedule (Alappat et al.): distance-2-disjoint
    /// row groups run one barrier apart with direct writes — no local
    /// vectors, no reduction phase at all. SSS format only.
    Race,
}

impl ReductionMethod {
    /// Short name used in kernel identifiers, reports, and as the registry
    /// key of the corresponding built-in [`ReductionStrategy`].
    pub fn tag(self) -> &'static str {
        match self {
            ReductionMethod::Naive => "naive",
            ReductionMethod::EffectiveRanges => "eff",
            ReductionMethod::Indexing => "idx",
            ReductionMethod::Race => "race",
        }
    }
}

/// Storage format of the symmetric matrix.
#[derive(Debug, Clone)]
pub enum SymFormat {
    /// Sparse Skyline storage (§II-B): dense diagonal plus the strict
    /// lower triangle in CSR layout. Despite the traditional "Symmetric
    /// Sparse Skyline" name, it carries any [`SymmetryKind`] — skew
    /// matrices mirror with a sign flip, structurally symmetric ones
    /// through a paired upper-value array.
    Sss,
    /// CSX-Sym with the given detection configuration (§IV-B).
    CsxSym(DetectConfig),
    /// Adaptive extension: per thread chunk, encode CSX-Sym only when the
    /// substructure coverage reaches `min_coverage`; chunks below it stay
    /// as plain SSS rows, avoiding the stream-decode cost where the
    /// compression would not pay (motivated by the `ablation` experiment,
    /// where delta-only chunks run fastest on scattered matrices).
    Hybrid {
        /// Detection configuration for the CSX-Sym candidate encoding.
        csx: DetectConfig,
        /// Minimum chunk coverage to adopt the stream encoding.
        min_coverage: f64,
    },
}

enum Storage {
    Sss(SssMatrix),
    CsxSym(CsxSymMatrix),
    /// SSS kept whole; `streams[i]` is the CSX-Sym encoding of chunk `i`
    /// when it cleared the coverage threshold.
    Hybrid {
        sss: SssMatrix,
        csx: CsxSymMatrix,
        use_stream: Vec<bool>,
    },
}

/// The multithreaded symmetric SpMV kernel.
pub struct SymSpmv {
    n: usize,
    nnz_full: usize,
    kind: SymmetryKind,
    method: ReductionMethod,
    strategy: Arc<dyn ReductionStrategy>,
    storage: Storage,
    /// The certified, context-memoized plan: row partition, local-vector
    /// layout, conflict index, reduction chunks and the race certificate.
    /// The local store itself is leased from the arena per spmv call.
    plan: Arc<CachedSymPlan>,
    /// Lane-lifted block-write certificates, one per SpMM lane count seen.
    block_certs: std::collections::HashMap<usize, Arc<symspmv_verify::RaceCertificate>>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
    size_bytes: usize,
}

impl SymSpmv {
    /// Builds the kernel from a full symmetric COO matrix.
    pub fn from_coo(
        coo: &CooMatrix,
        ctx: &Arc<ExecutionContext>,
        method: ReductionMethod,
        format: SymFormat,
    ) -> Result<Self, SparseError> {
        Self::from_coo_kind(coo, SymmetryKind::Symmetric, ctx, method, format)
    }

    /// Builds the kernel from a full COO matrix under an explicit symmetry
    /// kind: the matrix is validated against the kind (symmetric, skew or
    /// pattern-symmetric) and the kernel's mirror contributions follow it.
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        ctx: &Arc<ExecutionContext>,
        method: ReductionMethod,
        format: SymFormat,
    ) -> Result<Self, SparseError> {
        let sss = SssMatrix::from_coo_kind(coo, kind, 0.0)?;
        Ok(Self::from_sss(sss, ctx, method, format))
    }

    /// Fully validated constructor for matrices from outside the process:
    /// beyond [`SymSpmv::from_coo`]'s square/symmetry checks, rejects
    /// non-finite values, duplicate coordinates and index overflow, and
    /// reports everything as a classified [`SymSpmvError`].
    pub fn try_from_coo(
        coo: &CooMatrix,
        ctx: &Arc<ExecutionContext>,
        method: ReductionMethod,
        format: SymFormat,
    ) -> Result<Self, SymSpmvError> {
        Self::try_from_coo_kind(coo, SymmetryKind::Symmetric, ctx, method, format)
    }

    /// The kind-parameterized twin of [`SymSpmv::try_from_coo`].
    pub fn try_from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        ctx: &Arc<ExecutionContext>,
        method: ReductionMethod,
        format: SymFormat,
    ) -> Result<Self, SymSpmvError> {
        let sss = SssMatrix::try_from_coo_kind(coo, kind, 0.0)?;
        Ok(Self::from_sss(sss, ctx, method, format))
    }

    /// Builds the kernel from an SSS matrix (symmetry already established;
    /// the matrix's [`SymmetryKind`] carries over to the kernel).
    ///
    /// The reduction strategy is looked up in the context's registry by the
    /// method's tag. Format preprocessing (CSX-Sym detection/encoding) and
    /// the symbolic conflict analysis are timed into the `preprocess`
    /// phase.
    pub fn from_sss(
        sss: SssMatrix,
        ctx: &Arc<ExecutionContext>,
        method: ReductionMethod,
        format: SymFormat,
    ) -> Self {
        // The built-ins are registered at context creation and the
        // registry never removes entries, so the lookup cannot fail.
        let strategy = ctx.reduction(method.tag()).unwrap_or_else(|| {
            unreachable!("built-in reduction strategy missing from the context registry")
        });
        Self::build(sss, ctx, method, strategy, format)
    }

    /// Builds the kernel with a reduction strategy selected from the
    /// context's registry by name — the route for strategies registered
    /// beyond the three built-ins.
    ///
    /// Returns `None` when no strategy of that name is registered.
    pub fn from_sss_named(
        sss: SssMatrix,
        ctx: &Arc<ExecutionContext>,
        strategy_name: &str,
        format: SymFormat,
    ) -> Option<Self> {
        let strategy = ctx.reduction(strategy_name)?;
        // Classify the custom strategy into the nearest paper family so
        // `method()` keeps reporting something meaningful.
        let method = if strategy.scheduled() {
            ReductionMethod::Race
        } else if !strategy.direct_write() {
            ReductionMethod::Naive
        } else if strategy.needs_index() {
            ReductionMethod::Indexing
        } else {
            ReductionMethod::EffectiveRanges
        };
        Some(Self::build(sss, ctx, method, strategy, format))
    }

    /// Like [`SymSpmv::from_sss_named`], but an unregistered strategy name
    /// is reported as [`SymSpmvError::UnknownStrategy`] instead of `None` —
    /// for callers resolving user-supplied names.
    pub fn try_from_sss_named(
        sss: SssMatrix,
        ctx: &Arc<ExecutionContext>,
        strategy_name: &str,
        format: SymFormat,
    ) -> Result<Self, SymSpmvError> {
        Self::from_sss_named(sss, ctx, strategy_name, format).ok_or_else(|| {
            SymSpmvError::UnknownStrategy {
                name: strategy_name.to_string(),
            }
        })
    }

    fn build(
        sss: SssMatrix,
        ctx: &Arc<ExecutionContext>,
        method: ReductionMethod,
        strategy: Arc<dyn ReductionStrategy>,
        format: SymFormat,
    ) -> Self {
        let n = sss.n() as usize;
        let kind = sss.kind();
        assert!(
            !matches!(format, SymFormat::Hybrid { .. }) || strategy.direct_write(),
            "the hybrid format supports the direct-write methods only"
        );
        assert!(
            matches!(format, SymFormat::Sss) || !strategy.scheduled(),
            "the race schedule supports the SSS format only"
        );
        let mut times = PhaseTimes::new();

        // Partition, layout, conflict index and race certificate all come
        // from the context-memoized plan: a repeat build for the same
        // (matrix, nthreads, strategy) reuses it wholesale and the
        // preprocess phase records (almost) nothing.
        let plan = time_into(&mut times.preprocess, || {
            CachedSymPlan::obtain(&sss, ctx, &strategy)
        });
        let parts = Arc::clone(&plan.parts);

        let nnz_full = 2 * sss.lower_nnz() + n;
        let storage = match &format {
            SymFormat::Sss => Storage::Sss(sss),
            SymFormat::CsxSym(cfg) => {
                let m = time_into(&mut times.preprocess, || {
                    CsxSymMatrix::from_sss(&sss, &parts, cfg)
                });
                Storage::CsxSym(m)
            }
            SymFormat::Hybrid { csx, min_coverage } => {
                let m = time_into(&mut times.preprocess, || {
                    CsxSymMatrix::from_sss(&sss, &parts, csx)
                });
                let use_stream: Vec<bool> = m
                    .chunks()
                    .iter()
                    .map(|c| c.coverage >= *min_coverage)
                    .collect();
                Storage::Hybrid {
                    sss,
                    csx: m,
                    use_stream,
                }
            }
        };
        let size_bytes = match &storage {
            Storage::Sss(s) => s.size_bytes(),
            Storage::CsxSym(m) => m.size_bytes(),
            Storage::Hybrid {
                sss,
                csx,
                use_stream,
            } => {
                // Per-chunk: the stream when adopted, SSS rows otherwise;
                // the shared dvalues/rowptr overhead counted once via SSS.
                let mut bytes = 8 * sss.n() as usize + 4 * (sss.n() as usize + 1);
                for (chunk, &streamed) in csx.chunks().iter().zip(use_stream) {
                    if streamed {
                        bytes += chunk.stream.size_bytes();
                    } else {
                        bytes += 12 * chunk.stream.values.len();
                    }
                }
                bytes
            }
        };

        // The write-set certificate covers the partition and reduction for
        // any storage; the CSX-Sym boundary rule (§IV-B) is an additional
        // per-stream obligation, checked here while the encoding is fresh.
        #[cfg(debug_assertions)]
        if let Storage::CsxSym(m) | Storage::Hybrid { csx: m, .. } = &storage {
            if let Err(e) = symspmv_verify::certify_csx_chunks(
                m.chunks().iter().map(|c| &c.stream),
                &parts,
                plan.fingerprint,
                n as u32,
                kind,
            ) {
                unreachable!("CSX-Sym encoding failed boundary certification: {e}");
            }
        }

        SymSpmv {
            n,
            nnz_full,
            kind,
            method,
            strategy,
            storage,
            plan,
            block_certs: std::collections::HashMap::new(),
            ctx: Arc::clone(ctx),
            times,
            size_bytes,
        }
    }

    /// The row partition in use.
    pub fn partitions(&self) -> &[Range] {
        &self.plan.parts
    }

    /// The certified plan this kernel dispatches with.
    pub fn plan(&self) -> &Arc<CachedSymPlan> {
        &self.plan
    }

    /// The race certificate proving the plan's write sets are disjoint.
    pub fn certificate(&self) -> &symspmv_verify::RaceCertificate {
        &self.plan.cert
    }

    /// The lane-lifted block-write certificate for a given lane count,
    /// minted by the first [`ParallelSpmm::spmm`] call with that many
    /// lanes (`None` before then). The scalar certificate's row conflicts
    /// are lane-independent, so the lift re-checks only the lane scaling
    /// of the layout (see `symspmv_verify::lift_sym_certificate`).
    pub fn block_certificate(&self, lanes: usize) -> Option<&Arc<symspmv_verify::RaceCertificate>> {
        self.block_certs.get(&lanes)
    }

    /// Obtains (and memoizes) the lane-lifted certificate for `lanes`.
    fn obtain_block_certificate(&mut self, lanes: usize) -> Arc<symspmv_verify::RaceCertificate> {
        if let Some(cert) = self.block_certs.get(&lanes) {
            return Arc::clone(cert);
        }
        let block_offsets: Vec<usize> = self.plan.offsets.iter().map(|o| o * lanes).collect();
        let cert = match symspmv_verify::lift_sym_certificate(
            &self.plan.cert,
            lanes,
            &self.plan.offsets,
            self.plan.local_len,
            &block_offsets,
            self.plan.local_len * lanes,
        ) {
            Ok(c) => Arc::new(c),
            // The kernel derives the block layout by scaling the certified
            // scalar plan, so a failed lift means the lifter itself broke.
            Err(e) => unreachable!("lane-lifting a certified plan failed: {e}"),
        };
        self.block_certs.insert(lanes, Arc::clone(&cert));
        cert
    }

    /// The symmetry kind the kernel's mirror contributions follow.
    pub fn kind(&self) -> SymmetryKind {
        self.kind
    }

    /// The reduction method in use (the paper family; custom registry
    /// strategies report their nearest built-in).
    pub fn method(&self) -> ReductionMethod {
        self.method
    }

    /// The reduction strategy driving the fold phase.
    pub fn strategy(&self) -> &Arc<dyn ReductionStrategy> {
        &self.strategy
    }

    /// Number of color groups of a scheduled (race) plan; `None` for the
    /// reduction-based strategies.
    pub fn schedule_groups(&self) -> Option<usize> {
        self.plan.schedule.as_ref().map(|s| s.groups.len())
    }

    /// Elements of local-vector store leased from the arena per call —
    /// `p·N` for the naive layout, `Σ start_i` for the effective layouts
    /// (the working-set term of Eqs. 3/4/6).
    pub fn local_len(&self) -> usize {
        self.plan.local_len
    }

    /// The conflict index (meaningful for index-consuming strategies).
    pub fn conflict_index(&self) -> &ConflictIndex {
        &self.plan.index
    }

    /// Substructure coverage of the CSX-Sym encoding (0 for SSS).
    pub fn csx_coverage(&self) -> f64 {
        match &self.storage {
            Storage::Sss(_) => 0.0,
            Storage::CsxSym(m) => m.coverage(),
            Storage::Hybrid { csx, .. } => csx.coverage(),
        }
    }

    /// The CSX-Sym storage, when that format is in use.
    pub fn csx_sym(&self) -> Option<&CsxSymMatrix> {
        match &self.storage {
            Storage::Sss(_) => None,
            Storage::CsxSym(m) => Some(m),
            Storage::Hybrid { csx, .. } => Some(csx),
        }
    }

    /// For the hybrid format: which chunks adopted the stream encoding.
    pub fn hybrid_streamed_chunks(&self) -> Option<&[bool]> {
        match &self.storage {
            Storage::Hybrid { use_stream, .. } => Some(use_stream),
            _ => None,
        }
    }

    /// The multiply phase, monomorphized per [`SymmetryKind`] at the
    /// dispatch boundary: the `Symmetric` instantiation compiles to the
    /// pre-kind code (the mirror coefficient is the stored value itself and
    /// the paired load folds away), so the hot path is unchanged.
    fn multiply(&self, x: &[Val], y: &mut [Val], flat_buf: SharedBuf<'_>) {
        with_symmetry_ops!(self.kind, O => self.multiply_ops::<O>(x, y, flat_buf));
    }

    fn multiply_ops<O: SymmetryOps>(&self, x: &[Val], y: &mut [Val], flat_buf: SharedBuf<'_>) {
        let y_buf = SharedBuf::new(y);
        if let Some(schedule) = &self.plan.schedule {
            let Storage::Sss(sss) = &self.storage else {
                unreachable!("the race schedule supports the SSS format only")
            };
            self.multiply_race::<O>(sss, schedule, x, y_buf);
            return;
        }
        let parts: &[Range] = &self.plan.parts;
        let offsets = &self.plan.offsets;
        let n = self.n;
        let direct = self.strategy.direct_write();
        match &self.storage {
            Storage::Hybrid {
                sss,
                csx,
                use_stream,
            } => {
                assert!(
                    direct,
                    "the hybrid format supports the direct-write methods only"
                );
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    if part.is_empty() {
                        return;
                    }
                    let split = part.start as usize;
                    // SAFETY(cert: effective-region): region [off, off+split)
                    // is this thread's declared slice of the leased store.
                    let l = unsafe { flat_buf.range_mut(offsets[tid], offsets[tid] + split) };
                    // SAFETY(cert: disjoint-direct): direct writes stay in
                    // our own rows.
                    let my_y = unsafe { y_buf.range_mut(split, part.end as usize) };
                    if use_stream[tid] {
                        let chunk = &csx.chunks()[tid];
                        let dv = &csx.dvalues()[split..part.end as usize];
                        let xs = &x[split..part.end as usize];
                        for ((slot, &d), &xi) in my_y.iter_mut().zip(dv).zip(xs) {
                            *slot = d * xi;
                        }
                        spmv_sym_stream::<O>(
                            &chunk.stream,
                            chunk.paired_values(),
                            x,
                            my_y,
                            split,
                            l,
                        );
                    } else {
                        sss_multiply_direct::<O>(sss, part, x, my_y, l);
                    }
                });
            }
            Storage::Sss(sss) if !direct => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    // SAFETY(cert: effective-region): the naive layout gives
                    // this thread the private region [tid·n, (tid+1)·n).
                    let l = unsafe { flat_buf.range_mut(offsets[tid], offsets[tid] + n) };
                    let dv = sss.dvalues();
                    for r in part.start..part.end {
                        let (cols, vals, pair) = sss.row_with_paired(r);
                        let xr = x[r as usize];
                        // Same op order as the direct-write path: diagonal
                        // joins at the final fold, not the accumulator seed.
                        let mut acc = 0.0;
                        for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                            acc += v * x[c as usize];
                            l[c as usize] += O::transposed(v, u) * xr;
                        }
                        l[r as usize] += dv[r as usize] * xr + acc;
                    }
                });
            }
            Storage::Sss(sss) => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    if part.is_empty() {
                        return;
                    }
                    let split = part.start as usize;
                    // SAFETY(cert: effective-region): region [off, off+split)
                    // is this thread's declared slice of the leased store.
                    let l = unsafe { flat_buf.range_mut(offsets[tid], offsets[tid] + split) };
                    // SAFETY(cert: disjoint-direct): every direct write
                    // targets our own rows — the row r itself, and transposed
                    // targets c ∈ [split, r). Taking the range as a plain
                    // slice keeps the hot loop free of raw-pointer writes the
                    // compiler can't reason about.
                    let my_y = unsafe { y_buf.range_mut(split, part.end as usize) };
                    sss_multiply_direct::<O>(sss, part, x, my_y, l);
                });
            }
            Storage::CsxSym(m) if !direct => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    // SAFETY(cert: effective-region): the naive layout gives
                    // this thread the full-length private region.
                    let l = unsafe { flat_buf.range_mut(offsets[tid], offsets[tid] + n) };
                    let dv = m.dvalues();
                    for r in part.start..part.end {
                        l[r as usize] += dv[r as usize] * x[r as usize];
                    }
                    let chunk = &m.chunks()[tid];
                    spmv_sym_stream_local_only::<O>(&chunk.stream, chunk.paired_values(), x, l);
                });
            }
            Storage::CsxSym(m) => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    if part.is_empty() {
                        return;
                    }
                    let split = part.start as usize;
                    // SAFETY(cert: effective-region): region [off, off+split)
                    // is this thread's declared slice of the leased store.
                    let l = unsafe { flat_buf.range_mut(offsets[tid], offsets[tid] + split) };
                    // SAFETY(cert: disjoint-direct): the chunk's direct
                    // writes all land in our own rows (r itself and
                    // transposed c ∈ [split, r)); the csx-boundary check
                    // keeps encoded patterns from crossing the split.
                    let my_y = unsafe { y_buf.range_mut(split, part.end as usize) };
                    let dv = &m.dvalues()[split..part.end as usize];
                    let xs = &x[split..part.end as usize];
                    for ((slot, &d), &xi) in my_y.iter_mut().zip(dv).zip(xs) {
                        *slot = d * xi;
                    }
                    let chunk = &m.chunks()[tid];
                    spmv_sym_stream::<O>(&chunk.stream, chunk.paired_values(), x, my_y, split, l);
                });
            }
        }
    }

    fn reduce(&self, y: &mut [Val], flat_buf: SharedBuf<'_>) {
        self.reduce_lanes(y, flat_buf, 1);
    }

    /// The fold phase over lane-interleaved buffers: the strategy visits
    /// each conflicting row once and folds all `lanes` of its group — the
    /// Eq. 3–6 working-set win multiplied by `k`.
    fn reduce_lanes(&self, y: &mut [Val], flat_buf: SharedBuf<'_>, lanes: usize) {
        let job = ReduceJob {
            y: SharedBuf::new(y),
            locals: flat_buf,
            n: self.n,
            parts: &self.plan.parts,
            offsets: &self.plan.offsets,
            row_chunks: &self.plan.reduce_chunks,
            entries: &self.plan.index.entries,
            splits: &self.plan.index.splits,
            lanes,
        };
        self.ctx.with_pool(|pool| self.strategy.reduce(pool, &job));
    }

    /// The batched multiply phase: identical dispatch structure to
    /// [`SymSpmv::multiply`], with every buffer lane-interleaved and every
    /// storage arm delegating to its `_block` kernel. Per-thread regions
    /// are the scalar plan's regions scaled by `lanes` — exactly the
    /// scaling the lane-lifted certificate re-checks.
    fn multiply_block(&self, x: &VectorBlock, y: &mut VectorBlock, flat_buf: SharedBuf<'_>) {
        with_symmetry_ops!(self.kind, O => self.multiply_block_ops::<O>(x, y, flat_buf));
    }

    fn multiply_block_ops<O: SymmetryOps>(
        &self,
        x: &VectorBlock,
        y: &mut VectorBlock,
        flat_buf: SharedBuf<'_>,
    ) {
        let lanes = x.lanes();
        let y_buf = SharedBuf::new(y.as_mut_slice());
        let x = x.as_slice();
        if let Some(schedule) = &self.plan.schedule {
            let Storage::Sss(sss) = &self.storage else {
                unreachable!("the race schedule supports the SSS format only")
            };
            self.multiply_race_block::<O>(sss, schedule, lanes, x, y_buf);
            return;
        }
        let parts: &[Range] = &self.plan.parts;
        let offsets = &self.plan.offsets;
        let n = self.n;
        let direct = self.strategy.direct_write();
        match &self.storage {
            Storage::Hybrid {
                sss,
                csx,
                use_stream,
            } => {
                assert!(
                    direct,
                    "the hybrid format supports the direct-write methods only"
                );
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    if part.is_empty() {
                        return;
                    }
                    let split = part.start as usize;
                    // SAFETY(cert: lane-lifted): the scalar effective region
                    // [off, off+split) scales to lane groups without overlap.
                    let l = unsafe {
                        flat_buf.range_mut(offsets[tid] * lanes, (offsets[tid] + split) * lanes)
                    };
                    // SAFETY(cert: lane-lifted): direct lane groups stay in
                    // our own rows, scaled from the disjoint scalar tiling.
                    let my_y = unsafe { y_buf.range_mut(split * lanes, part.end as usize * lanes) };
                    if use_stream[tid] {
                        let chunk = &csx.chunks()[tid];
                        init_diag_block(csx.dvalues(), part, lanes, x, my_y);
                        spmm_sym_stream::<O>(
                            &chunk.stream,
                            chunk.paired_values(),
                            x,
                            my_y,
                            split,
                            l,
                            lanes,
                        );
                    } else {
                        sss_multiply_direct_block::<O>(sss, part, lanes, x, my_y, l);
                    }
                });
            }
            Storage::Sss(sss) if !direct => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    // SAFETY(cert: lane-lifted): the naive layout's private
                    // region [tid·n, (tid+1)·n) scales to lane groups.
                    let l = unsafe {
                        flat_buf.range_mut(offsets[tid] * lanes, (offsets[tid] + n) * lanes)
                    };
                    let dv = sss.dvalues();
                    for r in part.start..part.end {
                        let (cols, vals, pair) = sss.row_with_paired(r);
                        let ru = r as usize;
                        let xr = &x[ru * lanes..(ru + 1) * lanes];
                        let mut acc = [0.0; MAX_LANES];
                        for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                            let c = c as usize;
                            let t = O::transposed(v, u);
                            let xc = &x[c * lanes..(c + 1) * lanes];
                            let lt = &mut l[c * lanes..(c + 1) * lanes];
                            for j in 0..lanes {
                                acc[j] += v * xc[j];
                                lt[j] += t * xr[j];
                            }
                        }
                        let lr = &mut l[ru * lanes..(ru + 1) * lanes];
                        let d = dv[ru];
                        for j in 0..lanes {
                            lr[j] += d * xr[j] + acc[j];
                        }
                    }
                });
            }
            Storage::Sss(sss) => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    if part.is_empty() {
                        return;
                    }
                    let split = part.start as usize;
                    // SAFETY(cert: lane-lifted): the scalar effective region
                    // [off, off+split) scales to lane groups without overlap.
                    let l = unsafe {
                        flat_buf.range_mut(offsets[tid] * lanes, (offsets[tid] + split) * lanes)
                    };
                    // SAFETY(cert: lane-lifted): direct lane groups stay in
                    // our own rows, scaled from the disjoint scalar tiling.
                    let my_y = unsafe { y_buf.range_mut(split * lanes, part.end as usize * lanes) };
                    sss_multiply_direct_block::<O>(sss, part, lanes, x, my_y, l);
                });
            }
            Storage::CsxSym(m) if !direct => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    // SAFETY(cert: lane-lifted): the naive layout's private
                    // full-length region scales to lane groups.
                    let l = unsafe {
                        flat_buf.range_mut(offsets[tid] * lanes, (offsets[tid] + n) * lanes)
                    };
                    let dv = m.dvalues();
                    for r in part.start..part.end {
                        let ru = r as usize;
                        let d = dv[ru];
                        for j in 0..lanes {
                            l[ru * lanes + j] += d * x[ru * lanes + j];
                        }
                    }
                    let chunk = &m.chunks()[tid];
                    spmm_sym_stream_local_only::<O>(
                        &chunk.stream,
                        chunk.paired_values(),
                        x,
                        l,
                        lanes,
                    );
                });
            }
            Storage::CsxSym(m) => {
                self.ctx.run(&|tid| {
                    let part = parts[tid];
                    if part.is_empty() {
                        return;
                    }
                    let split = part.start as usize;
                    // SAFETY(cert: lane-lifted): the scalar effective region
                    // [off, off+split) scales to lane groups without overlap.
                    let l = unsafe {
                        flat_buf.range_mut(offsets[tid] * lanes, (offsets[tid] + split) * lanes)
                    };
                    // SAFETY(cert: lane-lifted): the chunk's direct lane
                    // groups all land in our own rows; the csx-boundary
                    // check keeps encoded patterns from crossing the split.
                    let my_y = unsafe { y_buf.range_mut(split * lanes, part.end as usize * lanes) };
                    let chunk = &m.chunks()[tid];
                    init_diag_block(m.dvalues(), part, lanes, x, my_y);
                    spmm_sym_stream::<O>(
                        &chunk.stream,
                        chunk.paired_values(),
                        x,
                        my_y,
                        split,
                        l,
                        lanes,
                    );
                });
            }
        }
    }

    /// The reduction-free scheduled multiply (ROADMAP item 3, RACE): a
    /// diagonal pre-pass over disjoint row chunks, then one barriered pool
    /// round per group. Within a group the certificate proves the write
    /// sets `{r} ∪ cols(r)` pairwise disjoint, so every thread scatters
    /// into `y` directly — zero local vectors, zero atomics; the reduce
    /// phase never runs (`local_len == 0`).
    fn multiply_race<O: SymmetryOps>(
        &self,
        sss: &SssMatrix,
        schedule: &GroupSchedule,
        x: &[Val],
        y_buf: SharedBuf<'_>,
    ) {
        let chunks: &[Range] = &self.plan.reduce_chunks;
        let dv = sss.dvalues();
        self.ctx.run(&|tid| {
            let chunk = chunks[tid];
            if chunk.is_empty() {
                return;
            }
            // SAFETY(cert: disjoint-direct): the row chunks tile 0..n, so
            // this diagonal pre-pass writes each y[r] exactly once.
            let my_y = unsafe { y_buf.range_mut(chunk.start as usize, chunk.end as usize) };
            let dvs = &dv[chunk.start as usize..chunk.end as usize];
            let xs = &x[chunk.start as usize..chunk.end as usize];
            for ((slot, &d), &xi) in my_y.iter_mut().zip(dvs).zip(xs) {
                *slot = d * xi;
            }
        });
        for (rows, parts) in schedule.groups.iter().zip(&schedule.group_parts) {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                for &r in &rows[part.start as usize..part.end as usize] {
                    let (cols, vals, pair) = sss.row_with_paired(r);
                    let xr = x[r as usize];
                    let mut acc = 0.0;
                    for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                        acc += v * x[c as usize];
                        // SAFETY(cert: color-class): rows of one group never
                        // share a write target, and the barrier between
                        // group rounds orders cross-group writes.
                        unsafe { y_buf.add(c as usize, O::transposed(v, u) * xr) };
                    }
                    // SAFETY(cert: color-class): y[r] is claimed by row r
                    // alone within this group.
                    unsafe { y_buf.add(r as usize, acc) };
                }
            });
        }
    }

    /// The batched twin of [`SymSpmv::multiply_race`]: identical traversal
    /// with lane-interleaved buffers and the lanes innermost, so every lane
    /// computes the scalar schedule's exact float sequence.
    fn multiply_race_block<O: SymmetryOps>(
        &self,
        sss: &SssMatrix,
        schedule: &GroupSchedule,
        lanes: usize,
        x: &[Val],
        y_buf: SharedBuf<'_>,
    ) {
        let chunks: &[Range] = &self.plan.reduce_chunks;
        let dv = sss.dvalues();
        self.ctx.run(&|tid| {
            let chunk = chunks[tid];
            if chunk.is_empty() {
                return;
            }
            let (lo, hi) = (chunk.start as usize * lanes, chunk.end as usize * lanes);
            // SAFETY(cert: lane-lifted): the disjoint row chunks scale to
            // disjoint lane groups.
            let my_y = unsafe { y_buf.range_mut(lo, hi) };
            let split = chunk.start as usize;
            for r in split..chunk.end as usize {
                let d = dv[r];
                let xr = &x[r * lanes..(r + 1) * lanes];
                let yr = &mut my_y[(r - split) * lanes..(r - split + 1) * lanes];
                for j in 0..lanes {
                    yr[j] = d * xr[j];
                }
            }
        });
        for (rows, parts) in schedule.groups.iter().zip(&schedule.group_parts) {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                for &r in &rows[part.start as usize..part.end as usize] {
                    let (cols, vals, pair) = sss.row_with_paired(r);
                    let ru = r as usize;
                    let xr = &x[ru * lanes..(ru + 1) * lanes];
                    let mut acc = [0.0; MAX_LANES];
                    for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                        let c = c as usize;
                        let t = O::transposed(v, u);
                        let xc = &x[c * lanes..(c + 1) * lanes];
                        for j in 0..lanes {
                            acc[j] += v * xc[j];
                            // SAFETY(cert: color-class): lane groups of the
                            // group's pairwise-disjoint targets never
                            // overlap within a group round.
                            unsafe { y_buf.add(c * lanes + j, t * xr[j]) };
                        }
                    }
                    for (j, a) in acc.iter().enumerate().take(lanes) {
                        // SAFETY(cert: color-class): y[r,·] is claimed by
                        // row r alone within this group.
                        unsafe { y_buf.add(ru * lanes + j, *a) };
                    }
                }
            });
        }
    }

    /// Whether the reduce phase has any work at all: with one thread (or a
    /// degenerate partition) the direct-write layouts declare an empty
    /// conflict region, and an index-consuming strategy with zero conflict
    /// entries folds nothing — either way the multiply phase already left
    /// `y` complete and the leased store untouched (all-zero), so the
    /// reduction round is skipped entirely.
    fn reduce_has_work(&self) -> bool {
        if self.plan.local_len == 0 {
            return false;
        }
        !(self.strategy.needs_index() && self.plan.index.entries.is_empty())
    }
}

/// The direct-write SSS multiply body for one partition: row results and
/// in-partition transposed writes go to `my_y` (the partition's slice of
/// the output vector, starting at the partition boundary), conflicting
/// transposed writes to the thread's effective-region `local`.
///
/// Monomorphized per symmetry kind: the mirror coefficient is
/// `O::transposed(v, u)` with `u` the paired upper value (aliasing `v` for
/// the numeric kinds, so the `Symmetric` instantiation is the pre-kind
/// loop, bit for bit).
fn sss_multiply_direct<O: SymmetryOps>(
    sss: &SssMatrix,
    part: Range,
    x: &[Val],
    my_y: &mut [Val],
    local: &mut [Val],
) {
    let split = part.start as usize;
    let dv = sss.dvalues();
    for r in part.start..part.end {
        let (cols, vals, pair) = sss.row_with_paired(r);
        let xr = x[r as usize];
        // The accumulator starts at zero and the diagonal term joins at the
        // final write — the exact op order of the serial reference
        // (`SssMatrix::spmv`), so a single-thread direct-write run is
        // bit-identical to it (the conformance oracle's exactness class).
        let mut acc = 0.0;
        for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
            let c = c as usize;
            acc += v * x[c];
            let t = O::transposed(v, u);
            if c >= split {
                my_y[c - split] += t * xr;
            } else {
                local[c] += t * xr;
            }
        }
        // Assignment is sound: this thread's earlier transposed writes only
        // target rows below r.
        my_y[r as usize - split] = dv[r as usize] * xr + acc;
    }
}

/// The batched (`lanes` right-hand sides) twin of [`sss_multiply_direct`]:
/// same traversal, same per-lane op order, with `x`/`my_y`/`local` holding
/// lane-interleaved groups. One pass over the matrix updates all lanes, so
/// the matrix traffic is amortized `lanes`-fold while every lane computes
/// the scalar kernel's exact float sequence.
fn sss_multiply_direct_block<O: SymmetryOps>(
    sss: &SssMatrix,
    part: Range,
    lanes: usize,
    x: &[Val],
    my_y: &mut [Val],
    local: &mut [Val],
) {
    let split = part.start as usize;
    let dv = sss.dvalues();
    for r in part.start..part.end {
        let (cols, vals, pair) = sss.row_with_paired(r);
        let ru = r as usize;
        let xr = &x[ru * lanes..(ru + 1) * lanes];
        let mut acc = [0.0; MAX_LANES];
        for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
            let c = c as usize;
            let t = O::transposed(v, u);
            let xc = &x[c * lanes..(c + 1) * lanes];
            let target = if c >= split {
                &mut my_y[(c - split) * lanes..(c - split + 1) * lanes]
            } else {
                &mut local[c * lanes..(c + 1) * lanes]
            };
            for j in 0..lanes {
                acc[j] += v * xc[j];
                target[j] += t * xr[j];
            }
        }
        let yr = &mut my_y[(ru - split) * lanes..(ru - split + 1) * lanes];
        let d = dv[ru];
        for j in 0..lanes {
            yr[j] = d * xr[j] + acc[j];
        }
    }
}

/// Initializes a partition's slice of the block output with the diagonal
/// term `y[r,·] = d_r · x[r,·]` — the batched twin of the scalar stream
/// kernels' diagonal pre-pass.
fn init_diag_block(dvalues: &[Val], part: Range, lanes: usize, x: &[Val], my_y: &mut [Val]) {
    let split = part.start as usize;
    for r in split..part.end as usize {
        let d = dvalues[r];
        let xr = &x[r * lanes..(r + 1) * lanes];
        let yr = &mut my_y[(r - split) * lanes..(r - split + 1) * lanes];
        for j in 0..lanes {
            yr[j] = d * xr[j];
        }
    }
}

impl ParallelSpmv for SymSpmv {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);

        // Dispatch gate: the memoized certificate must describe exactly
        // this configuration. Catches a plan reused across a renumbering
        // or a thread-count change (debug builds only; the re-fingerprint
        // walks the structure).
        #[cfg(debug_assertions)]
        if let Storage::Sss(sss) | Storage::Hybrid { sss, .. } = &self.storage {
            if let Err(e) = self.plan.cert.validate_for(
                sss.fingerprint(),
                self.ctx.nthreads(),
                "sym-sss",
                &self.plan.cert.strategy,
            ) {
                unreachable!("dispatching with a stale race certificate: {e}");
            }
        }

        // The lease must borrow the local Arc, not `self.ctx`, so the
        // timed phases below can still borrow `self`.
        let ctx = Arc::clone(&self.ctx);
        let mut locals = ctx.lease(self.plan.local_len);
        let flat_buf = SharedBuf::new(&mut locals);

        let mut multiply = std::mem::take(&mut self.times.multiply);
        time_into(&mut multiply, || self.multiply(x, y, flat_buf));
        self.times.multiply = multiply;

        if self.reduce_has_work() {
            let mut reduce = std::mem::take(&mut self.times.reduce);
            // The strategy re-zeroes every local element the multiply phase
            // wrote, which is exactly what the lease contract requires.
            time_into(&mut reduce, || self.reduce(y, flat_buf));
            self.times.reduce = reduce;
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn nnz_full(&self) -> usize {
        self.nnz_full
    }

    fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        let fmt = match self.storage {
            Storage::Sss(_) => "sss",
            Storage::CsxSym(_) => "csxsym",
            Storage::Hybrid { .. } => "hybrid",
        };
        match (fmt, self.strategy.name()) {
            ("sss", "naive") => Cow::Borrowed("sss-naive"),
            ("sss", "eff") => Cow::Borrowed("sss-eff"),
            ("sss", "idx") => Cow::Borrowed("sss-idx"),
            ("sss", "race") => Cow::Borrowed("sss-race"),
            ("csxsym", "naive") => Cow::Borrowed("csxsym-naive"),
            ("csxsym", "eff") => Cow::Borrowed("csxsym-eff"),
            ("csxsym", "idx") => Cow::Borrowed("csxsym-idx"),
            ("hybrid", "eff") => Cow::Borrowed("hybrid-eff"),
            ("hybrid", "idx") => Cow::Borrowed("hybrid-idx"),
            (fmt, tag) => Cow::Owned(format!("{fmt}-{tag}")),
        }
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

impl ParallelSpmm for SymSpmv {
    fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) {
        assert_eq!(x.n(), self.n, "x block dimension mismatch");
        assert_eq!(y.n(), self.n, "y block dimension mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let lanes = x.lanes();

        // Mint (or fetch) the lane-lifted block-write certificate — every
        // SpMM dispatch is covered by a certificate proving the scaled
        // layout inherits the scalar plan's disjointness.
        let cert = self.obtain_block_certificate(lanes);
        debug_assert!(cert.proves("lane-lifted"));
        #[cfg(debug_assertions)]
        if let Storage::Sss(sss) | Storage::Hybrid { sss, .. } = &self.storage {
            if let Err(e) = cert.validate_for(
                sss.fingerprint(),
                self.ctx.nthreads(),
                "sym-sss",
                &self.plan.cert.strategy,
            ) {
                unreachable!("dispatching SpMM with a stale block certificate: {e}");
            }
        }

        let ctx = Arc::clone(&self.ctx);
        let mut locals = ctx.lease(self.plan.local_len * lanes);
        let flat_buf = SharedBuf::new(&mut locals);

        let mut multiply = std::mem::take(&mut self.times.multiply);
        time_into(&mut multiply, || self.multiply_block(x, y, flat_buf));
        self.times.multiply = multiply;

        if self.reduce_has_work() {
            let mut reduce = std::mem::take(&mut self.times.reduce);
            time_into(&mut reduce, || {
                self.reduce_lanes(y.as_mut_slice(), flat_buf, lanes)
            });
            self.times.reduce = reduce;
        }
    }

    fn spmm_context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

impl crate::traits::SymbolicDescribe for SymSpmv {
    fn structure_facts(&self) -> Option<symspmv_verify::StructureFacts> {
        match &self.storage {
            Storage::Sss(sss) | Storage::Hybrid { sss, .. } => {
                Some(symspmv_verify::StructureFacts::of(sss))
            }
            // The pure stream encoding discards the row-wise SSS structure
            // the facts are distilled from; its boundary rule is certified
            // by the CSX checker instead.
            Storage::CsxSym(_) => None,
        }
    }

    fn recertify_symbolic(
        &self,
    ) -> Option<Result<symspmv_verify::RaceCertificate, symspmv_verify::VerifyError>> {
        let facts = self.structure_facts()?;
        if let Some(schedule) = &self.plan.schedule {
            let Storage::Sss(sss) = &self.storage else {
                unreachable!("the race schedule supports the SSS format only")
            };
            return Some(
                symspmv_verify::ColoringFacts::establish(
                    sss,
                    &schedule.levels,
                    &schedule.subcolors,
                )
                .and_then(|coloring| {
                    symspmv_verify::certify_race_symbolic(
                        &facts,
                        &coloring,
                        &schedule.group_of,
                        &schedule.groups,
                        &schedule.group_parts,
                        self.ctx.nthreads(),
                    )
                }),
            );
        }
        let kind = symspmv_verify::SymStrategyKind::from_tag(&self.plan.cert.strategy)?;
        let plan_ref = symspmv_verify::SymPlanRef {
            parts: &self.plan.parts,
            offsets: &self.plan.offsets,
            local_len: self.plan.local_len,
            strategy: kind,
            entries: &self.plan.index.entries,
            splits: &self.plan.index.splits,
            row_chunks: &self.plan.reduce_chunks,
        };
        Some(symspmv_verify::certify_sym_symbolic(
            &facts,
            &plan_ref,
            &self.plan.index.conflicts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    fn csx_cfg() -> DetectConfig {
        DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        }
    }

    fn all_engines(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Vec<SymSpmv> {
        let mut v = Vec::new();
        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            v.push(SymSpmv::from_coo(coo, ctx, method, SymFormat::Sss).unwrap());
            v.push(SymSpmv::from_coo(coo, ctx, method, SymFormat::CsxSym(csx_cfg())).unwrap());
        }
        // The scheduled strategy supports SSS only.
        v.push(SymSpmv::from_coo(coo, ctx, ReductionMethod::Race, SymFormat::Sss).unwrap());
        v
    }

    #[test]
    fn all_methods_match_serial_sss() {
        let coo = symspmv_sparse::gen::banded_random(400, 30, 10.0, 42);
        let n = 400;
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(n, 5);
        let mut y_ref = vec![0.0; n];
        sss.spmv(&x, &mut y_ref);

        for p in [1usize, 2, 3, 7, 8] {
            let ctx = ExecutionContext::new(p);
            for mut eng in all_engines(&coo, &ctx) {
                let mut y = vec![f64::NAN; n];
                eng.spmv(&x, &mut y);
                assert_vec_close(&y, &y_ref, 1e-12);
                // Second call must give identical results (locals re-zeroed).
                let mut y2 = vec![f64::NAN; n];
                eng.spmv(&x, &mut y2);
                assert_vec_close(&y2, &y_ref, 1e-12);
            }
        }
    }

    #[test]
    fn high_bandwidth_matrix_all_methods() {
        // Scattered entries exercise the conflict-heavy path.
        let coo = symspmv_sparse::gen::mixed_bandwidth(500, 8.0, 0.3, 5, 77);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(500, 9);
        let mut y_ref = vec![0.0; 500];
        sss.spmv(&x, &mut y_ref);
        let ctx = ExecutionContext::new(6);
        for mut eng in all_engines(&coo, &ctx) {
            let mut y = vec![0.0; 500];
            eng.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn spmm_lanes_bitwise_match_spmv_all_engines() {
        let coo = symspmv_sparse::gen::mixed_bandwidth(350, 7.0, 0.25, 4, 33);
        for p in [1usize, 3, 8] {
            let ctx = ExecutionContext::new(p);
            for mut eng in all_engines(&coo, &ctx) {
                for lanes in [1usize, 2, 4] {
                    let x = VectorBlock::seeded(350, lanes, 60);
                    let mut y = VectorBlock::zeros(350, lanes);
                    eng.spmm(&x, &mut y);
                    let cert = eng.block_certificate(lanes).unwrap();
                    assert!(cert.proves("lane-lifted"));
                    assert_eq!(cert.lanes, lanes);
                    for j in 0..lanes {
                        let mut yj = vec![0.0; 350];
                        eng.spmv(&x.lane(j), &mut yj);
                        assert_eq!(
                            y.lane(j).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            yj.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            "{} p={p} lanes={lanes}: lane {j} not bit-identical",
                            eng.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spmm_hybrid_format_matches_spmv() {
        let coo = symspmv_sparse::gen::block_structural(100, 3, 10.0, 15, 9);
        let ctx = ExecutionContext::new(4);
        let mut eng = SymSpmv::from_coo(
            &coo,
            &ctx,
            ReductionMethod::Indexing,
            SymFormat::Hybrid {
                csx: csx_cfg(),
                min_coverage: 0.0,
            },
        )
        .unwrap();
        let n = eng.n();
        let x = VectorBlock::seeded(n, 8, 3);
        let mut y = VectorBlock::zeros(n, 8);
        eng.spmm(&x, &mut y);
        for j in 0..8 {
            let mut yj = vec![0.0; n];
            eng.spmv(&x.lane(j), &mut yj);
            assert_eq!(
                y.lane(j).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                yj.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "hybrid lane {j} not bit-identical"
            );
        }
    }

    #[test]
    fn block_matrix_csx_sym_compresses_beyond_sss() {
        let coo = symspmv_sparse::gen::block_structural(120, 3, 12.0, 20, 3);
        let ctx = ExecutionContext::new(4);
        let sss_eng =
            SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let csx_eng = SymSpmv::from_coo(
            &coo,
            &ctx,
            ReductionMethod::Indexing,
            SymFormat::CsxSym(csx_cfg()),
        )
        .unwrap();
        assert!(
            csx_eng.size_bytes() < sss_eng.size_bytes(),
            "CSX-Sym {} vs SSS {}",
            csx_eng.size_bytes(),
            sss_eng.size_bytes()
        );
        assert!(csx_eng.csx_coverage() > 0.5);
    }

    #[test]
    fn phase_times_recorded() {
        let coo = symspmv_sparse::gen::laplacian_2d(30, 30);
        let ctx = ExecutionContext::new(4);
        let mut eng =
            SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let x = seeded_vector(900, 1);
        let mut y = vec![0.0; 900];
        eng.spmv(&x, &mut y);
        let t = eng.times();
        assert!(t.multiply > std::time::Duration::ZERO);
        eng.reset_times();
        assert_eq!(eng.times().multiply, std::time::Duration::ZERO);
    }

    #[test]
    fn names_identify_configuration() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(2);
        let e1 = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Naive, SymFormat::Sss).unwrap();
        assert_eq!(e1.name(), "sss-naive");
        assert!(
            matches!(e1.name(), Cow::Borrowed(_)),
            "built-in names must not allocate"
        );
        let e2 = SymSpmv::from_coo(
            &coo,
            &ctx,
            ReductionMethod::Indexing,
            SymFormat::CsxSym(csx_cfg()),
        )
        .unwrap();
        assert_eq!(e2.name(), "csxsym-idx");
    }

    #[test]
    fn asymmetric_input_rejected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        let ctx = ExecutionContext::new(2);
        assert!(SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Naive, SymFormat::Sss).is_err());
    }

    #[test]
    fn indexing_working_set_smaller_than_effective() {
        // The core claim of §III-C: the index touches far fewer elements
        // than the effective regions contain.
        let coo = symspmv_sparse::gen::banded_random(2000, 50, 12.0, 8);
        let ctx = ExecutionContext::new(8);
        let eng = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let ci = eng.conflict_index();
        assert!(
            ci.entries.len() < ci.effective_region_len / 2,
            "index {} vs effective region {}",
            ci.entries.len(),
            ci.effective_region_len
        );
        assert!(ci.density() < 0.5);
    }

    #[test]
    fn identity_matrix_edge_case() {
        let mut coo = CooMatrix::new(16, 16);
        for i in 0..16 {
            coo.push(i, i, 3.0);
        }
        let ctx = ExecutionContext::new(4);
        for mut eng in all_engines(&coo, &ctx) {
            let x = seeded_vector(16, 2);
            let mut y = vec![0.0; 16];
            eng.spmv(&x, &mut y);
            let expect: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
            assert_vec_close(&y, &expect, 1e-12);
        }
    }

    #[test]
    fn strategies_resolved_from_registry() {
        // A custom strategy registered with the context is reachable by
        // name and drives the kernel end to end.
        struct Renamed(symspmv_runtime::reduction::NaiveReduction);
        impl ReductionStrategy for Renamed {
            fn name(&self) -> &'static str {
                "naive-v2"
            }
            fn direct_write(&self) -> bool {
                self.0.direct_write()
            }
            fn layout(&self, n: usize, parts: &[Range]) -> symspmv_runtime::reduction::LocalLayout {
                self.0.layout(n, parts)
            }
            fn reduce(&self, pool: &mut symspmv_runtime::WorkerPool, job: &ReduceJob<'_>) {
                self.0.reduce(pool, job)
            }
        }

        let coo = symspmv_sparse::gen::banded_random(200, 12, 6.0, 11);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(200, 3);
        let mut y_ref = vec![0.0; 200];
        sss.spmv(&x, &mut y_ref);

        let ctx = ExecutionContext::new(3);
        assert!(
            SymSpmv::from_sss_named(sss.clone(), &ctx, "naive-v2", SymFormat::Sss).is_none(),
            "unregistered names must be rejected"
        );
        ctx.register_reduction(Arc::new(Renamed(
            symspmv_runtime::reduction::NaiveReduction,
        )));
        let mut eng = SymSpmv::from_sss_named(sss, &ctx, "naive-v2", SymFormat::Sss).unwrap();
        assert_eq!(eng.name(), "sss-naive-v2");
        assert_eq!(eng.method(), ReductionMethod::Naive);
        let mut y = vec![0.0; 200];
        eng.spmv(&x, &mut y);
        assert_vec_close(&y, &y_ref, 1e-12);
    }
}

#[cfg(test)]
mod error_taxonomy_tests {
    use super::*;
    use symspmv_sparse::dense::seeded_vector;

    // SymSpmv has no Debug impl, so Result::unwrap_err is unavailable.
    fn expect_err<T>(res: Result<T, SymSpmvError>) -> SymSpmvError {
        match res {
            Err(e) => e,
            Ok(_) => panic!("construction must fail"),
        }
    }

    #[test]
    fn try_from_coo_rejects_nonfinite_and_asymmetric() {
        let ctx = ExecutionContext::new(2);
        let mut bad = CooMatrix::new(2, 2);
        bad.push(0, 0, f64::NAN);
        let err = expect_err(SymSpmv::try_from_coo(
            &bad,
            &ctx,
            ReductionMethod::Naive,
            SymFormat::Sss,
        ));
        assert!(
            matches!(
                err,
                SymSpmvError::InvalidStructure(SparseError::NonFiniteValue { .. })
            ),
            "{err:?}"
        );

        let mut asym = CooMatrix::new(2, 2);
        asym.push(0, 1, 1.0);
        let err = expect_err(SymSpmv::try_from_coo(
            &asym,
            &ctx,
            ReductionMethod::Naive,
            SymFormat::Sss,
        ));
        assert!(matches!(err, SymSpmvError::InvalidStructure(_)), "{err:?}");
    }

    #[test]
    fn try_from_sss_named_reports_unknown_strategy() {
        let coo = symspmv_sparse::gen::laplacian_2d(6, 6);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let ctx = ExecutionContext::new(2);
        let err = expect_err(SymSpmv::try_from_sss_named(
            sss.clone(),
            &ctx,
            "no-such",
            SymFormat::Sss,
        ));
        assert_eq!(
            err,
            SymSpmvError::UnknownStrategy {
                name: "no-such".into()
            }
        );
        assert!(SymSpmv::try_from_sss_named(sss, &ctx, "idx", SymFormat::Sss).is_ok());
    }

    #[test]
    fn injected_multiply_panic_surfaces_as_worker_panicked() {
        let coo = symspmv_sparse::gen::banded_random(300, 20, 8.0, 17);
        let ctx = ExecutionContext::new(4);
        let mut eng =
            SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let x = seeded_vector(300, 3);
        let mut y = vec![0.0; 300];
        // Warm up so the arena holds the local-vector buffer (no first-touch
        // rounds interleave with the armed round below).
        eng.try_spmv(&x, &mut y).unwrap();

        // Next pool round is the multiply phase of the next spmv.
        ctx.fault_plan().arm_worker_panic(2, 0);
        let err = eng.try_spmv(&x, &mut y).unwrap_err();
        assert!(
            matches!(err, SymSpmvError::WorkerPanicked { tid: 2, .. }),
            "{err:?}"
        );
        assert!(ctx.arena_all_free_zero(), "arena dirty after worker death");

        // The same engine and context recover and compute correctly.
        let mut y_after = vec![0.0; 300];
        eng.try_spmv(&x, &mut y_after).unwrap();
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let mut y_ref = vec![0.0; 300];
        sss.spmv(&x, &mut y_ref);
        symspmv_sparse::dense::assert_vec_close(&y_after, &y_ref, 1e-12);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};
    use symspmv_sparse::CooMatrix;

    fn methods() -> [ReductionMethod; 3] {
        [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ]
    }

    #[test]
    fn far_more_threads_than_rows() {
        // Empty trailing partitions must be handled by every method and
        // both formats.
        let coo = symspmv_sparse::gen::laplacian_2d(3, 3); // N = 9
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(9, 1);
        let mut y_ref = vec![0.0; 9];
        sss.spmv(&x, &mut y_ref);
        let dcfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let ctx = ExecutionContext::new(32);
        for method in methods() {
            for format in [SymFormat::Sss, SymFormat::CsxSym(dcfg.clone())] {
                let mut eng = SymSpmv::from_coo(&coo, &ctx, method, format).unwrap();
                let mut y = vec![f64::NAN; 9];
                eng.spmv(&x, &mut y);
                assert_vec_close(&y, &y_ref, 1e-12);
            }
        }
    }

    #[test]
    fn single_thread_skips_reduction_phase() {
        // p = 1: the conflict region is empty (no row can conflict with a
        // partition that owns everything), so the direct-write methods must
        // run the multiply round only — no reduction round, no reduce time.
        let coo = symspmv_sparse::gen::banded_random(200, 12, 6.0, 21);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(200, 7);
        let mut y_ref = vec![0.0; 200];
        sss.spmv(&x, &mut y_ref);

        for method in [ReductionMethod::EffectiveRanges, ReductionMethod::Indexing] {
            let ctx = ExecutionContext::new(1);
            let mut eng = SymSpmv::from_coo(&coo, &ctx, method, SymFormat::Sss).unwrap();
            assert_eq!(eng.local_len(), 0, "p=1 must declare no conflict region");
            assert!(eng.conflict_index().entries.is_empty());

            let rounds_before = ctx.pool_rounds();
            let mut y = vec![f64::NAN; 200];
            eng.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
            assert_eq!(
                ctx.pool_rounds() - rounds_before,
                1,
                "{method:?}: p=1 spmv must dispatch the multiply round only"
            );
            assert_eq!(eng.times().reduce, std::time::Duration::ZERO);
        }

        // The naive method still needs its fold with p = 1 — everything
        // goes through the local vector.
        let ctx = ExecutionContext::new(1);
        let mut eng =
            SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Naive, SymFormat::Sss).unwrap();
        assert_eq!(eng.local_len(), 200);
        let rounds_before = ctx.pool_rounds();
        let mut y = vec![f64::NAN; 200];
        eng.spmv(&x, &mut y);
        assert_vec_close(&y, &y_ref, 1e-12);
        assert!(ctx.pool_rounds() - rounds_before >= 2);
    }

    #[test]
    fn one_by_one_matrix() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 5.0);
        let ctx = ExecutionContext::new(2);
        for method in methods() {
            let mut eng = SymSpmv::from_coo(&coo, &ctx, method, SymFormat::Sss).unwrap();
            let mut y = vec![0.0];
            eng.spmv(&[3.0], &mut y);
            assert_eq!(y, vec![15.0]);
        }
    }

    #[test]
    fn dense_column_zero_matrix() {
        // Every row couples to row 0: thread 1..p's conflicts all collapse
        // to a single idx, stressing the split-independence logic.
        let n = 64u32;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        for r in 1..n {
            coo.push(r, 0, -1.0);
            coo.push(0, r, -1.0);
        }
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(n as usize, 2);
        let mut y_ref = vec![0.0; n as usize];
        sss.spmv(&x, &mut y_ref);
        for p in [2usize, 4, 8] {
            let ctx = ExecutionContext::new(p);
            let mut eng =
                SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
            // Index has exactly p-1 entries, all with idx 0 (minus thread 0).
            let nonempty = eng
                .partitions()
                .iter()
                .skip(1)
                .filter(|r| !r.is_empty())
                .count();
            assert_eq!(eng.conflict_index().entries.len(), nonempty);
            let mut y = vec![0.0; n as usize];
            eng.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn working_set_allocation_matches_method() {
        let coo = symspmv_sparse::gen::laplacian_2d(16, 16); // N = 256
        let ctx = ExecutionContext::new(4);
        let naive = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Naive, SymFormat::Sss).unwrap();
        let idx = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        // Naive leases p*N local elements; indexing only Σ start_i.
        assert_eq!(naive.local_len(), 4 * 256);
        assert!(
            idx.local_len() < 3 * 256,
            "effective regions are Σ start_i < (p-1)N"
        );
    }

    #[test]
    fn race_schedule_is_reduction_free() {
        // The tentpole property of the RACE scheme: zero local vectors,
        // zero conflict index, no reduce round — just the diagonal
        // pre-pass plus one barriered pool round per color group.
        let coo = symspmv_sparse::gen::laplacian_2d(16, 16); // N = 256
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(256, 11);
        let mut y_ref = vec![0.0; 256];
        sss.spmv(&x, &mut y_ref);

        let ctx = ExecutionContext::new(4);
        let mut eng = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Race, SymFormat::Sss).unwrap();
        assert_eq!(eng.name(), "sss-race");
        assert!(
            matches!(eng.name(), Cow::Borrowed(_)),
            "built-in names must not allocate"
        );
        assert_eq!(eng.method(), ReductionMethod::Race);
        assert_eq!(eng.local_len(), 0, "race leases no local vectors");
        assert!(eng.conflict_index().entries.is_empty());

        let groups = eng.plan.schedule.as_ref().unwrap().groups.len();
        assert!(groups >= 2, "a 2-D Laplacian needs at least two colors");

        let rounds_before = ctx.pool_rounds();
        let mut y = vec![f64::NAN; 256];
        eng.spmv(&x, &mut y);
        assert_vec_close(&y, &y_ref, 1e-12);
        assert_eq!(
            ctx.pool_rounds() - rounds_before,
            1 + groups,
            "one diagonal pre-pass plus one barriered round per group"
        );
        assert_eq!(eng.times().reduce, std::time::Duration::ZERO);
    }

    #[test]
    fn race_certificate_carries_coloring_proof() {
        let coo = symspmv_sparse::gen::banded_random(300, 9, 5.0, 3);
        let ctx = ExecutionContext::new(3);
        let eng = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Race, SymFormat::Sss).unwrap();
        let cert = eng.certificate().clone();
        assert_eq!(cert.strategy, "race");
        assert_eq!(cert.local_elems, 0);
        assert!(cert.proves("color-class"));
        assert!(cert.proves("disjoint-direct"));
        assert!(matches!(
            cert.proof,
            symspmv_verify::ProofForm::ColoringDisjoint { reach: 2, .. }
        ));
        // The symbolic re-derivation must reproduce the plan-time
        // certificate bit-for-bit.
        use crate::traits::SymbolicDescribe;
        let sym = eng.recertify_symbolic().unwrap().unwrap();
        assert_eq!(sym, cert);
    }

    #[test]
    #[should_panic(expected = "the race schedule supports the SSS format only")]
    fn race_rejects_csxsym() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(2);
        let _ = SymSpmv::from_coo(
            &coo,
            &ctx,
            ReductionMethod::Race,
            SymFormat::CsxSym(DetectConfig {
                min_coverage: 0.0,
                ..DetectConfig::default()
            }),
        );
    }
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    fn hybrid(threshold: f64) -> SymFormat {
        SymFormat::Hybrid {
            csx: DetectConfig {
                min_coverage: 0.0,
                ..DetectConfig::default()
            },
            min_coverage: threshold,
        }
    }

    #[test]
    fn hybrid_matches_serial_on_mixed_structure() {
        // Half the rows blocky (high coverage), half scattered: chunks
        // should split between stream and SSS paths.
        let blocky = symspmv_sparse::gen::block_structural(60, 3, 8.0, 12, 2);
        let nb = blocky.nrows();
        let n = nb + 180;
        let mut coo = symspmv_sparse::CooMatrix::new(n, n);
        for (r, c, v) in blocky.iter() {
            coo.push(r, c, v);
        }
        // Scattered tail coupled to itself.
        for i in nb..n {
            coo.push(i, i, 5.0);
            if i >= nb + 7 {
                coo.push(i, i - 7, -0.5);
                coo.push(i - 7, i, -0.5);
            }
        }
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(n as usize, 4);
        let mut y_ref = vec![0.0; n as usize];
        sss.spmv(&x, &mut y_ref);

        let ctx = ExecutionContext::new(4);
        for method in [ReductionMethod::EffectiveRanges, ReductionMethod::Indexing] {
            let mut eng = SymSpmv::from_coo(&coo, &ctx, method, hybrid(0.5)).unwrap();
            let streamed = eng.hybrid_streamed_chunks().unwrap().to_vec();
            assert!(streamed.iter().any(|&b| b), "blocky chunks should stream");
            let mut y = vec![f64::NAN; n as usize];
            eng.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn hybrid_thresholds_select_paths() {
        let coo = symspmv_sparse::gen::block_structural(80, 3, 8.0, 16, 3);
        let ctx = ExecutionContext::new(3);
        // Threshold 0: everything streams. Threshold > 1: nothing does.
        let all = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, hybrid(0.0)).unwrap();
        assert!(all.hybrid_streamed_chunks().unwrap().iter().all(|&b| b));
        let none = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, hybrid(1.1)).unwrap();
        assert!(none.hybrid_streamed_chunks().unwrap().iter().all(|&b| !b));
        assert_eq!(all.name(), "hybrid-idx");
        // Size: the no-stream hybrid approximates the SSS size.
        let sss = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let ratio = none.size_bytes() as f64 / sss.size_bytes() as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "direct-write methods only")]
    fn hybrid_rejects_naive() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(2);
        let _ = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Naive, hybrid(0.5));
    }
}
