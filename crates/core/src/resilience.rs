//! Bounded retry and degraded-mode serving.
//!
//! The supervision layer (`symspmv-runtime`) turns faults into *typed
//! errors*; this module turns typed errors into *availability*:
//!
//! * [`RetryPolicy`] — bounded attempts with deterministic decorrelated-
//!   jitter backoff, retrying only failures that a fresh attempt can
//!   plausibly fix (a worker panic — the supervisor already respawned the
//!   worker). Deadline expiry and cancellation are final by definition,
//!   and input/numerical errors would fail identically again.
//! * [`FallbackKernel`] — the serial SSS reference path as an always-
//!   available kernel of last resort. It never touches the worker pool, so
//!   it serves even while a wedged round is draining, and it is
//!   bit-identical to the conformance oracle's serial reference.
//! * [`Resilient`] — the composition: a parallel kernel wrapped with a
//!   retry policy and a fallback. Each request reports *how* it was served
//!   ([`Served`]), so a chaos harness can audit availability while the
//!   bench ledger tracks how often the fast path was lost.

use crate::error::SymSpmvError;
use crate::traits::{ParallelSpmmExt, ParallelSpmv};
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Duration;
use symspmv_runtime::timing::Stopwatch;
use symspmv_runtime::{ExecutionContext, ParallelSpmm, PhaseTimes, PoolHealth, Supervision};
use symspmv_sparse::block::VectorBlock;
use symspmv_sparse::rng::StdRng;
use symspmv_sparse::{CooMatrix, SparseError, SssMatrix, SymmetryKind, Val};

/// Bounded retry with deterministic decorrelated-jitter backoff.
///
/// Sleeps between attempts follow the decorrelated-jitter rule
/// `sleep = min(cap, uniform(base, prev · 3))`, driven by a seeded
/// [`StdRng`] so a test (or a chaos replay) observes the exact same sleep
/// schedule every run.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_attempts: usize,
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms base backoff capped at 50 ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts (clamped to ≥ 1) and
    /// the default backoff.
    pub fn new(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Replaces the backoff bounds: first sleep starts at `base`, every
    /// sleep is capped at `cap`.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.base = base;
        self.cap = cap.max(base);
        self
    }

    /// Replaces the jitter seed, making two policies' sleep schedules
    /// deliberately identical or deliberately decorrelated.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total attempts this policy makes before giving up.
    pub fn max_attempts(&self) -> usize {
        self.max_attempts
    }

    /// Whether `e` is worth retrying: only a worker panic, where the
    /// supervisor has already respawned the dead worker so a fresh attempt
    /// runs on a healed pool. Cancellation and deadline expiry are final;
    /// input and numerical errors are deterministic.
    pub fn is_transient(e: &SymSpmvError) -> bool {
        matches!(e, SymSpmvError::WorkerPanicked { .. })
    }

    /// Runs `op` up to `max_attempts` times (passing the 1-based attempt
    /// number), sleeping the jittered backoff between transient failures.
    ///
    /// Returns the successful value together with the number of attempts
    /// consumed. A non-transient error is returned immediately; exhausting
    /// the budget returns [`SymSpmvError::RetriesExhausted`] wrapping the
    /// final error.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(usize) -> Result<T, SymSpmvError>,
    ) -> Result<(T, usize), SymSpmvError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut prev = self.base;
        for attempt in 1..=self.max_attempts {
            match op(attempt) {
                Ok(v) => return Ok((v, attempt)),
                Err(e) if !Self::is_transient(&e) => return Err(e),
                Err(e) if attempt == self.max_attempts => {
                    return Err(SymSpmvError::RetriesExhausted {
                        attempts: self.max_attempts,
                        last: Box::new(e),
                    });
                }
                Err(_) => {
                    prev = self.next_backoff(&mut rng, prev);
                    std::thread::sleep(prev);
                }
            }
        }
        unreachable!("loop returns on every attempt outcome");
    }

    /// One decorrelated-jitter step: `min(cap, uniform(base, prev · 3))`.
    fn next_backoff(&self, rng: &mut StdRng, prev: Duration) -> Duration {
        let lo = self.base.as_secs_f64();
        let hi = (prev.as_secs_f64() * 3.0).max(lo * (1.0 + f64::EPSILON));
        let s = rng.random_range(lo..hi);
        Duration::from_secs_f64(s).min(self.cap)
    }
}

/// The serial kernel of last resort: the SSS reference path, bit-identical
/// to the conformance oracle's serial reference, never touching the worker
/// pool.
///
/// Implements both [`ParallelSpmv`] (serial single-vector multiply) and
/// [`ParallelSpmm`] (lane-at-a-time), so it can stand in for any kernel
/// the service runs. `nthreads` reports 1 regardless of the context's pool
/// width — the whole point is that it does not use the pool.
pub struct FallbackKernel {
    sss: SssMatrix,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl FallbackKernel {
    /// Builds the fallback from an already-validated SSS matrix.
    pub fn new(sss: SssMatrix, ctx: Arc<ExecutionContext>) -> Self {
        FallbackKernel {
            sss,
            ctx,
            times: PhaseTimes::new(),
        }
    }

    /// Builds the fallback directly from COO triplets with the given
    /// symmetry kind (tolerance 0 — exact structural validation, same as
    /// the conformance reference).
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        ctx: Arc<ExecutionContext>,
    ) -> Result<Self, SparseError> {
        Ok(FallbackKernel::new(
            SssMatrix::from_coo_kind(coo, kind, 0.0)?,
            ctx,
        ))
    }

    /// The underlying serial SSS matrix.
    pub fn sss(&self) -> &SssMatrix {
        &self.sss
    }
}

impl ParallelSpmv for FallbackKernel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        let timer = Stopwatch::start();
        self.sss.spmv(x, y);
        self.times.multiply += timer.elapsed();
    }

    fn n(&self) -> usize {
        self.sss.n() as usize
    }

    fn nnz_full(&self) -> usize {
        self.sss.full_nnz()
    }

    fn size_bytes(&self) -> usize {
        self.sss.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("serial-sss-fallback")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }

    fn nthreads(&self) -> usize {
        1
    }
}

impl ParallelSpmm for FallbackKernel {
    fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) {
        assert_eq!(x.n(), self.n(), "x block dimension mismatch");
        assert_eq!(y.n(), self.n(), "y block dimension mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let timer = Stopwatch::start();
        let n = self.n();
        let mut xin = vec![0.0; n];
        let mut yout = vec![0.0; n];
        for lane in 0..x.lanes() {
            x.copy_lane_into(lane, &mut xin);
            self.sss.spmv(&xin, &mut yout);
            y.copy_lane_from(lane, &yout);
        }
        self.times.multiply += timer.elapsed();
    }

    fn spmm_context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

/// How a [`Resilient`] request was ultimately served.
#[derive(Debug, Clone, PartialEq)]
pub enum Served {
    /// The wrapped parallel kernel succeeded (possibly after retries).
    Parallel {
        /// Attempts consumed, including the successful one.
        attempts: usize,
    },
    /// The serial fallback served the request after the parallel path was
    /// lost.
    Fallback {
        /// The error that exhausted or bypassed the parallel path.
        cause: SymSpmvError,
    },
}

impl Served {
    /// `true` when the request was served by the fallback.
    pub fn is_fallback(&self) -> bool {
        matches!(self, Served::Fallback { .. })
    }
}

/// Whether an error should degrade the request onto the serial fallback
/// (rather than being returned to the caller). Pool-loss errors degrade;
/// cancellation honours the caller's own intent, and input/numerical
/// errors would reproduce identically on the fallback.
pub fn fallback_worthy(e: &SymSpmvError) -> bool {
    matches!(
        e,
        SymSpmvError::WorkerPanicked { .. }
            | SymSpmvError::RetriesExhausted { .. }
            | SymSpmvError::PoolWedged
            | SymSpmvError::DeadlineExceeded { .. }
    )
}

/// A parallel kernel wrapped with a [`RetryPolicy`] and a serial
/// [`FallbackKernel`]: the unit the solve service actually exposes.
///
/// Per request:
///
/// 1. if the pool is already [`Wedged`](PoolHealth::Wedged), the request
///    goes straight to the fallback (cause [`SymSpmvError::PoolWedged`])
///    without queueing on the pool;
/// 2. otherwise the parallel kernel runs under the installed supervision,
///    retried per the policy;
/// 3. a pool-loss failure (retries exhausted, wedge, deadline overrun)
///    degrades onto the fallback; cancellation and input/numerical errors
///    return to the caller as typed errors.
///
/// The context keeps accepting work throughout — the fallback never takes
/// the pool lock.
pub struct Resilient<K> {
    kernel: K,
    fallback: FallbackKernel,
    policy: RetryPolicy,
    parallel_serves: usize,
    fallback_serves: usize,
}

impl<K: ParallelSpmv> Resilient<K> {
    /// Wraps `kernel` with `fallback` and `policy`. The fallback must
    /// represent the same matrix (same dimension, same operator) as the
    /// kernel; dimensions are asserted.
    pub fn new(kernel: K, fallback: FallbackKernel, policy: RetryPolicy) -> Self {
        assert_eq!(
            kernel.n(),
            ParallelSpmv::n(&fallback),
            "fallback must represent the same matrix as the kernel"
        );
        Resilient {
            kernel,
            fallback,
            policy,
            parallel_serves: 0,
            fallback_serves: 0,
        }
    }

    /// The wrapped parallel kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Mutable access to the wrapped parallel kernel.
    pub fn kernel_mut(&mut self) -> &mut K {
        &mut self.kernel
    }

    /// The serial fallback kernel.
    pub fn fallback(&self) -> &FallbackKernel {
        &self.fallback
    }

    /// Requests served by the parallel kernel so far.
    pub fn parallel_serves(&self) -> usize {
        self.parallel_serves
    }

    /// Requests served by the serial fallback so far.
    pub fn fallback_serves(&self) -> usize {
        self.fallback_serves
    }

    /// Computes `y = A·x` resiliently with no deadline or token.
    pub fn spmv(&mut self, x: &[Val], y: &mut [Val]) -> Result<Served, SymSpmvError> {
        self.spmv_supervised(x, y, None)
    }

    /// Computes `y = A·x` resiliently under `sup` (deadline and/or
    /// cancellation token), installed on the context for the duration of
    /// the request and cleared on every exit path.
    pub fn spmv_within(
        &mut self,
        x: &[Val],
        y: &mut [Val],
        sup: Supervision,
    ) -> Result<Served, SymSpmvError> {
        self.spmv_supervised(x, y, Some(sup))
    }

    fn spmv_supervised(
        &mut self,
        x: &[Val],
        y: &mut [Val],
        sup: Option<Supervision>,
    ) -> Result<Served, SymSpmvError> {
        let ctx = Arc::clone(self.kernel.context());
        if ctx.health() == PoolHealth::Wedged {
            return self.serve_fallback_spmv(x, y, SymSpmvError::PoolWedged);
        }
        let attempt_result = {
            let _guard = sup.map(|s| ctx.supervise(s));
            self.policy.run(|_| {
                y.fill(0.0);
                self.kernel.try_spmv(x, y)
            })
        };
        match attempt_result {
            Ok(((), attempts)) => {
                self.parallel_serves += 1;
                Ok(Served::Parallel { attempts })
            }
            Err(e) if fallback_worthy(&e) => self.serve_fallback_spmv(x, y, e),
            Err(e) => Err(e),
        }
    }

    fn serve_fallback_spmv(
        &mut self,
        x: &[Val],
        y: &mut [Val],
        cause: SymSpmvError,
    ) -> Result<Served, SymSpmvError> {
        y.fill(0.0);
        self.fallback.spmv(x, y);
        self.fallback_serves += 1;
        Ok(Served::Fallback { cause })
    }
}

impl<K: ParallelSpmv + ParallelSpmm> Resilient<K> {
    /// Computes `Y = A·X` resiliently with no deadline or token.
    pub fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) -> Result<Served, SymSpmvError> {
        self.spmm_supervised(x, y, None)
    }

    /// Computes `Y = A·X` resiliently under `sup`.
    pub fn spmm_within(
        &mut self,
        x: &VectorBlock,
        y: &mut VectorBlock,
        sup: Supervision,
    ) -> Result<Served, SymSpmvError> {
        self.spmm_supervised(x, y, Some(sup))
    }

    fn spmm_supervised(
        &mut self,
        x: &VectorBlock,
        y: &mut VectorBlock,
        sup: Option<Supervision>,
    ) -> Result<Served, SymSpmvError> {
        let ctx = Arc::clone(self.kernel.spmm_context());
        if ctx.health() == PoolHealth::Wedged {
            return self.serve_fallback_spmm(x, y, SymSpmvError::PoolWedged);
        }
        let attempt_result = {
            let _guard = sup.map(|s| ctx.supervise(s));
            self.policy.run(|_| {
                y.fill(0.0);
                self.kernel.try_spmm(x, y)
            })
        };
        match attempt_result {
            Ok(((), attempts)) => {
                self.parallel_serves += 1;
                Ok(Served::Parallel { attempts })
            }
            Err(e) if fallback_worthy(&e) => self.serve_fallback_spmm(x, y, e),
            Err(e) => Err(e),
        }
    }

    fn serve_fallback_spmm(
        &mut self,
        x: &VectorBlock,
        y: &mut VectorBlock,
        cause: SymSpmvError,
    ) -> Result<Served, SymSpmvError> {
        y.fill(0.0);
        self.fallback.spmm(x, y);
        self.fallback_serves += 1;
        Ok(Served::Fallback { cause })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn policy_succeeds_first_try_without_sleeping() {
        let policy = RetryPolicy::new(5);
        let calls = AtomicUsize::new(0);
        let (v, attempts) = policy
            .run(|a| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok::<_, SymSpmvError>(a * 10)
            })
            .expect("first attempt succeeds");
        assert_eq!((v, attempts), (10, 1));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn policy_retries_transient_failures_until_success() {
        let policy =
            RetryPolicy::new(4).with_backoff(Duration::from_micros(1), Duration::from_micros(5));
        let calls = AtomicUsize::new(0);
        let ((), attempts) = policy
            .run(|a| {
                calls.fetch_add(1, Ordering::Relaxed);
                if a < 3 {
                    Err(SymSpmvError::WorkerPanicked {
                        tid: 0,
                        message: "transient".into(),
                    })
                } else {
                    Ok(())
                }
            })
            .expect("third attempt succeeds");
        assert_eq!(attempts, 3);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn policy_exhaustion_wraps_the_last_error() {
        let policy =
            RetryPolicy::new(2).with_backoff(Duration::from_micros(1), Duration::from_micros(2));
        let err = policy
            .run(|a| {
                Err::<(), _>(SymSpmvError::WorkerPanicked {
                    tid: a,
                    message: format!("attempt {a}"),
                })
            })
            .unwrap_err();
        match err {
            SymSpmvError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 2);
                assert_eq!(
                    *last,
                    SymSpmvError::WorkerPanicked {
                        tid: 2,
                        message: "attempt 2".into()
                    }
                );
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn policy_does_not_retry_final_errors() {
        let policy = RetryPolicy::new(5);
        let calls = AtomicUsize::new(0);
        let err = policy
            .run(|_| {
                calls.fetch_add(1, Ordering::Relaxed);
                Err::<(), _>(SymSpmvError::Cancelled)
            })
            .unwrap_err();
        assert_eq!(err, SymSpmvError::Cancelled);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry on Cancelled");
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(8)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(10))
            .with_seed(42);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let mut prev_a = Duration::from_millis(1);
        let mut prev_b = Duration::from_millis(1);
        for _ in 0..6 {
            let a = policy.next_backoff(&mut rng_a, prev_a);
            let b = policy.next_backoff(&mut rng_b, prev_b);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a >= Duration::from_micros(900), "{a:?} below base");
            assert!(a <= Duration::from_millis(10), "{a:?} above cap");
            prev_a = a;
            prev_b = b;
        }
    }

    #[test]
    fn transience_classification() {
        assert!(RetryPolicy::is_transient(&SymSpmvError::WorkerPanicked {
            tid: 0,
            message: String::new()
        }));
        for e in [
            SymSpmvError::Cancelled,
            SymSpmvError::DeadlineExceeded { wedged: false },
            SymSpmvError::PoolWedged,
            SymSpmvError::NonFiniteResidual { iteration: 0 },
        ] {
            assert!(!RetryPolicy::is_transient(&e), "{e} must be final");
        }
    }

    #[test]
    fn fallback_worthiness_classification() {
        assert!(fallback_worthy(&SymSpmvError::PoolWedged));
        assert!(fallback_worthy(&SymSpmvError::DeadlineExceeded {
            wedged: true
        }));
        assert!(fallback_worthy(&SymSpmvError::RetriesExhausted {
            attempts: 1,
            last: Box::new(SymSpmvError::PoolWedged),
        }));
        assert!(!fallback_worthy(&SymSpmvError::Cancelled));
        assert!(!fallback_worthy(&SymSpmvError::NotSpd {
            iteration: 0,
            pap: -1.0
        }));
    }
}
