//! Multithreaded unsymmetric CSX SpMV — the CSX baseline of Fig. 11/12.
//!
//! As in the original system, the matrix is split row-wise per thread and
//! each partition is detected/encoded independently, so every thread owns
//! a private ctl/values stream and writes only its own output rows.

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_csx::detect::DetectConfig;
use symspmv_csx::matrix::{rows_submatrix, spmv_stream, CsxMatrix};
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{balanced_ranges, ExecutionContext, PhaseTimes, Range};
use symspmv_sparse::{CooMatrix, Val};

/// A row-partitioned CSX matrix bound to an execution context.
pub struct CsxParallel {
    n: usize,
    nnz: usize,
    parts: Vec<Range>,
    chunks: Vec<CsxMatrix>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl CsxParallel {
    /// Encodes `coo` into per-thread CSX chunks (preprocessing is timed
    /// into the `preprocess` phase, cf. §V-E).
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>, config: &DetectConfig) -> Self {
        let nthreads = ctx.nthreads();
        let mut c = coo.clone();
        c.canonicalize();
        // Row weights from the canonical triplets.
        let mut weights = vec![0u64; c.nrows() as usize];
        for &r in c.row_indices() {
            weights[r as usize] += 1;
        }
        for w in weights.iter_mut() {
            *w += 1;
        }
        let parts = balanced_ranges(&weights, nthreads);
        crate::plan::debug_certify_rows(c.nrows(), &parts, "csx-mt");

        let mut times = PhaseTimes::new();
        let chunks = time_into(&mut times.preprocess, || {
            parts
                .iter()
                .map(|p| CsxMatrix::from_canonical_coo(&rows_submatrix(&c, p.start, p.end), config))
                .collect::<Vec<_>>()
        });

        CsxParallel {
            n: c.nrows() as usize,
            nnz: c.nnz(),
            parts,
            chunks,
            ctx: Arc::clone(ctx),
            times,
        }
    }

    /// Aggregate substructure coverage across chunks.
    pub fn coverage(&self) -> f64 {
        let covered: f64 = self
            .chunks
            .iter()
            .map(|m| m.stats().coverage * m.nnz() as f64)
            .sum();
        covered / self.nnz.max(1) as f64
    }
}

impl ParallelSpmv for CsxParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        assert_eq!(y.len(), self.n);
        let buf = SharedBuf::new(y);
        let parts = &self.parts;
        let chunks = &self.chunks;
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                // SAFETY(cert: disjoint-direct): partitions tile 0..N
                // disjointly; the chunk's elements all have rows inside
                // this partition, so even though the kernel receives the
                // full-length view it only ever writes our rows.
                unsafe {
                    buf.range_mut(part.start as usize, part.end as usize)
                        .fill(0.0);
                    spmv_stream(chunks[tid].stream(), x, buf.full_mut());
                }
            });
        });
    }

    fn n(&self) -> usize {
        self.n
    }

    fn nnz_full(&self) -> usize {
        self.nnz
    }

    fn size_bytes(&self) -> usize {
        self.chunks.iter().map(|m| m.stats().size_bytes).sum()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("csx")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};
    use symspmv_sparse::CsrMatrix;

    fn cfg() -> DetectConfig {
        DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let coo = symspmv_sparse::gen::banded_random(500, 25, 9.0, 4);
        let csr = CsrMatrix::from_coo(&coo);
        let x = seeded_vector(500, 6);
        let mut y_ref = vec![0.0; 500];
        csr.spmv(&x, &mut y_ref);
        for p in [1, 2, 5, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsxParallel::from_coo(&coo, &ctx, &cfg());
            let mut y = vec![f64::NAN; 500];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn preprocessing_time_recorded() {
        let coo = symspmv_sparse::gen::block_structural(80, 3, 8.0, 16, 1);
        let k = CsxParallel::from_coo(&coo, &ExecutionContext::new(4), &cfg());
        assert!(k.times().preprocess > std::time::Duration::ZERO);
        assert!(k.coverage() > 0.3);
    }

    #[test]
    fn compresses_block_matrices() {
        let coo = symspmv_sparse::gen::block_structural(100, 3, 10.0, 20, 2);
        let k = CsxParallel::from_coo(&coo, &ExecutionContext::new(2), &cfg());
        let csr = CsrMatrix::from_coo(&coo);
        assert!(k.size_bytes() < csr.size_bytes());
    }
}
