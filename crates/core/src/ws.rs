//! Working-set models of the reduction phase (Eq. 3–6, Fig. 5).
//!
//! All values are bytes, assuming 8-byte vector elements and the paper's
//! 4-byte-`vid` + 4-byte-`idx` index entries. Overheads are usually
//! reported relative to the serial SSS matrix size (Eq. 2), which is how
//! Fig. 5 normalizes its y-axis.

use crate::symbolic::ConflictIndex;

/// Eq. 3 — naive local vectors: `ws = 8·p·N`.
pub fn ws_naive(p: usize, n: usize) -> usize {
    8 * p * n
}

/// Eq. 4 — effective ranges: `ws ≈ 4·(p−1)·N`.
///
/// The exact value for a concrete partition is `8·Σ start_i`; the paper's
/// closed form assumes equal row counts. Both are provided: this function
/// returns the closed form, [`ws_effective_exact`] the partition-exact one.
pub fn ws_effective(p: usize, n: usize) -> usize {
    4 * p.saturating_sub(1) * n
}

/// Partition-exact effective-ranges working set: `8·Σ_i start_i`.
pub fn ws_effective_exact(effective_region_len: usize) -> usize {
    8 * effective_region_len
}

/// Eq. 5/6 — local-vectors indexing: `ws ≈ 8·(p−1)·N·d`, evaluated exactly
/// from the symbolic index: 8 bytes of index entry plus 8 bytes of touched
/// local element per conflicting entry.
pub fn ws_indexing(index: &ConflictIndex) -> usize {
    16 * index.entries.len()
}

/// Eq. 6 closed form with an externally supplied density `d`.
pub fn ws_indexing_model(p: usize, n: usize, density: f64) -> f64 {
    8.0 * (p.saturating_sub(1) * n) as f64 * density
}

/// Reduction overhead relative to a matrix size (the Fig. 5 y-axis):
/// `ws / matrix_bytes`.
pub fn relative_overhead(ws_bytes: usize, matrix_bytes: usize) -> f64 {
    ws_bytes as f64 / matrix_bytes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic;
    use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights};
    use symspmv_sparse::SssMatrix;

    #[test]
    fn closed_forms() {
        assert_eq!(ws_naive(4, 1000), 32_000);
        assert_eq!(ws_effective(4, 1000), 12_000);
        assert_eq!(ws_effective(1, 1000), 0);
        assert!((ws_indexing_model(4, 1000, 0.1) - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn indexing_beats_effective_on_sparse_conflicts() {
        let coo = symspmv_sparse::gen::banded_random(4096, 64, 10.0, 3);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 16);
        let ci = symbolic::analyze(&sss, &parts);
        let ws_idx = ws_indexing(&ci);
        let ws_eff = ws_effective_exact(ci.effective_region_len);
        assert!(
            ws_idx < ws_eff,
            "indexing {ws_idx} should undercut effective ranges {ws_eff}"
        );
        // And the naive method is the worst of the three.
        assert!(ws_eff < ws_naive(16, 4096));
    }

    #[test]
    fn overhead_normalization() {
        assert!((relative_overhead(500, 1000) - 0.5).abs() < 1e-12);
        assert_eq!(relative_overhead(10, 0), 10.0);
    }

    #[test]
    fn model_tracks_exact_value() {
        // ws_indexing == ws_indexing_model when density is measured over
        // the same effective region length.
        let coo = symspmv_sparse::gen::mixed_bandwidth(2048, 8.0, 0.5, 32, 9);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 8);
        let ci = symbolic::analyze(&sss, &parts);
        let exact = ws_indexing(&ci) as f64;
        let model = 16.0 * ci.effective_region_len as f64 * ci.density();
        assert!((exact - model).abs() / exact.max(1.0) < 1e-9);
    }
}
