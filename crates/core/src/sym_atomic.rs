//! Atomic-update symmetric SpMV — an extension baseline.
//!
//! The paper's related work (§VI) discusses the CSB-based symmetric kernel
//! of Buluç et al. (ref. 27 of the paper), which avoids local vectors by issuing *atomic*
//! updates for conflicting writes, and predicts it is "bound by the atomic
//! operations" on high-bandwidth matrices. This kernel makes that
//! comparison concrete: same SSS storage and partitioning as
//! [`crate::sym::SymSpmv`], but transposed writes that cross the partition
//! boundary use a compare-exchange loop on the output vector instead of a
//! local vector — no reduction phase at all.

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{
    balanced_ranges, partition::symmetric_row_weights, ExecutionContext, PhaseTimes, Range,
};
use symspmv_sparse::symmetry::{SymmetryKind, SymmetryOps};
use symspmv_sparse::{with_symmetry_ops, CooMatrix, SparseError, SssMatrix, Val};

/// Symmetric SpMV over SSS storage with atomic conflicting updates.
pub struct SssAtomicParallel {
    sss: SssMatrix,
    parts: Vec<Range>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl SssAtomicParallel {
    /// Builds the kernel from a full symmetric COO matrix.
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Result<Self, SparseError> {
        Self::from_coo_kind(coo, SymmetryKind::Symmetric, ctx)
    }

    /// Builds the kernel from a full COO matrix with an explicit
    /// [`SymmetryKind`].
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        ctx: &Arc<ExecutionContext>,
    ) -> Result<Self, SparseError> {
        let sss = SssMatrix::from_coo_kind(coo, kind, 0.0)?;
        Ok(Self::from_sss(sss, ctx))
    }

    /// Builds the kernel from an SSS matrix.
    pub fn from_sss(sss: SssMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), ctx.nthreads());
        crate::plan::debug_certify_rows(sss.n(), &parts, "sym-atomic");
        SssAtomicParallel {
            sss,
            parts,
            ctx: Arc::clone(ctx),
            times: PhaseTimes::new(),
        }
    }

    /// The row partition in use.
    pub fn partitions(&self) -> &[Range] {
        &self.parts
    }
}

/// Atomically performs `slot += v` on an `f64` viewed as bits.
#[inline]
fn atomic_add_f64(slot: &AtomicU64, v: Val) {
    // RELAXED(only the slot's own value is contended — the CAS retry loop
    // makes the read-modify-write atomic per slot, and the round barrier
    // publishes all slots before any cross-thread read)
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + v;
        // RELAXED(same per-slot argument as the load above)
        match slot.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl ParallelSpmv for SssAtomicParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        let n = self.sss.n() as usize;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        let parts = &self.parts;
        let sss = &self.sss;

        // Phase A: initialize y with the diagonal contribution, row-parallel
        // (plain writes — each row owned by exactly one thread).
        let init_chunks = balanced_ranges(&vec![1u64; n], parts.len());
        let y_buf = SharedBuf::new(y);
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let chunk = init_chunks[tid];
                // SAFETY(cert: disjoint-direct): init chunks tile 0..N
                // disjointly.
                let my = unsafe { y_buf.range_mut(chunk.start as usize, chunk.end as usize) };
                let dv = &sss.dvalues()[chunk.start as usize..chunk.end as usize];
                let xs = &x[chunk.start as usize..chunk.end as usize];
                for ((slot, &d), &xi) in my.iter_mut().zip(dv).zip(xs) {
                    *slot = d * xi;
                }
            });

            // Phase B: off-diagonal products. Own-row contributions
            // accumulate in a register; every write to `y` is atomic,
            // because any element can simultaneously receive transposed
            // updates from other threads (mixing plain and atomic accesses
            // to the same location would be a data race). The transposed
            // value is `O::transposed(v, u)` — `v`, `-v`, or the paired
            // upper value depending on the matrix's symmetry kind.
            with_symmetry_ops!(sss.kind(), O => self.ctx.run(&|tid| {
                let part = parts[tid];
                // SAFETY(cert: atomic-view): AtomicU64 has the same layout
                // as u64/f64; after phase A's barrier, all phase-B
                // accesses go through this atomic view.
                let y_atomic: &[AtomicU64] = unsafe {
                    std::slice::from_raw_parts(y_buf.full_mut().as_ptr() as *const AtomicU64, n)
                };
                for r in part.start..part.end {
                    let (cols, vals, pair) = sss.row_with_paired(r);
                    let xr = x[r as usize];
                    let mut acc = 0.0;
                    for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                        let c = c as usize;
                        acc += v * x[c];
                        atomic_add_f64(&y_atomic[c], O::transposed(v, u) * xr);
                    }
                    atomic_add_f64(&y_atomic[r as usize], acc);
                }
            }));
        });
    }

    fn n(&self) -> usize {
        self.sss.n() as usize
    }

    fn nnz_full(&self) -> usize {
        2 * self.sss.lower_nnz() + self.sss.n() as usize
    }

    fn size_bytes(&self) -> usize {
        self.sss.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("sss-atomic")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn matches_serial_sss() {
        let coo = symspmv_sparse::gen::banded_random(400, 25, 9.0, 13);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(400, 3);
        let mut y_ref = vec![0.0; 400];
        sss.spmv(&x, &mut y_ref);
        for p in [1usize, 2, 4, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = SssAtomicParallel::from_coo(&coo, &ctx).unwrap();
            let mut y = vec![f64::NAN; 400];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn high_conflict_matrix_correct_under_contention() {
        // Column 0 is hit by nearly every row — maximal atomic contention.
        let mut coo = CooMatrix::new(256, 256);
        for i in 0..256u32 {
            coo.push(i, i, 4.0);
        }
        for r in 1..256u32 {
            coo.push(r, 0, 1.0);
            coo.push(0, r, 1.0);
        }
        let x = seeded_vector(256, 5);
        let mut y_ref = vec![0.0; 256];
        SssMatrix::from_coo(&coo, 0.0).unwrap().spmv(&x, &mut y_ref);
        let ctx = ExecutionContext::new(8);
        let mut k = SssAtomicParallel::from_coo(&coo, &ctx).unwrap();
        // Repeat to give races a chance to surface.
        for _ in 0..20 {
            let mut y = vec![0.0; 256];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn atomic_add_accumulates() {
        let slot = AtomicU64::new(1.5f64.to_bits());
        atomic_add_f64(&slot, 2.25);
        assert_eq!(f64::from_bits(slot.load(Ordering::Relaxed)), 3.75);
    }

    #[test]
    fn interface_metadata() {
        let coo = symspmv_sparse::gen::laplacian_2d(10, 10);
        let k = SssAtomicParallel::from_coo(&coo, &ExecutionContext::new(2)).unwrap();
        assert_eq!(k.name(), "sss-atomic");
        assert_eq!(k.n(), 100);
        assert!(k.size_bytes() > 0);
    }
}
