//! Multithreaded CSR SpMV — the baseline of every figure in §V.
//!
//! Rows are partitioned contiguously with non-zero balancing; each thread
//! computes its own row range, so output writes are trivially disjoint and
//! no reduction phase exists.

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{
    balanced_ranges, partition::csr_row_weights, ExecutionContext, ParallelSpmm, PhaseTimes, Range,
};
use symspmv_sparse::block::{VectorBlock, MAX_LANES};
use symspmv_sparse::{CooMatrix, CsrMatrix, Val};

/// A CSR matrix bound to an execution context and a static row partition.
pub struct CsrParallel {
    csr: CsrMatrix,
    parts: Vec<Range>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl CsrParallel {
    /// Builds the kernel from a CSR matrix on the given context's workers.
    pub fn new(csr: CsrMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let weights = csr_row_weights(csr.rowptr());
        let parts = balanced_ranges(&weights, ctx.nthreads());
        crate::plan::debug_certify_rows(csr.nrows(), &parts, "csr-mt");
        CsrParallel {
            csr,
            parts,
            ctx: Arc::clone(ctx),
            times: PhaseTimes::new(),
        }
    }

    /// Builds the kernel from a COO matrix.
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        Self::new(CsrMatrix::from_coo(coo), ctx)
    }

    /// The row partition in use.
    pub fn partitions(&self) -> &[Range] {
        &self.parts
    }

    /// Immutable access to the underlying CSR matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.csr
    }
}

impl ParallelSpmv for CsrParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.csr.ncols() as usize);
        assert_eq!(y.len(), self.csr.nrows() as usize);
        let buf = SharedBuf::new(y);
        let csr = &self.csr;
        let parts = &self.parts;
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                // SAFETY(cert: disjoint-direct): partitions tile 0..N
                // disjointly (certify_rows, debug-asserted at build).
                let my_y = unsafe { buf.range_mut(part.start as usize, part.end as usize) };
                // spmv_rows indexes y by absolute row; pass a shifted view.
                for r in part.start..part.end {
                    let (cols, vals) = csr.row(r);
                    let mut acc = 0.0;
                    for (&c, &v) in cols.iter().zip(vals) {
                        acc += v * x[c as usize];
                    }
                    my_y[(r - part.start) as usize] = acc;
                }
            });
        });
    }

    fn n(&self) -> usize {
        self.csr.nrows() as usize
    }

    fn nnz_full(&self) -> usize {
        self.csr.nnz()
    }

    fn size_bytes(&self) -> usize {
        self.csr.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("csr")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

impl ParallelSpmm for CsrParallel {
    fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) {
        assert_eq!(x.n(), self.csr.ncols() as usize);
        assert_eq!(y.n(), self.csr.nrows() as usize);
        assert_eq!(x.lanes(), y.lanes());
        let lanes = x.lanes();
        let buf = SharedBuf::new(y.as_mut_slice());
        let csr = &self.csr;
        let parts = &self.parts;
        let xs = x.as_slice();
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                // SAFETY(cert: lane-lifted): row partitions tile 0..N
                // disjointly (certify_rows), so lane groups
                // [r*lanes, (r+1)*lanes) tile 0..N*lanes disjointly.
                let my_y = unsafe {
                    buf.range_mut(part.start as usize * lanes, part.end as usize * lanes)
                };
                for r in part.start..part.end {
                    let (cols, vals) = csr.row(r);
                    // Per-lane accumulators run the exact op order of the
                    // scalar kernel on each lane: bitwise-identical output.
                    let mut acc = [0.0; MAX_LANES];
                    for (&c, &v) in cols.iter().zip(vals) {
                        let xc = &xs[c as usize * lanes..(c as usize + 1) * lanes];
                        for (a, &xj) in acc.iter_mut().zip(xc) {
                            *a += v * xj;
                        }
                    }
                    let yb = (r - part.start) as usize * lanes;
                    my_y[yb..yb + lanes].copy_from_slice(&acc[..lanes]);
                }
            });
        });
    }

    fn spmm_context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn parallel_matches_serial() {
        let coo = symspmv_sparse::gen::banded_random(500, 20, 8.0, 3);
        let csr = CsrMatrix::from_coo(&coo);
        let x = seeded_vector(500, 7);
        let mut y_serial = vec![0.0; 500];
        csr.spmv(&x, &mut y_serial);

        for p in [1, 2, 3, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsrParallel::from_coo(&coo, &ctx);
            let mut y = vec![0.0; 500];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_serial, 1e-12);
            assert_eq!(k.nthreads(), p);
        }
    }

    #[test]
    fn repeated_calls_accumulate_time() {
        let coo = symspmv_sparse::gen::laplacian_2d(20, 20);
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let x = seeded_vector(400, 1);
        let mut y = vec![0.0; 400];
        k.spmv(&x, &mut y);
        let t1 = k.times().multiply;
        k.spmv(&x, &mut y);
        assert!(k.times().multiply >= t1);
        k.reset_times();
        assert_eq!(k.times().multiply, std::time::Duration::ZERO);
    }

    #[test]
    fn more_threads_than_rows() {
        let coo = symspmv_sparse::gen::laplacian_2d(2, 2);
        let ctx = ExecutionContext::new(16);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let x = vec![1.0; 4];
        let mut y = vec![0.0; 4];
        let mut y_ref = vec![0.0; 4];
        k.spmv(&x, &mut y);
        CsrMatrix::from_coo(&coo).spmv(&x, &mut y_ref);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn interface_metadata() {
        let coo = symspmv_sparse::gen::laplacian_2d(10, 10);
        let ctx = ExecutionContext::new(2);
        let k = CsrParallel::from_coo(&coo, &ctx);
        assert_eq!(k.n(), 100);
        assert_eq!(k.name(), "csr");
        assert_eq!(k.flops(), 2 * k.nnz_full() as u64);
        assert!(k.size_bytes() > 0);
    }

    #[test]
    fn spmm_lanes_match_independent_spmv() {
        let coo = symspmv_sparse::gen::banded_random(300, 12, 6.0, 11);
        for p in [1, 3] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsrParallel::from_coo(&coo, &ctx);
            for lanes in [1usize, 2, 4, 8] {
                let x = VectorBlock::seeded(300, lanes, 40);
                let mut y = VectorBlock::zeros(300, lanes);
                k.spmm(&x, &mut y);
                for j in 0..lanes {
                    let xj = x.lane(j);
                    let mut yj = vec![0.0; 300];
                    k.spmv(&xj, &mut yj);
                    let got = y.lane(j);
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        yj.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "p={p} lanes={lanes} lane {j} not bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_share_one_pool() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(4);
        let before = symspmv_runtime::WorkerPool::pools_created();
        let _a = CsrParallel::from_coo(&coo, &ctx);
        let _b = CsrParallel::from_coo(&coo, &ctx);
        assert_eq!(symspmv_runtime::WorkerPool::pools_created(), before);
    }
}
