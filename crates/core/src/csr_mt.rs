//! Multithreaded CSR SpMV — the baseline of every figure in §V.
//!
//! Rows are partitioned contiguously with non-zero balancing; each thread
//! computes its own row range, so output writes are trivially disjoint and
//! no reduction phase exists.

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{
    balanced_ranges, partition::csr_row_weights, ExecutionContext, PhaseTimes, Range,
};
use symspmv_sparse::{CooMatrix, CsrMatrix, Val};

/// A CSR matrix bound to an execution context and a static row partition.
pub struct CsrParallel {
    csr: CsrMatrix,
    parts: Vec<Range>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl CsrParallel {
    /// Builds the kernel from a CSR matrix on the given context's workers.
    pub fn new(csr: CsrMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let weights = csr_row_weights(csr.rowptr());
        let parts = balanced_ranges(&weights, ctx.nthreads());
        crate::plan::debug_certify_rows(csr.nrows(), &parts, "csr-mt");
        CsrParallel {
            csr,
            parts,
            ctx: Arc::clone(ctx),
            times: PhaseTimes::new(),
        }
    }

    /// Builds the kernel from a COO matrix.
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        Self::new(CsrMatrix::from_coo(coo), ctx)
    }

    /// The row partition in use.
    pub fn partitions(&self) -> &[Range] {
        &self.parts
    }

    /// Immutable access to the underlying CSR matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.csr
    }
}

impl ParallelSpmv for CsrParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.csr.ncols() as usize);
        assert_eq!(y.len(), self.csr.nrows() as usize);
        let buf = SharedBuf::new(y);
        let csr = &self.csr;
        let parts = &self.parts;
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                // SAFETY(cert: disjoint-direct): partitions tile 0..N
                // disjointly (certify_rows, debug-asserted at build).
                let my_y = unsafe { buf.range_mut(part.start as usize, part.end as usize) };
                // spmv_rows indexes y by absolute row; pass a shifted view.
                for r in part.start..part.end {
                    let (cols, vals) = csr.row(r);
                    let mut acc = 0.0;
                    for (&c, &v) in cols.iter().zip(vals) {
                        acc += v * x[c as usize];
                    }
                    my_y[(r - part.start) as usize] = acc;
                }
            });
        });
    }

    fn n(&self) -> usize {
        self.csr.nrows() as usize
    }

    fn nnz_full(&self) -> usize {
        self.csr.nnz()
    }

    fn size_bytes(&self) -> usize {
        self.csr.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("csr")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn parallel_matches_serial() {
        let coo = symspmv_sparse::gen::banded_random(500, 20, 8.0, 3);
        let csr = CsrMatrix::from_coo(&coo);
        let x = seeded_vector(500, 7);
        let mut y_serial = vec![0.0; 500];
        csr.spmv(&x, &mut y_serial);

        for p in [1, 2, 3, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsrParallel::from_coo(&coo, &ctx);
            let mut y = vec![0.0; 500];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_serial, 1e-12);
            assert_eq!(k.nthreads(), p);
        }
    }

    #[test]
    fn repeated_calls_accumulate_time() {
        let coo = symspmv_sparse::gen::laplacian_2d(20, 20);
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let x = seeded_vector(400, 1);
        let mut y = vec![0.0; 400];
        k.spmv(&x, &mut y);
        let t1 = k.times().multiply;
        k.spmv(&x, &mut y);
        assert!(k.times().multiply >= t1);
        k.reset_times();
        assert_eq!(k.times().multiply, std::time::Duration::ZERO);
    }

    #[test]
    fn more_threads_than_rows() {
        let coo = symspmv_sparse::gen::laplacian_2d(2, 2);
        let ctx = ExecutionContext::new(16);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let x = vec![1.0; 4];
        let mut y = vec![0.0; 4];
        let mut y_ref = vec![0.0; 4];
        k.spmv(&x, &mut y);
        CsrMatrix::from_coo(&coo).spmv(&x, &mut y_ref);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn interface_metadata() {
        let coo = symspmv_sparse::gen::laplacian_2d(10, 10);
        let ctx = ExecutionContext::new(2);
        let k = CsrParallel::from_coo(&coo, &ctx);
        assert_eq!(k.n(), 100);
        assert_eq!(k.name(), "csr");
        assert_eq!(k.flops(), 2 * k.nnz_full() as u64);
        assert!(k.size_bytes() > 0);
    }

    #[test]
    fn kernels_share_one_pool() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(4);
        let before = symspmv_runtime::WorkerPool::pools_created();
        let _a = CsrParallel::from_coo(&coo, &ctx);
        let _b = CsrParallel::from_coo(&coo, &ctx);
        assert_eq!(symspmv_runtime::WorkerPool::pools_created(), before);
    }
}
