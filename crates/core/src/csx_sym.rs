//! CSX-Sym — the symmetric CSX variant (§IV-B).
//!
//! CSX-Sym stores the main diagonal densely (`dvalues`, as in SSS) and
//! encodes the strict lower triangle with CSX, *per thread partition*, so
//! each chunk is detected and encoded independently. The one restriction
//! versus plain CSX: a substructure whose transposed writes would be split
//! between the thread's local vector (`c < start_i`) and the shared output
//! vector (`c ≥ start_i`) is not encoded — its elements fall back to delta
//! units. Substructure inner loops therefore never branch on the write
//! target; only delta units pay a per-element check.

use symspmv_csx::detect::{analyze, CooIndex, DetectConfig};
use symspmv_csx::encode::{CtlStream, ID_MASK, NR_BIT, RJMP_BIT};
use symspmv_csx::pattern::{DeltaWidth, PatternKind};
use symspmv_csx::varint::read_varint;
use symspmv_runtime::Range;
use symspmv_sparse::block::MAX_LANES;
use symspmv_sparse::symmetry::{SymmetryKind, SymmetryOps};
use symspmv_sparse::{CooMatrix, Idx, SssMatrix, Val};

/// One per-thread chunk: the CSX stream of the partition's lower-triangle
/// rows, encoded with the partition boundary as the legality split.
#[derive(Debug, Clone, PartialEq)]
pub struct CsxSymChunk {
    /// Row partition this chunk covers.
    pub part: Range,
    /// Encoded stream (absolute row/column coordinates).
    pub stream: CtlStream,
    /// For structural symmetry: the upper-triangle values `a_cr`, in the
    /// same stream order as `stream.values` (encoded against the same
    /// detection, so the ctl bytes are shared). Empty for the numeric
    /// kinds, whose mirror is `±v`.
    pub upper_values: Vec<Val>,
    /// Fraction of the chunk's non-zeros covered by substructure units.
    pub coverage: f64,
}

impl CsxSymChunk {
    /// The stream-ordered mirror values: `upper_values` when the matrix is
    /// structurally symmetric, otherwise the stream's own values (the
    /// kernels' `O::transposed` ignores or negates them).
    pub fn paired_values(&self) -> &[Val] {
        if self.upper_values.is_empty() {
            &self.stream.values
        } else {
            &self.upper_values
        }
    }
}

/// A symmetric sparse matrix in the CSX-Sym format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsxSymMatrix {
    n: Idx,
    kind: SymmetryKind,
    dvalues: Vec<Val>,
    chunks: Vec<CsxSymChunk>,
    lower_nnz: usize,
}

impl CsxSymMatrix {
    /// Encodes an SSS matrix into per-partition CSX-Sym chunks. The
    /// matrix's [`SymmetryKind`] carries over; for structural symmetry the
    /// paired upper values are encoded against the *same* detection result
    /// (detection is structure-driven), giving a second stream-ordered
    /// value array under the shared ctl bytes.
    pub fn from_sss(sss: &SssMatrix, parts: &[Range], config: &DetectConfig) -> Self {
        let kind = sss.kind();
        let mut chunks = Vec::with_capacity(parts.len());
        for part in parts {
            // Materialize the partition's strict-lower rows as COO.
            let mut sub = CooMatrix::new(sss.n(), sss.n());
            let mut sub_upper = CooMatrix::new(sss.n(), sss.n());
            for r in part.start..part.end {
                let (cols, vals, pair) = sss.row_with_paired(r);
                for ((&c, &v), &u) in cols.iter().zip(vals).zip(pair) {
                    sub.push(r, c, v);
                    if kind.has_upper_values() {
                        sub_upper.push(r, c, u);
                    }
                }
            }
            sub.canonicalize();
            let cfg = DetectConfig {
                col_split: Some(part.start),
                ..config.clone()
            };
            let det = analyze(&sub, &cfg);
            let coverage = det.coverage();
            let vm = CooIndex::new(&sub);
            let stream = CtlStream::encode(&det, &vm);
            let upper_values = if kind.has_upper_values() {
                sub_upper.canonicalize();
                let vm_upper = CooIndex::new(&sub_upper);
                let upper_stream = CtlStream::encode(&det, &vm_upper);
                // Same coordinates, same detection: only the values differ.
                debug_assert_eq!(upper_stream.ctl, stream.ctl);
                debug_assert_eq!(upper_stream.values.len(), stream.values.len());
                upper_stream.values
            } else {
                Vec::new()
            };
            chunks.push(CsxSymChunk {
                part: *part,
                stream,
                upper_values,
                coverage,
            });
        }
        CsxSymMatrix {
            n: sss.n(),
            kind,
            dvalues: sss.dvalues().to_vec(),
            chunks,
            lower_nnz: sss.lower_nnz(),
        }
    }

    /// The symmetry kind the stored mirror contributions follow.
    pub fn kind(&self) -> SymmetryKind {
        self.kind
    }

    /// Matrix dimension.
    pub fn n(&self) -> Idx {
        self.n
    }

    /// Dense diagonal.
    pub fn dvalues(&self) -> &[Val] {
        &self.dvalues
    }

    /// Per-thread chunks.
    pub fn chunks(&self) -> &[CsxSymChunk] {
        &self.chunks
    }

    /// Strict-lower-triangle non-zero count.
    pub fn lower_nnz(&self) -> usize {
        self.lower_nnz
    }

    /// Non-zeros of the represented full operator, with the diagonal
    /// counted densely (as `dvalues` stores it): `2·lower + N`.
    pub fn full_nnz(&self) -> usize {
        2 * self.lower_nnz + self.n as usize
    }

    /// Bytes of the representation: all ctl streams, all values (incl. the
    /// structural upper array), dvalues.
    pub fn size_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.stream.size_bytes() + 8 * c.upper_values.len())
            .sum::<usize>()
            + 8 * self.n as usize
    }

    /// Compression ratio versus the full-matrix CSR representation
    /// (Table I's "C.R. (CSX-Sym)" column, as a fraction).
    pub fn compression_ratio(&self) -> f64 {
        1.0 - self.size_bytes() as f64 / self.csr_bytes() as f64
    }

    /// The maximum possible symmetric compression ratio: values + dvalues
    /// only, no indexing information (Table I's "C.R. (Max.)").
    pub fn max_compression_ratio(&self) -> f64 {
        let floor = 8 * self.lower_nnz + 8 * self.n as usize;
        1.0 - floor as f64 / self.csr_bytes() as f64
    }

    /// Eq. 1 size of the equivalent full CSR matrix.
    pub fn csr_bytes(&self) -> usize {
        12 * self.full_nnz() + 4 * (self.n as usize + 1)
    }

    /// Mean substructure coverage across chunks (nnz-weighted would need
    /// per-chunk nnz; chunks are nnz-balanced so the plain mean is close).
    pub fn coverage(&self) -> f64 {
        if self.chunks.is_empty() {
            return 0.0;
        }
        self.chunks.iter().map(|c| c.coverage).sum::<f64>() / self.chunks.len() as f64
    }

    /// Serial reference SpMV (`y = A·x`) over all chunks — used by tests
    /// and the single-threaded configurations.
    pub fn spmv_serial(&self, x: &[Val], y: &mut [Val]) {
        let n = self.n as usize;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for r in 0..n {
            y[r] = self.dvalues[r] * x[r];
        }
        let kind = self.kind;
        for chunk in &self.chunks {
            // The walk visits elements in stream (values) order, so a
            // running cursor pairs each element with its mirror value.
            let paired = chunk.paired_values();
            let mut j = 0usize;
            chunk.stream.walk(
                |_| {},
                |r, c, v| {
                    let u = paired[j];
                    j += 1;
                    y[r as usize] += v * x[c as usize];
                    y[c as usize] += kind.transposed(v, u) * x[r as usize];
                },
            );
        }
    }
}

/// The symmetric CSX multiply kernel for one chunk, with split writes:
/// transposed contributions below the partition boundary go to `local`,
/// everything else to `my_y`, the partition's slice of the output vector
/// (`my_y[0]` is global row `y_off`; the boundary equals `y_off`).
///
/// All direct writes provably land inside the partition — the row `r` by
/// chunk construction, transposed targets `c ∈ [y_off, r]` by the legality
/// rule — so the kernel works on plain `&mut` slices and stays safe.
///
/// `paired` is the stream-ordered mirror-value array
/// ([`CsxSymChunk::paired_values`]); it aliases `stream.values` for the
/// numeric kinds, whose `O::transposed` never reads it.
pub fn spmv_sym_stream<O: SymmetryOps>(
    stream: &CtlStream,
    paired: &[Val],
    x: &[Val],
    my_y: &mut [Val],
    y_off: usize,
    local: &mut [Val],
) {
    let split = y_off;
    let ctl = &stream.ctl;
    let values = &stream.values;
    let mut pos = 0usize;
    let mut vi = 0usize;
    let mut row: i64 = -1;
    let mut col: Idx = 0;
    while pos < ctl.len() {
        let flags = ctl[pos];
        pos += 1;
        if flags & NR_BIT != 0 {
            let extra = if flags & RJMP_BIT != 0 {
                read_varint(ctl, &mut pos)
            } else {
                0
            };
            row += 1 + extra as i64;
            col = 0;
        }
        let size = usize::from(ctl[pos]);
        pos += 1;
        let ucol = read_varint(ctl, &mut pos) as Idx;
        let anchor = if flags & NR_BIT != 0 {
            ucol
        } else {
            col + ucol
        };
        col = anchor;
        let r = row as usize;
        let id = flags & ID_MASK;

        let unit_vals = &values[vi..vi + size];
        let unit_pair = &paired[vi..vi + size];
        if let Some(kind) = PatternKind::from_id(id) {
            // Boundary legality (§IV-B): all transposed writes of a
            // substructure land on one side, so the branch hoists out of
            // the inner loops (every element is on the anchor's side).
            let is_local = (anchor as usize) < split;
            debug_assert!({
                let (_, last_c) = kind.element(r as Idx, anchor, size as u32 - 1);
                ((last_c as usize) < split) == is_local
            });
            // One specialized dual-write loop per pattern family — the
            // interpreter stand-in for CSX-Sym's generated kernels.
            macro_rules! run {
                ($next:expr) => {{
                    let mut rr = r;
                    let mut cc = anchor as usize;
                    if is_local {
                        for (&v, &u) in unit_vals.iter().zip(unit_pair) {
                            my_y[rr - y_off] += v * x[cc];
                            local[cc] += O::transposed(v, u) * x[rr];
                            $next(&mut rr, &mut cc);
                        }
                    } else {
                        for (&v, &u) in unit_vals.iter().zip(unit_pair) {
                            my_y[rr - y_off] += v * x[cc];
                            my_y[cc - y_off] += O::transposed(v, u) * x[rr];
                            $next(&mut rr, &mut cc);
                        }
                    }
                }};
            }
            match kind {
                PatternKind::Horizontal { delta } => {
                    let d = delta as usize;
                    run!(|_rr: &mut usize, cc: &mut usize| *cc += d);
                }
                PatternKind::Vertical { delta } => {
                    let d = delta as usize;
                    run!(|rr: &mut usize, _cc: &mut usize| *rr += d);
                }
                PatternKind::Diagonal { delta } => {
                    let d = delta as usize;
                    run!(|rr: &mut usize, cc: &mut usize| {
                        *rr += d;
                        *cc += d;
                    });
                }
                PatternKind::AntiDiagonal { delta } => {
                    let d = delta as usize;
                    run!(|rr: &mut usize, cc: &mut usize| {
                        *rr += d;
                        *cc = cc.wrapping_sub(d);
                    });
                }
                PatternKind::Block { rows: 3, cols: 3 } => {
                    // The dominant pattern on 3-dof structural matrices —
                    // fully unrolled.
                    let base = anchor as usize;
                    let (x0, x1, x2) = (x[base], x[base + 1], x[base + 2]);
                    let (mut t0, mut t1, mut t2) = (0.0, 0.0, 0.0);
                    for ((br, v), u) in unit_vals
                        .chunks_exact(3)
                        .enumerate()
                        .zip(unit_pair.chunks_exact(3))
                    {
                        let rr = r + br;
                        let xr = x[rr];
                        my_y[rr - y_off] += v[0] * x0 + v[1] * x1 + v[2] * x2;
                        t0 += O::transposed(v[0], u[0]) * xr;
                        t1 += O::transposed(v[1], u[1]) * xr;
                        t2 += O::transposed(v[2], u[2]) * xr;
                    }
                    if is_local {
                        local[base] += t0;
                        local[base + 1] += t1;
                        local[base + 2] += t2;
                    } else {
                        my_y[base - y_off] += t0;
                        my_y[base + 1 - y_off] += t1;
                        my_y[base + 2 - y_off] += t2;
                    }
                }
                PatternKind::Block { rows: _, cols } => {
                    let bc = cols as usize;
                    let base = anchor as usize;
                    for ((br, row_vals), row_pair) in unit_vals
                        .chunks_exact(bc)
                        .enumerate()
                        .zip(unit_pair.chunks_exact(bc))
                    {
                        let rr = r + br;
                        let xr = x[rr];
                        let mut acc = 0.0;
                        if is_local {
                            for (j, (&v, &u)) in row_vals.iter().zip(row_pair).enumerate() {
                                acc += v * x[base + j];
                                local[base + j] += O::transposed(v, u) * xr;
                            }
                        } else {
                            for (j, (&v, &u)) in row_vals.iter().zip(row_pair).enumerate() {
                                acc += v * x[base + j];
                                my_y[base + j - y_off] += O::transposed(v, u) * xr;
                            }
                        }
                        my_y[rr - y_off] += acc;
                    }
                }
            }
            vi += size;
        } else {
            // Delta unit: per-element side check, slice-based decode.
            let width = PatternKind::delta_width_from_id(id)
                .unwrap_or_else(|| unreachable!("invalid pattern id in ctl stream"));
            let xr = x[r];
            let mut acc = 0.0;
            let mut c = anchor as usize;
            let mut emit = |c: usize, v: Val, u: Val, acc: &mut Val| {
                *acc += v * x[c];
                let t = O::transposed(v, u);
                if c < split {
                    local[c] += t * xr;
                } else {
                    my_y[c - y_off] += t * xr;
                }
            };
            emit(c, unit_vals[0], unit_pair[0], &mut acc);
            let rest = &unit_vals[1..];
            let rest_pair = &unit_pair[1..];
            match width {
                DeltaWidth::U8 => {
                    let body = &ctl[pos..pos + size - 1];
                    pos += size - 1;
                    for ((&d, &v), &u) in body.iter().zip(rest).zip(rest_pair) {
                        c += usize::from(d);
                        emit(c, v, u, &mut acc);
                    }
                }
                DeltaWidth::U16 => {
                    let body = &ctl[pos..pos + 2 * (size - 1)];
                    pos += 2 * (size - 1);
                    for ((d, &v), &u) in body.chunks_exact(2).zip(rest).zip(rest_pair) {
                        c += usize::from(u16::from_le_bytes([d[0], d[1]]));
                        emit(c, v, u, &mut acc);
                    }
                }
                DeltaWidth::U32 => {
                    let body = &ctl[pos..pos + 4 * (size - 1)];
                    pos += 4 * (size - 1);
                    for ((d, &v), &u) in body.chunks_exact(4).zip(rest).zip(rest_pair) {
                        c += u32::from_le_bytes([d[0], d[1], d[2], d[3]]) as usize;
                        emit(c, v, u, &mut acc);
                    }
                }
            }
            my_y[r - y_off] += acc;
            vi += size;
        }
    }
}

/// The symmetric multiply kernel variant for the *naive* reduction method:
/// everything (including direct rows) goes into a full-length local vector.
pub fn spmv_sym_stream_local_only<O: SymmetryOps>(
    stream: &CtlStream,
    paired: &[Val],
    x: &[Val],
    local: &mut [Val],
) {
    // The walk visits elements in stream (values) order; the cursor pairs
    // each element with its mirror value.
    let mut j = 0usize;
    stream.walk(
        |_| {},
        |r, c, v| {
            let u = paired[j];
            j += 1;
            local[r as usize] += v * x[c as usize];
            local[c as usize] += O::transposed(v, u) * x[r as usize];
        },
    );
}

/// The batched (`lanes` right-hand sides) twin of [`spmv_sym_stream`]: the
/// same ctl decode and the same per-element op order per lane, with `x`,
/// `my_y` and `local` holding lane-interleaved groups (element `(i, j)` at
/// `i·lanes + j`). The stream — the expensive traffic — is decoded once
/// for all lanes.
pub fn spmm_sym_stream<O: SymmetryOps>(
    stream: &CtlStream,
    paired: &[Val],
    x: &[Val],
    my_y: &mut [Val],
    y_off: usize,
    local: &mut [Val],
    lanes: usize,
) {
    let split = y_off;
    let ctl = &stream.ctl;
    let values = &stream.values;
    let mut pos = 0usize;
    let mut vi = 0usize;
    let mut row: i64 = -1;
    let mut col: Idx = 0;
    while pos < ctl.len() {
        let flags = ctl[pos];
        pos += 1;
        if flags & NR_BIT != 0 {
            let extra = if flags & RJMP_BIT != 0 {
                read_varint(ctl, &mut pos)
            } else {
                0
            };
            row += 1 + extra as i64;
            col = 0;
        }
        let size = usize::from(ctl[pos]);
        pos += 1;
        let ucol = read_varint(ctl, &mut pos) as Idx;
        let anchor = if flags & NR_BIT != 0 {
            ucol
        } else {
            col + ucol
        };
        col = anchor;
        let r = row as usize;
        let id = flags & ID_MASK;

        let unit_vals = &values[vi..vi + size];
        let unit_pair = &paired[vi..vi + size];
        if let Some(kind) = PatternKind::from_id(id) {
            // Boundary legality (§IV-B) hoists the side branch exactly as
            // in the scalar kernel.
            let is_local = (anchor as usize) < split;
            debug_assert!({
                let (_, last_c) = kind.element(r as Idx, anchor, size as u32 - 1);
                ((last_c as usize) < split) == is_local
            });
            macro_rules! run {
                ($next:expr) => {{
                    let mut rr = r;
                    let mut cc = anchor as usize;
                    if is_local {
                        for (&v, &u) in unit_vals.iter().zip(unit_pair) {
                            let t = O::transposed(v, u);
                            let yb = (rr - y_off) * lanes;
                            let xb = cc * lanes;
                            let xrb = rr * lanes;
                            for j in 0..lanes {
                                my_y[yb + j] += v * x[xb + j];
                                local[xb + j] += t * x[xrb + j];
                            }
                            $next(&mut rr, &mut cc);
                        }
                    } else {
                        for (&v, &u) in unit_vals.iter().zip(unit_pair) {
                            let t = O::transposed(v, u);
                            let yb = (rr - y_off) * lanes;
                            let xb = cc * lanes;
                            let xrb = rr * lanes;
                            let yt = (cc - y_off) * lanes;
                            for j in 0..lanes {
                                my_y[yb + j] += v * x[xb + j];
                                my_y[yt + j] += t * x[xrb + j];
                            }
                            $next(&mut rr, &mut cc);
                        }
                    }
                }};
            }
            match kind {
                PatternKind::Horizontal { delta } => {
                    let d = delta as usize;
                    run!(|_rr: &mut usize, cc: &mut usize| *cc += d);
                }
                PatternKind::Vertical { delta } => {
                    let d = delta as usize;
                    run!(|rr: &mut usize, _cc: &mut usize| *rr += d);
                }
                PatternKind::Diagonal { delta } => {
                    let d = delta as usize;
                    run!(|rr: &mut usize, cc: &mut usize| {
                        *rr += d;
                        *cc += d;
                    });
                }
                PatternKind::AntiDiagonal { delta } => {
                    let d = delta as usize;
                    run!(|rr: &mut usize, cc: &mut usize| {
                        *rr += d;
                        *cc = cc.wrapping_sub(d);
                    });
                }
                PatternKind::Block { rows: 3, cols: 3 } => {
                    let base = anchor as usize;
                    let (x0, x1, x2) = (
                        &x[base * lanes..(base + 1) * lanes],
                        &x[(base + 1) * lanes..(base + 2) * lanes],
                        &x[(base + 2) * lanes..(base + 3) * lanes],
                    );
                    let mut t = [[0.0; MAX_LANES]; 3];
                    for ((br, v), u) in unit_vals
                        .chunks_exact(3)
                        .enumerate()
                        .zip(unit_pair.chunks_exact(3))
                    {
                        let rr = r + br;
                        let yb = (rr - y_off) * lanes;
                        let xrb = rr * lanes;
                        for j in 0..lanes {
                            let xr = x[xrb + j];
                            my_y[yb + j] += v[0] * x0[j] + v[1] * x1[j] + v[2] * x2[j];
                            t[0][j] += O::transposed(v[0], u[0]) * xr;
                            t[1][j] += O::transposed(v[1], u[1]) * xr;
                            t[2][j] += O::transposed(v[2], u[2]) * xr;
                        }
                    }
                    for (i, ti) in t.iter().enumerate() {
                        if is_local {
                            let lt = &mut local[(base + i) * lanes..(base + i + 1) * lanes];
                            for j in 0..lanes {
                                lt[j] += ti[j];
                            }
                        } else {
                            let yb = (base + i - y_off) * lanes;
                            for j in 0..lanes {
                                my_y[yb + j] += ti[j];
                            }
                        }
                    }
                }
                PatternKind::Block { rows: _, cols } => {
                    let bc = cols as usize;
                    let base = anchor as usize;
                    for ((br, row_vals), row_pair) in unit_vals
                        .chunks_exact(bc)
                        .enumerate()
                        .zip(unit_pair.chunks_exact(bc))
                    {
                        let rr = r + br;
                        let xrb = rr * lanes;
                        let mut acc = [0.0; MAX_LANES];
                        for (jj, (&v, &u)) in row_vals.iter().zip(row_pair).enumerate() {
                            let t = O::transposed(v, u);
                            let cb = (base + jj) * lanes;
                            if is_local {
                                for j in 0..lanes {
                                    acc[j] += v * x[cb + j];
                                    local[cb + j] += t * x[xrb + j];
                                }
                            } else {
                                let yt = (base + jj - y_off) * lanes;
                                for j in 0..lanes {
                                    acc[j] += v * x[cb + j];
                                    my_y[yt + j] += t * x[xrb + j];
                                }
                            }
                        }
                        let yb = (rr - y_off) * lanes;
                        for j in 0..lanes {
                            my_y[yb + j] += acc[j];
                        }
                    }
                }
            }
            vi += size;
        } else {
            // Delta unit: per-element side check, as in the scalar kernel.
            let width = PatternKind::delta_width_from_id(id)
                .unwrap_or_else(|| unreachable!("invalid pattern id in ctl stream"));
            let xrb = r * lanes;
            let mut acc = [0.0; MAX_LANES];
            let mut c = anchor as usize;
            let mut emit = |c: usize, v: Val, u: Val, acc: &mut [Val; MAX_LANES]| {
                let t = O::transposed(v, u);
                let cb = c * lanes;
                if c < split {
                    for j in 0..lanes {
                        acc[j] += v * x[cb + j];
                        local[cb + j] += t * x[xrb + j];
                    }
                } else {
                    let yt = (c - y_off) * lanes;
                    for j in 0..lanes {
                        acc[j] += v * x[cb + j];
                        my_y[yt + j] += t * x[xrb + j];
                    }
                }
            };
            emit(c, unit_vals[0], unit_pair[0], &mut acc);
            let rest = &unit_vals[1..];
            let rest_pair = &unit_pair[1..];
            match width {
                DeltaWidth::U8 => {
                    let body = &ctl[pos..pos + size - 1];
                    pos += size - 1;
                    for ((&d, &v), &u) in body.iter().zip(rest).zip(rest_pair) {
                        c += usize::from(d);
                        emit(c, v, u, &mut acc);
                    }
                }
                DeltaWidth::U16 => {
                    let body = &ctl[pos..pos + 2 * (size - 1)];
                    pos += 2 * (size - 1);
                    for ((d, &v), &u) in body.chunks_exact(2).zip(rest).zip(rest_pair) {
                        c += usize::from(u16::from_le_bytes([d[0], d[1]]));
                        emit(c, v, u, &mut acc);
                    }
                }
                DeltaWidth::U32 => {
                    let body = &ctl[pos..pos + 4 * (size - 1)];
                    pos += 4 * (size - 1);
                    for ((d, &v), &u) in body.chunks_exact(4).zip(rest).zip(rest_pair) {
                        c += u32::from_le_bytes([d[0], d[1], d[2], d[3]]) as usize;
                        emit(c, v, u, &mut acc);
                    }
                }
            }
            let yb = (r - y_off) * lanes;
            for j in 0..lanes {
                my_y[yb + j] += acc[j];
            }
            vi += size;
        }
    }
}

/// The batched twin of [`spmv_sym_stream_local_only`] (naive reduction):
/// both symmetric contributions of every element go to the full-length
/// lane-interleaved local block.
pub fn spmm_sym_stream_local_only<O: SymmetryOps>(
    stream: &CtlStream,
    paired: &[Val],
    x: &[Val],
    local: &mut [Val],
    lanes: usize,
) {
    let mut j_elem = 0usize;
    stream.walk(
        |_| {},
        |r, c, v| {
            let u = paired[j_elem];
            j_elem += 1;
            let t = O::transposed(v, u);
            let (rb, cb) = (r as usize * lanes, c as usize * lanes);
            for j in 0..lanes {
                local[rb + j] += v * x[cb + j];
                local[cb + j] += t * x[rb + j];
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights};
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    fn cfg() -> DetectConfig {
        DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        }
    }

    fn build(coo: &CooMatrix, p: usize) -> (SssMatrix, Vec<Range>, CsxSymMatrix) {
        let sss = SssMatrix::from_coo(coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
        let m = CsxSymMatrix::from_sss(&sss, &parts, &cfg());
        (sss, parts, m)
    }

    #[test]
    fn serial_spmv_matches_sss() {
        let coo = symspmv_sparse::gen::block_structural(40, 3, 6.0, 10, 21);
        let n = coo.nrows() as usize;
        let (sss, _, m) = build(&coo, 4);
        let x = seeded_vector(n, 3);
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        sss.spmv(&x, &mut y1);
        m.spmv_serial(&x, &mut y2);
        assert_vec_close(&y1, &y2, 1e-12);
    }

    #[test]
    fn chunks_respect_legality() {
        // Every substructure unit's transposed targets must be on one side
        // of its chunk's split.
        let coo = symspmv_sparse::gen::banded_random(600, 40, 12.0, 13);
        let (_, parts, m) = build(&coo, 4);
        for (chunk, part) in m.chunks().iter().zip(&parts) {
            let split = part.start;
            let mut units: Vec<(bool, u32)> = Vec::new();
            let mut cols: Vec<Idx> = Vec::new();
            chunk.stream.walk(
                |u| units.push((u.kind.is_some(), u.size)),
                |_, c, _| cols.push(c),
            );
            let mut off = 0usize;
            for (is_sub, size) in units {
                let elems = &cols[off..off + size as usize];
                off += size as usize;
                if is_sub {
                    let lo = elems.iter().any(|&c| c < split);
                    let hi = elems.iter().any(|&c| c >= split);
                    assert!(!(lo && hi), "substructure straddles split {split}");
                }
            }
            assert_eq!(off, cols.len());
        }
    }

    #[test]
    fn split_kernel_equivalent_to_serial() {
        let coo = symspmv_sparse::gen::banded_random(300, 25, 10.0, 8);
        let n = coo.nrows() as usize;
        let (sss, parts, m) = build(&coo, 3);
        let x = seeded_vector(n, 11);

        // Emulate the engine single-threaded: direct writes to y, local
        // writes to per-thread effective regions, then reduce.
        let mut y = vec![0.0; n];
        for r in 0..n {
            y[r] = m.dvalues()[r] * x[r];
        }
        let mut locals: Vec<Vec<f64>> = parts.iter().map(|p| vec![0.0; p.start as usize]).collect();
        for (i, chunk) in m.chunks().iter().enumerate() {
            let (start, end) = (parts[i].start as usize, parts[i].end as usize);
            spmv_sym_stream::<symspmv_sparse::symmetry::Sym>(
                &chunk.stream,
                chunk.paired_values(),
                &x,
                &mut y[start..end],
                start,
                &mut locals[i],
            );
        }
        for local in &locals {
            for (c, &v) in local.iter().enumerate() {
                y[c] += v;
            }
        }

        let mut y_ref = vec![0.0; n];
        sss.spmv(&x, &mut y_ref);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn local_only_kernel_equivalent() {
        let coo = symspmv_sparse::gen::laplacian_2d(15, 15);
        let n = 225;
        let (sss, _, m) = build(&coo, 2);
        let x = seeded_vector(n, 2);
        let mut acc = vec![0.0; n];
        for r in 0..n {
            acc[r] = m.dvalues()[r] * x[r];
        }
        for chunk in m.chunks() {
            spmv_sym_stream_local_only::<symspmv_sparse::symmetry::Sym>(
                &chunk.stream,
                chunk.paired_values(),
                &x,
                &mut acc,
            );
        }
        let mut y_ref = vec![0.0; n];
        sss.spmv(&x, &mut y_ref);
        assert_vec_close(&acc, &y_ref, 1e-12);
    }

    #[test]
    fn compression_ratios_sane() {
        let coo = symspmv_sparse::gen::block_structural(120, 3, 14.0, 20, 31);
        let (_, _, m) = build(&coo, 4);
        let cr = m.compression_ratio();
        let max = m.max_compression_ratio();
        assert!(
            cr > 0.30,
            "CSX-Sym should compress well on block matrices: {cr}"
        );
        assert!(
            cr <= max + 1e-9,
            "cr {cr} cannot beat the no-metadata floor {max}"
        );
        assert!(max < 0.70, "max CR is bounded by ~2/3: {max}");
        // SSS achieves at most 50% (paper, Table I caption): CSX-Sym must
        // beat it here.
        assert!(cr > 0.50 - 1e-9, "CSX-Sym below the SSS bound: {cr}");
    }

    #[test]
    fn full_nnz_model() {
        let coo = symspmv_sparse::gen::laplacian_2d(4, 4);
        let (sss, _, m) = build(&coo, 2);
        assert_eq!(m.full_nnz(), 2 * sss.lower_nnz() + 16);
    }
}
