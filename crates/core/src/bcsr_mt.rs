//! Multithreaded BCSR SpMV — the register-blocking baseline (related
//! work: SPARSITY / OSKI).
//!
//! Block rows are partitioned contiguously by stored-element count; each
//! thread writes only its own rows, so no reduction phase exists. Block
//! dimensions are auto-tuned at construction unless given explicitly.

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{balanced_ranges, ExecutionContext, PhaseTimes, Range};
use symspmv_sparse::bcsr::{choose_block_size, BcsrMatrix, BLOCK_CANDIDATES};
use symspmv_sparse::{CooMatrix, Val};

/// A block-row-partitioned BCSR kernel.
pub struct BcsrParallel {
    bcsr: BcsrMatrix,
    /// Block-row ranges per thread.
    parts: Vec<Range>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl BcsrParallel {
    /// Builds the kernel, auto-tuning the block dimensions (timed into the
    /// `preprocess` phase, like the other formats' construction).
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let mut times = PhaseTimes::new();
        let bcsr = time_into(&mut times.preprocess, || {
            let (br, bc) = choose_block_size(coo, &BLOCK_CANDIDATES);
            BcsrMatrix::from_coo(coo, br, bc)
        });
        Self::from_matrix_with_times(bcsr, ctx, times)
    }

    /// Builds the kernel with explicit block dimensions.
    pub fn with_blocks(coo: &CooMatrix, br: u32, bc: u32, ctx: &Arc<ExecutionContext>) -> Self {
        let mut times = PhaseTimes::new();
        let bcsr = time_into(&mut times.preprocess, || BcsrMatrix::from_coo(coo, br, bc));
        Self::from_matrix_with_times(bcsr, ctx, times)
    }

    fn from_matrix_with_times(
        bcsr: BcsrMatrix,
        ctx: &Arc<ExecutionContext>,
        times: PhaseTimes,
    ) -> Self {
        let weights = bcsr.blockrow_weights();
        let parts = balanced_ranges(&weights, ctx.nthreads());
        crate::plan::debug_certify_rows(weights.len() as u32, &parts, "bcsr-mt");
        BcsrParallel {
            bcsr,
            parts,
            ctx: Arc::clone(ctx),
            times,
        }
    }

    /// The underlying BCSR matrix.
    pub fn matrix(&self) -> &BcsrMatrix {
        &self.bcsr
    }
}

impl ParallelSpmv for BcsrParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        assert_eq!(y.len(), self.bcsr.nrows() as usize);
        let buf = SharedBuf::new(y);
        let bcsr = &self.bcsr;
        let parts = &self.parts;
        let n = bcsr.nrows() as usize;
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                let br = bcsr.block_dims().0;
                let row_lo = (part.start * br) as usize;
                let row_hi = ((part.end * br) as usize).min(n);
                // SAFETY(cert: disjoint-direct): block-row partitions own
                // disjoint row ranges;
                // spmv_blockrows indexes y absolutely, and this thread's
                // writes stay within [row_lo, row_hi).
                let full = unsafe { buf.full_mut() };
                full[row_lo..row_hi].fill(0.0);
                bcsr.spmv_blockrows(part.start, part.end, x, full);
            });
        });
    }

    fn n(&self) -> usize {
        self.bcsr.nrows() as usize
    }

    fn nnz_full(&self) -> usize {
        self.bcsr.true_nnz()
    }

    fn size_bytes(&self) -> usize {
        self.bcsr.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("bcsr")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn parallel_matches_reference() {
        let coo = symspmv_sparse::gen::block_structural(60, 3, 6.0, 15, 4);
        let n = coo.nrows() as usize;
        let x = seeded_vector(n, 3);
        let mut y_ref = vec![0.0; n];
        let mut canon = coo.clone();
        canon.canonicalize();
        canon.spmv_reference(&x, &mut y_ref);
        for p in [1usize, 2, 4, 7] {
            let ctx = ExecutionContext::new(p);
            let mut k = BcsrParallel::from_coo(&coo, &ctx);
            let mut y = vec![f64::NAN; n];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn autotune_picks_blocks_and_preprocess_timed() {
        let coo = symspmv_sparse::gen::block_structural(40, 3, 8.0, 10, 7);
        let k = BcsrParallel::from_coo(&coo, &ExecutionContext::new(2));
        assert_eq!(k.matrix().block_dims(), (3, 3));
        assert!(k.times().preprocess > std::time::Duration::ZERO);
        assert_eq!(k.name(), "bcsr");
    }

    #[test]
    fn explicit_blocks_respected() {
        let coo = symspmv_sparse::gen::laplacian_2d(10, 10);
        let k = BcsrParallel::with_blocks(&coo, 2, 2, &ExecutionContext::new(2));
        assert_eq!(k.matrix().block_dims(), (2, 2));
    }
}
