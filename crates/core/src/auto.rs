//! Cost-model plan selection and the [`SymSpmv::auto`] entry point.
//!
//! The paper fixes its recommendation (SSS + local-vectors indexing) from
//! measurements on two machines; the right `format × reduction strategy ×
//! thread count × lane width` point actually moves with matrix structure
//! and hardware. This module provides the *model* half of the auto-tuning
//! story (DESIGN.md §18):
//!
//! * [`PlanSpec`] — one point of the search space, serializable by tag;
//! * [`predicted_bytes`] — an Eq. 1–2 / Eq. 3–6 traffic model that ranks
//!   candidates from [`MatrixStats`] alone, without building anything;
//! * [`PlanAdvisor`] — the hook through which a persisted plan store (the
//!   measurement half, `symspmv-tune`) injects a tuned decision;
//! * [`SymSpmv::auto`] / [`SymSpmv::auto_with`] — constructors that consult
//!   an advisor when one is supplied and fall back to the cost model,
//!   recording which path was taken in the returned [`AutoChoice`].
//!
//! The model is a *pruning* device, not an oracle: it predicts per-vector
//! memory traffic under a linear-scaling assumption and is only trusted to
//! order candidates coarsely. Anything within the pruning band gets
//! measured by the tuner; the model alone decides only when no store entry
//! matches and no measurement budget is available.

use crate::error::SymSpmvError;
use crate::sym::{ReductionMethod, SymFormat, SymSpmv};
use crate::ws;
use std::sync::Arc;
use symspmv_csx::detect::DetectConfig;
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::stats::{matrix_stats, sss_size_bytes, MatrixStats};
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::{CooMatrix, SssMatrix};

/// Serializable handle for the three [`SymFormat`] families. [`SymFormat`]
/// itself carries a full [`DetectConfig`], which is the wrong thing to
/// persist in a plan store; the tag round-trips through its [`str`] name
/// and materializes with the experiment-default detection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatTag {
    /// Sparse Skyline storage.
    Sss,
    /// CSX-Sym delta/run compression.
    CsxSym,
    /// Per-chunk adaptive SSS/CSX-Sym hybrid.
    Hybrid,
}

impl FormatTag {
    /// Stable short name (`"sss"`, `"csxsym"`, `"hybrid"`) used in plan
    /// files and search tables.
    pub fn tag(&self) -> &'static str {
        match self {
            FormatTag::Sss => "sss",
            FormatTag::CsxSym => "csxsym",
            FormatTag::Hybrid => "hybrid",
        }
    }

    /// Parses a [`FormatTag::tag`] name back; `None` for unknown names.
    pub fn parse(name: &str) -> Option<FormatTag> {
        match name {
            "sss" => Some(FormatTag::Sss),
            "csxsym" => Some(FormatTag::CsxSym),
            "hybrid" => Some(FormatTag::Hybrid),
            _ => None,
        }
    }

    /// Materializes the tag as a buildable [`SymFormat`] with the default
    /// detection configuration (the same one the experiment drivers use).
    pub fn to_format(self) -> SymFormat {
        match self {
            FormatTag::Sss => SymFormat::Sss,
            FormatTag::CsxSym => SymFormat::CsxSym(DetectConfig::default()),
            FormatTag::Hybrid => SymFormat::Hybrid {
                csx: DetectConfig::default(),
                min_coverage: 0.5,
            },
        }
    }
}

/// One point of the tuning search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanSpec {
    /// Storage format family.
    pub format: FormatTag,
    /// Reduction strategy (Fig. 3 b/c/d).
    pub method: ReductionMethod,
    /// Worker-thread count the plan was selected for.
    pub nthreads: usize,
    /// Recommended SpMM lane width (1 = scalar SpMV).
    pub lanes: usize,
}

impl PlanSpec {
    /// Candidate identifier, e.g. `"csxsym-idx-p4-k8"` — stable across
    /// runs, used as the bench-ledger row id and in search tables.
    pub fn id(&self) -> String {
        format!(
            "{}-{}-p{}-k{}",
            self.format.tag(),
            self.method.tag(),
            self.nthreads,
            self.lanes
        )
    }

    /// Whether this spec is buildable at all: the hybrid format supports
    /// only the direct-write reduction strategies, and the race schedule
    /// supports the SSS format only.
    pub fn is_valid(&self) -> bool {
        if self.method == ReductionMethod::Race {
            return self.format == FormatTag::Sss;
        }
        !(self.format == FormatTag::Hybrid && self.method == ReductionMethod::Naive)
    }
}

/// Which path [`SymSpmv::auto_with`] took to its decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// A persisted tuned plan matched the (fingerprint, threads) key.
    Store,
    /// No stored plan matched; the Eq. 1–2/3–6 cost model decided.
    CostModel,
}

impl PlanSource {
    /// Short name for tables and ledgers (`"store"` / `"cost-model"`).
    pub fn tag(&self) -> &'static str {
        match self {
            PlanSource::Store => "store",
            PlanSource::CostModel => "cost-model",
        }
    }
}

/// The decision record returned alongside an auto-built engine.
#[derive(Debug, Clone)]
pub struct AutoChoice {
    /// The selected configuration.
    pub spec: PlanSpec,
    /// Where the decision came from.
    pub source: PlanSource,
    /// The model's predicted per-thread traffic for the choice, in bytes
    /// per multiplied vector (comparable across candidates only).
    pub predicted_bytes: f64,
}

/// A source of tuned plans consulted by [`SymSpmv::auto_with`] before the
/// cost model. Implemented by the persisted plan store in `symspmv-tune`;
/// kept object-safe and dependency-free so the engine crate stays below
/// the tuner in the crate graph.
pub trait PlanAdvisor {
    /// Returns the stored plan for this structure fingerprint if one
    /// matching the ambient machine key exists. `nthreads` is the thread
    /// count the caller will run with; advisors should only return plans
    /// tuned for it.
    fn lookup(&self, fingerprint: u64, nthreads: usize) -> Option<PlanSpec>;
}

/// Estimated on-disk/stream size in bytes of the matrix under `format`
/// (Eq. 1–2 plus a documented CSX compression proxy).
///
/// The CSX-Sym estimate shrinks the 4-byte column indices toward 1 byte as
/// the mean in-row column gap falls below the 1-byte delta range: entries
/// `avg_row_nnz` spread over `≈ 2·avg_entry_distance` columns have mean gap
/// `2·d̄/r̄`, and delta units only pay off inside that range. The hybrid
/// format adopts the stream encoding only where it pays, so its size is
/// modeled as the smaller of the two.
pub fn predicted_format_bytes(stats: &MatrixStats, kind: SymmetryKind, format: FormatTag) -> f64 {
    let n = stats.nrows as usize;
    // `stats.nnz` counts the stored full-matrix entries; the symmetric
    // kernels store the strict lower triangle plus the dense diagonal.
    let lower = stats.nnz.saturating_sub(n) / 2;
    let paired_upper = if kind == SymmetryKind::Structural {
        8.0 * lower as f64
    } else {
        0.0
    };
    let sss = sss_size_bytes(stats.nrows, lower) as f64 + paired_upper;
    match format {
        FormatTag::Sss => sss,
        FormatTag::CsxSym | FormatTag::Hybrid => {
            let mean_gap = (2.0 * stats.avg_entry_distance / stats.avg_row_nnz.max(1.0)).max(1.0);
            let idx_bytes_per_entry = 1.0 + 3.0 * (mean_gap / 255.0).min(1.0);
            let csx = sss - (4.0 - idx_bytes_per_entry) * lower as f64;
            if format == FormatTag::Hybrid {
                csx.min(sss)
            } else {
                csx
            }
        }
    }
}

/// Estimated reduction-phase working set in bytes (Eq. 3–6) from stats
/// alone. The indexing estimate uses the Eq. 5 entry form
/// `16 · conflicting entries`, with the conflict probability of an entry
/// approximated by how far the mean off-diagonal entry reaches relative to
/// the `N/p` partition height.
pub fn predicted_ws_bytes(stats: &MatrixStats, method: ReductionMethod, p: usize) -> f64 {
    let n = stats.nrows as usize;
    match method {
        ReductionMethod::Naive => ws::ws_naive(p, n) as f64,
        ReductionMethod::EffectiveRanges => ws::ws_effective(p, n) as f64,
        ReductionMethod::Indexing => {
            let lower = stats.nnz.saturating_sub(n) / 2;
            let cross = (stats.avg_entry_distance * p as f64 / n.max(1) as f64).min(1.0);
            16.0 * lower as f64 * cross
        }
        // The race schedule has no local vectors at all, but its group
        // barriers re-touch `y` once per color phase; charge one extra
        // `y`-sized stream so the scheme only wins where indexing's
        // conflict working set actually dominates.
        ReductionMethod::Race => 8.0 * n as f64,
    }
}

/// The full traffic model: predicted bytes moved per thread per multiplied
/// vector for one candidate. Matrix bytes amortize over the lane count
/// (one matrix stream feeds all lanes of an SpMM); the `x`/`y` vectors and
/// the reduction working set are paid per vector. Division by `p` encodes
/// the linear-scaling assumption — good enough to *order* candidates, not
/// to predict wall time.
pub fn predicted_bytes(stats: &MatrixStats, kind: SymmetryKind, spec: &PlanSpec) -> f64 {
    let n = stats.nrows as usize;
    let mat = predicted_format_bytes(stats, kind, spec.format) / spec.lanes.max(1) as f64;
    let vectors = 16.0 * n as f64;
    let reduction = predicted_ws_bytes(stats, spec.method, spec.nthreads);
    (mat + vectors + reduction) / spec.nthreads.max(1) as f64
}

/// Enumerates the candidate space `format × method × threads × lanes`,
/// scored by [`predicted_bytes`]. Invalid combinations (hybrid × naive)
/// are skipped. The result is unsorted; callers prune or rank it.
pub fn enumerate_candidates(
    stats: &MatrixStats,
    kind: SymmetryKind,
    threads: &[usize],
    lanes: &[usize],
) -> Vec<(PlanSpec, f64)> {
    let formats = [FormatTag::Sss, FormatTag::CsxSym, FormatTag::Hybrid];
    let methods = [
        ReductionMethod::Naive,
        ReductionMethod::EffectiveRanges,
        ReductionMethod::Indexing,
        ReductionMethod::Race,
    ];
    let mut out = Vec::new();
    for &format in &formats {
        for &method in &methods {
            for &nthreads in threads {
                for &k in lanes {
                    let spec = PlanSpec {
                        format,
                        method,
                        nthreads,
                        lanes: k,
                    };
                    if !spec.is_valid() {
                        continue;
                    }
                    let cost = predicted_bytes(stats, kind, &spec);
                    out.push((spec, cost));
                }
            }
        }
    }
    out
}

/// The model-only decision for a scalar SpMV at a fixed thread count: the
/// cheapest valid `format × method` point. This is the fallback
/// [`SymSpmv::auto_with`] uses when no advisor entry matches.
pub fn cost_model_choice(
    stats: &MatrixStats,
    kind: SymmetryKind,
    nthreads: usize,
) -> (PlanSpec, f64) {
    let candidates = enumerate_candidates(stats, kind, &[nthreads], &[1]);
    // The space is non-empty by construction (≥ 8 valid combinations) and
    // the model never produces NaN, so a missing minimum is unreachable.
    candidates
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or_else(|| unreachable!("candidate enumeration produced an empty space"))
}

impl SymSpmv {
    /// Builds the engine with an automatically selected format and
    /// reduction strategy: the pure cost-model path (no plan store).
    /// See [`SymSpmv::auto_with`] for the advisor-consulting variant.
    pub fn auto(
        ctx: &Arc<ExecutionContext>,
        coo: &CooMatrix,
    ) -> Result<(Self, AutoChoice), SymSpmvError> {
        Self::auto_with(ctx, coo, None)
    }

    /// Builds the engine from a symmetric COO matrix, consulting `advisor`
    /// (a persisted plan store) first and falling back to the Eq. 1–2/3–6
    /// cost model when no stored plan matches the matrix fingerprint and
    /// the context's thread count. The returned [`AutoChoice`] records
    /// which path decided.
    ///
    /// The engine is always built for the *given* context: a stored plan
    /// tuned at a different thread count is not consulted (the advisor is
    /// queried with `ctx.nthreads()`), so the plan actually used is always
    /// consistent with — and race-certified for — the executing pool.
    pub fn auto_with(
        ctx: &Arc<ExecutionContext>,
        coo: &CooMatrix,
        advisor: Option<&dyn PlanAdvisor>,
    ) -> Result<(Self, AutoChoice), SymSpmvError> {
        let sss = SssMatrix::try_from_coo(coo, 0.0)?;
        let stats = matrix_stats(coo);
        let kind = sss.kind();
        let fingerprint = sss.fingerprint();
        let nthreads = ctx.nthreads();

        let stored = advisor.and_then(|a| a.lookup(fingerprint, nthreads));
        let (spec, source) = match stored {
            Some(spec) if spec.is_valid() && spec.nthreads == nthreads => (spec, PlanSource::Store),
            _ => {
                let (spec, _) = cost_model_choice(&stats, kind, nthreads);
                (spec, PlanSource::CostModel)
            }
        };
        let predicted = predicted_bytes(&stats, kind, &spec);

        let engine = SymSpmv::from_sss(sss, ctx, spec.method, spec.format.to_format());
        // The certifier gate: whatever chose the plan, the engine may only
        // run it under a certificate valid for this exact configuration.
        engine
            .certificate()
            .validate_for(fingerprint, nthreads, "sym-sss", spec.method.tag())
            .map_err(|e| {
                SymSpmvError::InvalidStructure(symspmv_sparse::SparseError::Parse {
                    line: 0,
                    msg: format!("tuned plan failed race certification: {e}"),
                })
            })?;
        Ok((
            engine,
            AutoChoice {
                spec,
                source,
                predicted_bytes: predicted,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ParallelSpmv;
    use symspmv_sparse::gen;

    #[test]
    fn format_tags_round_trip() {
        for tag in [FormatTag::Sss, FormatTag::CsxSym, FormatTag::Hybrid] {
            assert_eq!(FormatTag::parse(tag.tag()), Some(tag));
        }
        assert_eq!(FormatTag::parse("bogus"), None);
    }

    #[test]
    fn enumeration_skips_hybrid_naive() {
        let coo = gen::laplacian_2d(16, 16);
        let stats = matrix_stats(&coo);
        let all = enumerate_candidates(&stats, SymmetryKind::Symmetric, &[1, 2], &[1, 8]);
        assert!(all
            .iter()
            .all(|(s, _)| !(s.format == FormatTag::Hybrid && s.method == ReductionMethod::Naive)));
        // 3 formats × 3 methods − hybrid-naive = 8 combos, × 2 threads × 2 lanes.
        assert_eq!(all.len(), 9 * 2 * 2);
        assert!(all.iter().all(|(_, c)| c.is_finite() && *c > 0.0));
    }

    #[test]
    fn naive_working_set_dominates_at_high_thread_counts() {
        let coo = gen::banded_random(4000, 8, 4.0, 11);
        let stats = matrix_stats(&coo);
        let naive = predicted_ws_bytes(&stats, ReductionMethod::Naive, 16);
        let idx = predicted_ws_bytes(&stats, ReductionMethod::Indexing, 16);
        assert!(
            idx < naive,
            "low-bandwidth banded matrix must predict idx ≪ naive (got {idx} vs {naive})"
        );
    }

    #[test]
    fn auto_builds_and_reports_cost_model_source() {
        let coo = gen::laplacian_2d(20, 20);
        let ctx = ExecutionContext::new(2);
        let (mut engine, choice) = SymSpmv::auto(&ctx, &coo).unwrap();
        assert_eq!(choice.source, PlanSource::CostModel);
        assert_eq!(choice.spec.nthreads, 2);
        let n = engine.n();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        engine.spmv(&x, &mut y);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    struct FixedAdvisor(PlanSpec);
    impl PlanAdvisor for FixedAdvisor {
        fn lookup(&self, _fp: u64, nthreads: usize) -> Option<PlanSpec> {
            (self.0.nthreads == nthreads).then_some(self.0)
        }
    }

    #[test]
    fn auto_with_prefers_a_matching_advisor() {
        let coo = gen::laplacian_2d(20, 20);
        let ctx = ExecutionContext::new(2);
        let spec = PlanSpec {
            format: FormatTag::Sss,
            method: ReductionMethod::EffectiveRanges,
            nthreads: 2,
            lanes: 1,
        };
        let (engine, choice) = SymSpmv::auto_with(&ctx, &coo, Some(&FixedAdvisor(spec))).unwrap();
        assert_eq!(choice.source, PlanSource::Store);
        assert_eq!(choice.spec, spec);
        assert_eq!(engine.method(), ReductionMethod::EffectiveRanges);
    }

    #[test]
    fn auto_with_falls_back_on_thread_mismatch() {
        let coo = gen::laplacian_2d(20, 20);
        let ctx = ExecutionContext::new(2);
        let spec = PlanSpec {
            format: FormatTag::Sss,
            method: ReductionMethod::Naive,
            nthreads: 8,
            lanes: 1,
        };
        let (_, choice) = SymSpmv::auto_with(&ctx, &coo, Some(&FixedAdvisor(spec))).unwrap();
        assert_eq!(choice.source, PlanSource::CostModel);
    }
}
