//! The common kernel interface of the measurement framework (§V-A).
//!
//! "We have built a common measurements framework that interfaces with the
//! storage format implementations through a well-defined sparse matrix-
//! vector multiplication interface" — this trait is that interface.

use std::borrow::Cow;
use std::sync::Arc;
use symspmv_runtime::{ExecutionContext, PhaseTimes};
use symspmv_sparse::Val;

/// A multithreaded SpMV kernel bound to one matrix and one
/// [`ExecutionContext`] (which supplies the shared worker pool and buffer
/// arena).
pub trait ParallelSpmv {
    /// Computes `y = A·x`.
    fn spmv(&mut self, x: &[Val], y: &mut [Val]);

    /// Matrix dimension `N` (all evaluation matrices are square).
    fn n(&self) -> usize;

    /// Non-zeros of the represented (full) matrix — defines the kernel's
    /// flop count as `2·NNZ` for Gflop/s accounting.
    fn nnz_full(&self) -> usize;

    /// Bytes of the storage representation (compression comparisons).
    fn size_bytes(&self) -> usize;

    /// Accumulated per-phase times since the last reset.
    fn times(&self) -> PhaseTimes;

    /// Resets the phase-time accumulators.
    fn reset_times(&mut self);

    /// Short kernel name for reports (e.g. `"csr"`, `"sss-idx"`). Borrowed
    /// (`'static`) for every built-in kernel so report loops do not
    /// allocate.
    fn name(&self) -> Cow<'static, str>;

    /// The execution context this kernel borrows its pool and buffers from.
    fn context(&self) -> &Arc<ExecutionContext>;

    /// Number of worker threads.
    fn nthreads(&self) -> usize {
        self.context().nthreads()
    }

    /// Floating-point operations per SpMV invocation.
    fn flops(&self) -> u64 {
        2 * self.nnz_full() as u64
    }
}
