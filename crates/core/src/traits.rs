//! The common kernel interface of the measurement framework (§V-A).
//!
//! "We have built a common measurements framework that interfaces with the
//! storage format implementations through a well-defined sparse matrix-
//! vector multiplication interface" — this trait is that interface.

use crate::error::SymSpmvError;
use std::any::Any;
use std::borrow::Cow;
use std::sync::Arc;
use symspmv_runtime::{ExecutionContext, Interrupt, ParallelSpmm, PhaseTimes};
use symspmv_sparse::block::VectorBlock;
use symspmv_sparse::Val;

/// Classifies a caught unwind from a parallel kernel into the typed error
/// it represents, shared by `try_spmv`, `try_spmm`, and the resilient
/// solver wrappers (which catch unwinds around a whole solve):
///
/// 1. a supervision [`Interrupt`] (cancellation / deadline, raised on the
///    calling thread at a pool checkpoint) becomes its typed error;
/// 2. a recorded worker panic becomes [`SymSpmvError::WorkerPanicked`];
/// 3. anything else is a genuine caller-thread panic (e.g. a dimension
///    assertion) and resumes unwinding.
pub fn classify_unwind(ctx: &ExecutionContext, payload: Box<dyn Any + Send>) -> SymSpmvError {
    match payload.downcast::<Interrupt>() {
        Ok(interrupt) => {
            // The checkpoint fired before any worker was dispatched (or
            // after the round drained); a panic recorded in the same call
            // is subordinate to the interrupt but must not leak.
            let _ = ctx.take_last_panic();
            SymSpmvError::from(*interrupt)
        }
        Err(payload) => match ctx.take_last_panic() {
            Some(info) => SymSpmvError::from(info),
            None => std::panic::resume_unwind(payload),
        },
    }
}

/// A multithreaded SpMV kernel bound to one matrix and one
/// [`ExecutionContext`] (which supplies the shared worker pool and buffer
/// arena).
pub trait ParallelSpmv {
    /// Computes `y = A·x`.
    fn spmv(&mut self, x: &[Val], y: &mut [Val]);

    /// Computes `y = A·x`, converting a worker-thread panic into a
    /// structured [`SymSpmvError::WorkerPanicked`] instead of unwinding.
    ///
    /// On `Err`, the context's pool has fully drained the failed round and
    /// the buffer arena invariant holds, so the kernel and context remain
    /// usable; `y` holds unspecified partial results. Supervision
    /// interrupts (cancellation, deadline) surface as
    /// [`SymSpmvError::Cancelled`] / [`SymSpmvError::DeadlineExceeded`].
    /// Panics raised on the *calling* thread (e.g. dimension-mismatch
    /// assertions) are not worker deaths and continue to unwind.
    fn try_spmv(&mut self, x: &[Val], y: &mut [Val]) -> Result<(), SymSpmvError> {
        let ctx = Arc::clone(self.context());
        // Clear any stale record so a pre-existing panic from an unrelated
        // kernel on the same context is not misattributed to this call.
        let _ = ctx.take_last_panic();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.spmv(x, y))) {
            Ok(()) => Ok(()),
            Err(payload) => Err(classify_unwind(&ctx, payload)),
        }
    }

    /// Matrix dimension `N` (all evaluation matrices are square).
    fn n(&self) -> usize;

    /// Non-zeros of the represented (full) matrix — defines the kernel's
    /// flop count as `2·NNZ` for Gflop/s accounting.
    fn nnz_full(&self) -> usize;

    /// Bytes of the storage representation (compression comparisons).
    fn size_bytes(&self) -> usize;

    /// Accumulated per-phase times since the last reset.
    fn times(&self) -> PhaseTimes;

    /// Resets the phase-time accumulators.
    fn reset_times(&mut self);

    /// Short kernel name for reports (e.g. `"csr"`, `"sss-idx"`). Borrowed
    /// (`'static`) for every built-in kernel so report loops do not
    /// allocate.
    fn name(&self) -> Cow<'static, str>;

    /// The execution context this kernel borrows its pool and buffers from.
    fn context(&self) -> &Arc<ExecutionContext>;

    /// Number of worker threads.
    fn nthreads(&self) -> usize {
        self.context().nthreads()
    }

    /// Floating-point operations per SpMV invocation.
    fn flops(&self) -> u64 {
        2 * self.nnz_full() as u64
    }
}

/// Fallible batched multiplication, mirroring [`ParallelSpmv::try_spmv`]
/// for the [`ParallelSpmm`] block path.
///
/// Lives in this crate (not `symspmv-runtime`, where `ParallelSpmm` is
/// defined) because the structured error type is this crate's
/// [`SymSpmvError`]. Blanket-implemented for every block kernel.
pub trait ParallelSpmmExt: ParallelSpmm {
    /// Computes `Y = A·X`, converting a worker-thread panic into a
    /// structured [`SymSpmvError::WorkerPanicked`] instead of unwinding.
    ///
    /// On `Err`, the context's pool has fully drained the failed round,
    /// every leased block buffer has been scrubbed back to the arena
    /// (the arena all-free-zero invariant holds), and the kernel and
    /// context remain usable; `y` holds unspecified partial results.
    /// Supervision interrupts (cancellation, deadline) surface as
    /// [`SymSpmvError::Cancelled`] / [`SymSpmvError::DeadlineExceeded`].
    /// Caller-thread panics (e.g. lane-mismatch assertions) are not worker
    /// deaths and continue to unwind.
    fn try_spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) -> Result<(), SymSpmvError> {
        let ctx = Arc::clone(self.spmm_context());
        let _ = ctx.take_last_panic();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.spmm(x, y))) {
            Ok(()) => Ok(()),
            Err(payload) => Err(classify_unwind(&ctx, payload)),
        }
    }
}

impl<T: ParallelSpmm + ?Sized> ParallelSpmmExt for T {}

/// A kernel exposing both the scalar ([`ParallelSpmv`]) and the batched
/// ([`ParallelSpmm`]) multiplication paths — the object type of the
/// conformance oracle and the block benchmarks.
pub trait BlockKernel: ParallelSpmv + ParallelSpmm {}

impl<T: ParallelSpmv + ParallelSpmm + ?Sized> BlockKernel for T {}

/// A kernel whose matrix structure can be described to the symbolic
/// certifier (`symspmv_verify::symbolic`) — the hook the static-analysis
/// layer uses to re-prove a live kernel's plan in `O(p + c)` without
/// re-walking the structure.
pub trait SymbolicDescribe {
    /// The structure axioms of the backing matrix, or `None` when the
    /// storage no longer exposes the row-wise SSS structure the facts are
    /// distilled from (e.g. a pure CSX-Sym stream encoding).
    fn structure_facts(&self) -> Option<symspmv_verify::StructureFacts>;

    /// Re-certifies the kernel's current plan symbolically. `None` when
    /// [`SymbolicDescribe::structure_facts`] is unavailable; otherwise the
    /// symbolic certifier's verdict, which must match the enumerative
    /// certificate minted at plan time (modulo the recorded proof form).
    fn recertify_symbolic(
        &self,
    ) -> Option<Result<symspmv_verify::RaceCertificate, symspmv_verify::VerifyError>>;
}
