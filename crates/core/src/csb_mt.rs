//! Multithreaded CSB kernels — the related-work comparators of §VI.
//!
//! [`CsbParallel`] is the unsymmetric CSB SpMV (blockrow-parallel, writes
//! trivially disjoint). [`CsbSymParallel`] follows the symmetric scheme of
//! Buluç et al. (ref. 27): the strict lower triangle is processed blockrow
//! by blockrow; transposed updates landing in a narrow *band* just below
//! the thread's partition go to a small per-thread buffer (a bounded
//! reduction), while updates beyond the band — and all shared-row
//! accumulations — use atomic operations. On high-bandwidth matrices most
//! transposed updates fall outside the band, which is exactly why the
//! paper predicts this design "is expected to be bound by the atomic
//! operations".

use crate::shared::SharedBuf;
use crate::traits::ParallelSpmv;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use symspmv_csb::{CsbMatrix, CsbSymMatrix};
use symspmv_runtime::timing::time_into;
use symspmv_runtime::{balanced_ranges, ExecutionContext, ParallelSpmm, PhaseTimes, Range};
use symspmv_sparse::block::VectorBlock;
use symspmv_sparse::symmetry::{SymmetryKind, SymmetryOps};
use symspmv_sparse::{with_symmetry_ops, CooMatrix, SparseError, Val};

/// Blockrow-partitioned unsymmetric CSB SpMV.
pub struct CsbParallel {
    csb: CsbMatrix,
    /// Blockrow ranges per thread.
    parts: Vec<Range>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl CsbParallel {
    /// Builds the kernel (automatic β).
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let csb = CsbMatrix::from_coo(coo);
        let weights = csb.blockrow_weights();
        let parts = balanced_ranges(&weights, ctx.nthreads());
        crate::plan::debug_certify_rows(weights.len() as u32, &parts, "csb-mt");
        CsbParallel {
            csb,
            parts,
            ctx: Arc::clone(ctx),
            times: PhaseTimes::new(),
        }
    }

    /// The underlying CSB matrix.
    pub fn matrix(&self) -> &CsbMatrix {
        &self.csb
    }
}

impl ParallelSpmv for CsbParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        assert_eq!(y.len(), self.csb.nrows() as usize);
        let buf = SharedBuf::new(y);
        let csb = &self.csb;
        let parts = &self.parts;
        let n = csb.nrows();
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                let beta = csb.beta();
                let row_lo = (part.start * beta) as usize;
                let row_hi = ((part.end * beta).min(n)) as usize;
                // SAFETY(cert: disjoint-direct): blockrow partitions own
                // disjoint row ranges.
                let my = unsafe { buf.range_mut(row_lo, row_hi) };
                my.fill(0.0);
                for bi in part.start..part.end {
                    let lo = ((bi - part.start) * beta) as usize;
                    let hi = my.len().min(lo + beta as usize);
                    csb.spmv_blockrow(bi, x, &mut my[lo..hi]);
                }
            });
        });
    }

    fn n(&self) -> usize {
        self.csb.nrows() as usize
    }

    fn nnz_full(&self) -> usize {
        self.csb.nnz()
    }

    fn size_bytes(&self) -> usize {
        self.csb.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("csb")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

/// Atomically performs `slot += v` on an `f64` viewed as bits.
#[inline]
fn atomic_add_f64(slot: &AtomicU64, v: Val) {
    // RELAXED(only the slot's own value is contended — the CAS retry loop
    // makes the read-modify-write atomic per slot, and the round barrier
    // publishes all slots before any cross-thread read)
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + v;
        // RELAXED(same per-slot argument as the load above)
        match slot.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Symmetric CSB SpMV with banded local buffers + atomic far updates.
pub struct CsbSymParallel {
    sym: CsbSymMatrix,
    /// Blockrow ranges per thread.
    parts: Vec<Range>,
    /// Start row of each thread's partition.
    row_starts: Vec<usize>,
    /// Band width (rows below the partition start buffered locally).
    band: usize,
    /// Row chunks for the band reduction and the diagonal init.
    chunks: Vec<Range>,
    ctx: Arc<ExecutionContext>,
    times: PhaseTimes,
}

impl CsbSymParallel {
    /// Builds the kernel from a full symmetric COO matrix.
    pub fn from_coo(coo: &CooMatrix, ctx: &Arc<ExecutionContext>) -> Result<Self, SparseError> {
        Self::from_coo_kind(coo, SymmetryKind::Symmetric, ctx)
    }

    /// Builds the kernel from a full COO matrix with an explicit
    /// [`SymmetryKind`].
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        ctx: &Arc<ExecutionContext>,
    ) -> Result<Self, SparseError> {
        let sym = CsbSymMatrix::from_coo_kind(coo, kind, None)?;
        Ok(Self::from_matrix(sym, ctx))
    }

    /// Builds the kernel from prepared CSB-Sym storage.
    pub fn from_matrix(sym: CsbSymMatrix, ctx: &Arc<ExecutionContext>) -> Self {
        let nthreads = ctx.nthreads();
        let lower = sym.lower();
        let beta = lower.beta();
        let weights = lower.blockrow_weights();
        let parts = balanced_ranges(&weights, nthreads);
        crate::plan::debug_certify_rows(weights.len() as u32, &parts, "csb-sym");
        let n = sym.n() as usize;
        let row_starts: Vec<usize> = parts
            .iter()
            .map(|p| ((p.start * beta) as usize).min(n))
            .collect();
        // "Three innermost block diagonals" ≈ a band of two block rows.
        let band = (2 * beta as usize).min(n);
        let chunks = balanced_ranges(&vec![1u64; n], nthreads);
        CsbSymParallel {
            sym,
            parts,
            row_starts,
            band,
            chunks,
            ctx: Arc::clone(ctx),
            times: PhaseTimes::new(),
        }
    }

    /// Band width in rows.
    pub fn band(&self) -> usize {
        self.band
    }
}

impl ParallelSpmv for CsbSymParallel {
    fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
        let n = self.sym.n() as usize;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        let y_buf = SharedBuf::new(y);
        // Band buffers come from the shared arena: leased zeroed, returned
        // zeroed by the phase-C fold.
        let mut bands = self.ctx.lease(self.band * self.parts.len());
        let bands_buf = SharedBuf::new(&mut bands);
        let sym = &self.sym;
        let parts = &self.parts;
        let row_starts = &self.row_starts;
        let band = self.band;
        let chunks = &self.chunks;
        let p = parts.len();

        // Phase A: diagonal init, row-parallel plain writes.
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let chunk = chunks[tid];
                // SAFETY(cert: disjoint-direct): chunks tile 0..N disjointly.
                let my = unsafe { y_buf.range_mut(chunk.start as usize, chunk.end as usize) };
                let dv = &sym.dvalues()[chunk.start as usize..chunk.end as usize];
                let xs = &x[chunk.start as usize..chunk.end as usize];
                for ((slot, &d), &xi) in my.iter_mut().zip(dv).zip(xs) {
                    *slot = d * xi;
                }
            });

            // Phase B: off-diagonal products. All y updates are atomic
            // (any row may receive far transposed updates from any
            // thread); band-local transposed updates go to plain buffers.
            // The transposed value is `O::transposed(v, u)` per the
            // matrix's symmetry kind; the band/atomic split is structural
            // and kind-independent.
            with_symmetry_ops!(sym.kind(), O => self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                let lower = sym.lower();
                let paired = sym.paired_values();
                let beta = lower.beta();
                let start = row_starts[tid];
                let band_lo = start.saturating_sub(band);
                // SAFETY(cert: band-private): band region tid is
                // thread-private until the merge barrier.
                let my_band = unsafe { bands_buf.range_mut(tid * band, (tid + 1) * band) };
                // SAFETY(cert: atomic-view): AtomicU64 shares u64/f64
                // layout; phase A ended with a barrier, phase C starts
                // with one.
                let y_atomic: &[AtomicU64] = unsafe {
                    std::slice::from_raw_parts(y_buf.full_mut().as_ptr() as *const AtomicU64, n)
                };
                let mut scratch = vec![0.0; beta as usize];
                for bi in part.start..part.end {
                    let roff = (bi * beta) as usize;
                    let rows_here = (beta as usize).min(n - roff);
                    scratch[..rows_here].fill(0.0);
                    for bj in 0..lower.nbc() {
                        let coff = (bj * beta) as usize;
                        for k in lower.block_range(bi, bj) {
                            let (lr, lc, v) = sym.element(k);
                            let (r, c) = (roff + lr, coff + lc);
                            scratch[lr] += v * x[c];
                            let t = O::transposed(v, paired[k]) * x[r];
                            if c >= band_lo && c < start {
                                my_band[c - band_lo] += t;
                            } else {
                                atomic_add_f64(&y_atomic[c], t);
                            }
                        }
                    }
                    for (lr, &s) in scratch[..rows_here].iter().enumerate() {
                        if s != 0.0 {
                            atomic_add_f64(&y_atomic[roff + lr], s);
                        }
                    }
                }
            }));
        });

        // Phase C: fold the band buffers into y (row-parallel; a row may be
        // covered by several threads' bands, each chunk row is owned by
        // exactly one reduction thread).
        time_into(&mut self.times.reduce, || {
            self.ctx.run(&|tid| {
                let chunk = chunks[tid];
                for (i, &start) in row_starts.iter().enumerate().take(p).skip(1) {
                    let band_lo = start.saturating_sub(band);
                    let lo = band_lo.max(chunk.start as usize);
                    let hi = start.min(chunk.end as usize);
                    if lo >= hi {
                        continue;
                    }
                    for r in lo..hi {
                        let k = i * band + (r - band_lo);
                        // SAFETY(cert: reduction-slice): row r belongs to
                        // this reduction thread; band slot (i, r) is
                        // visited exactly once.
                        unsafe {
                            let v = bands_buf.get(k);
                            if v != 0.0 {
                                y_buf.add(r, v);
                                bands_buf.set(k, 0.0);
                            }
                        }
                    }
                }
            });
        });
    }

    fn n(&self) -> usize {
        self.sym.n() as usize
    }

    fn nnz_full(&self) -> usize {
        self.sym.full_nnz()
    }

    fn size_bytes(&self) -> usize {
        self.sym.size_bytes()
    }

    fn times(&self) -> PhaseTimes {
        self.times
    }

    fn reset_times(&mut self) {
        self.times = PhaseTimes::new();
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("csb-sym")
    }

    fn context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

impl ParallelSpmm for CsbSymParallel {
    fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) {
        let n = self.sym.n() as usize;
        assert_eq!(x.n(), n);
        assert_eq!(y.n(), n);
        assert_eq!(x.lanes(), y.lanes());
        let lanes = x.lanes();
        let y_buf = SharedBuf::new(y.as_mut_slice());
        // Lane-scaled band buffers: the scalar band slot (tid, r) becomes
        // the lane group [(tid·band + r)·lanes, …+lanes). Leased zeroed,
        // returned zeroed by the phase-C fold (and scrubbed on unwind).
        let mut bands = self.ctx.lease(self.band * self.parts.len() * lanes);
        let bands_buf = SharedBuf::new(&mut bands);
        let sym = &self.sym;
        let parts = &self.parts;
        let row_starts = &self.row_starts;
        let band = self.band;
        let chunks = &self.chunks;
        let p = parts.len();
        let xs = x.as_slice();

        // Phase A: diagonal init, row-parallel plain writes.
        time_into(&mut self.times.multiply, || {
            self.ctx.run(&|tid| {
                let chunk = chunks[tid];
                // SAFETY(cert: lane-lifted): chunks tile 0..N disjointly,
                // so their lane groups tile 0..N*lanes disjointly.
                let my = unsafe {
                    y_buf.range_mut(chunk.start as usize * lanes, chunk.end as usize * lanes)
                };
                let dv = &sym.dvalues()[chunk.start as usize..chunk.end as usize];
                for (i, &d) in dv.iter().enumerate() {
                    let xr = &xs[(chunk.start as usize + i) * lanes..][..lanes];
                    for (slot, &xj) in my[i * lanes..(i + 1) * lanes].iter_mut().zip(xr) {
                        *slot = d * xj;
                    }
                }
            });

            // Phase B: off-diagonal products; same banded/atomic split as
            // the scalar kernel, applied to each lane of the group.
            with_symmetry_ops!(sym.kind(), O => self.ctx.run(&|tid| {
                let part = parts[tid];
                if part.is_empty() {
                    return;
                }
                let lower = sym.lower();
                let paired = sym.paired_values();
                let beta = lower.beta();
                let start = row_starts[tid];
                let band_lo = start.saturating_sub(band);
                let band_w = band * lanes;
                // SAFETY(cert: band-private): band region tid is
                // thread-private until the merge barrier.
                let my_band = unsafe { bands_buf.range_mut(tid * band_w, (tid + 1) * band_w) };
                // SAFETY(cert: atomic-view): AtomicU64 shares u64/f64
                // layout; phase A ended with a barrier, phase C starts
                // with one.
                let y_atomic: &[AtomicU64] = unsafe {
                    std::slice::from_raw_parts(
                        y_buf.full_mut().as_ptr() as *const AtomicU64,
                        n * lanes,
                    )
                };
                let mut scratch = vec![0.0; beta as usize * lanes];
                for bi in part.start..part.end {
                    let roff = (bi * beta) as usize;
                    let rows_here = (beta as usize).min(n - roff);
                    scratch[..rows_here * lanes].fill(0.0);
                    for bj in 0..lower.nbc() {
                        let coff = (bj * beta) as usize;
                        for k in lower.block_range(bi, bj) {
                            let (lr, lc, v) = sym.element(k);
                            let (r, c) = (roff + lr, coff + lc);
                            let xc = &xs[c * lanes..(c + 1) * lanes];
                            let xr = &xs[r * lanes..(r + 1) * lanes];
                            for (s, &xj) in scratch[lr * lanes..(lr + 1) * lanes].iter_mut().zip(xc)
                            {
                                *s += v * xj;
                            }
                            let t = O::transposed(v, paired[k]);
                            if c >= band_lo && c < start {
                                let bb = (c - band_lo) * lanes;
                                for (s, &xj) in my_band[bb..bb + lanes].iter_mut().zip(xr) {
                                    *s += t * xj;
                                }
                            } else {
                                for (j, &xj) in xr.iter().enumerate() {
                                    atomic_add_f64(&y_atomic[c * lanes + j], t * xj);
                                }
                            }
                        }
                    }
                    for lr in 0..rows_here {
                        for (j, &s) in scratch[lr * lanes..(lr + 1) * lanes].iter().enumerate() {
                            if s != 0.0 {
                                atomic_add_f64(&y_atomic[(roff + lr) * lanes + j], s);
                            }
                        }
                    }
                }
            }));
        });

        // Phase C: fold the band buffers into y, lane group at a time.
        time_into(&mut self.times.reduce, || {
            self.ctx.run(&|tid| {
                let chunk = chunks[tid];
                for (i, &start) in row_starts.iter().enumerate().take(p).skip(1) {
                    let band_lo = start.saturating_sub(band);
                    let lo = band_lo.max(chunk.start as usize);
                    let hi = start.min(chunk.end as usize);
                    if lo >= hi {
                        continue;
                    }
                    for r in lo..hi {
                        let k = (i * band + (r - band_lo)) * lanes;
                        for j in 0..lanes {
                            // SAFETY(cert: lane-lifted): row r belongs to
                            // this reduction thread; band lane slot
                            // (i, r, j) is visited exactly once.
                            unsafe {
                                let v = bands_buf.get(k + j);
                                if v != 0.0 {
                                    y_buf.add(r * lanes + j, v);
                                    bands_buf.set(k + j, 0.0);
                                }
                            }
                        }
                    }
                }
            });
        });
    }

    fn spmm_context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};
    use symspmv_sparse::SssMatrix;

    #[test]
    fn csb_parallel_matches_serial() {
        let coo = symspmv_sparse::gen::banded_random(500, 30, 9.0, 3);
        let csb = CsbMatrix::from_coo(&coo);
        let x = seeded_vector(500, 7);
        let mut y_ref = vec![0.0; 500];
        csb.spmv(&x, &mut y_ref);
        for p in [1usize, 2, 4, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsbParallel::from_coo(&coo, &ctx);
            let mut y = vec![f64::NAN; 500];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn csb_sym_matches_sss_banded() {
        let coo = symspmv_sparse::gen::banded_random(600, 25, 8.0, 5);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(600, 2);
        let mut y_ref = vec![0.0; 600];
        sss.spmv(&x, &mut y_ref);
        for p in [1usize, 2, 3, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsbSymParallel::from_coo(&coo, &ctx).unwrap();
            let mut y = vec![f64::NAN; 600];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
            // Second call re-zeroes the bands.
            let mut y2 = vec![f64::NAN; 600];
            k.spmv(&x, &mut y2);
            assert_vec_close(&y2, &y_ref, 1e-12);
        }
    }

    #[test]
    fn csb_sym_matches_on_scattered_matrix() {
        // High-bandwidth: most transposed writes take the atomic path.
        let coo = symspmv_sparse::gen::mixed_bandwidth(400, 8.0, 0.3, 6, 11);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = seeded_vector(400, 9);
        let mut y_ref = vec![0.0; 400];
        sss.spmv(&x, &mut y_ref);
        let ctx = ExecutionContext::new(5);
        let mut k = CsbSymParallel::from_coo(&coo, &ctx).unwrap();
        for _ in 0..10 {
            let mut y = vec![0.0; 400];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn csb_sym_spmm_single_thread_bitwise() {
        let coo = symspmv_sparse::gen::banded_random(300, 15, 7.0, 13);
        let ctx = ExecutionContext::new(1);
        let mut k = CsbSymParallel::from_coo(&coo, &ctx).unwrap();
        for lanes in [2usize, 4] {
            let x = VectorBlock::seeded(300, lanes, 21);
            let mut y = VectorBlock::zeros(300, lanes);
            k.spmm(&x, &mut y);
            for j in 0..lanes {
                let mut yj = vec![0.0; 300];
                k.spmv(&x.lane(j), &mut yj);
                assert_eq!(
                    y.lane(j).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    yj.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "lane {j} not bit-identical at p=1"
                );
            }
        }
    }

    #[test]
    fn csb_sym_spmm_parallel_matches_reference() {
        let coo = symspmv_sparse::gen::mixed_bandwidth(400, 8.0, 0.3, 6, 17);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        for p in [2usize, 3, 8] {
            let ctx = ExecutionContext::new(p);
            let mut k = CsbSymParallel::from_coo(&coo, &ctx).unwrap();
            let lanes = 4;
            let x = VectorBlock::seeded(400, lanes, 5);
            let mut y = VectorBlock::zeros(400, lanes);
            k.spmm(&x, &mut y);
            // Repeat to prove the lane-scaled bands were re-zeroed.
            k.spmm(&x, &mut y);
            for j in 0..lanes {
                let mut y_ref = vec![0.0; 400];
                sss.spmv(&x.lane(j), &mut y_ref);
                assert_vec_close(&y.lane(j), &y_ref, 1e-12);
            }
        }
    }

    #[test]
    fn interface_metadata() {
        let coo = symspmv_sparse::gen::laplacian_2d(12, 12);
        let ctx = ExecutionContext::new(2);
        let k = CsbParallel::from_coo(&coo, &ctx);
        assert_eq!(k.name(), "csb");
        let ks = CsbSymParallel::from_coo(&coo, &ctx).unwrap();
        assert_eq!(ks.name(), "csb-sym");
        assert!(ks.band() > 0);
        assert!(ks.size_bytes() < k.size_bytes());
    }
}
