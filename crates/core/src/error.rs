//! The workspace-wide error taxonomy.
//!
//! [`SymSpmvError`] is the one error type callers above the format layer
//! (kernels, solvers, the harness) need to handle. It classifies every
//! failure into a small set of recoverable categories:
//!
//! * **`Parse`** — the input file could not be read or understood
//!   (I/O failures, malformed MatrixMarket syntax);
//! * **`InvalidStructure`** — the file parsed but describes a matrix the
//!   requested format rejects: asymmetry, out-of-range or duplicate
//!   indices, non-finite values, index overflow;
//! * **`NotSpd` / `Diverged` / `NonFiniteResidual`** — a solver detected
//!   numerical breakdown instead of silently emitting garbage;
//! * **`WorkerPanicked`** — a pool worker died mid-kernel; the round
//!   drained, the context healed, and the panic is reported as data;
//! * **`UnknownStrategy`** — a reduction strategy name not present in the
//!   context registry.
//!
//! `From<SparseError>` performs the `Parse` vs `InvalidStructure`
//! classification, so `?` works across the crate boundary.

use std::fmt;
use symspmv_runtime::{Interrupt, WorkerPanicInfo};
use symspmv_sparse::SparseError;

/// Structured error for every failure mode of the symmetric-SpMV stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SymSpmvError {
    /// The input could not be read or parsed (I/O or syntax).
    Parse(SparseError),
    /// The input parsed but fails structural validation for the requested
    /// format (asymmetry, bad indices, duplicates, non-finite values…).
    InvalidStructure(SparseError),
    /// CG breakdown: the operator is not symmetric positive definite
    /// (`pᵀAp ≤ 0` with a non-negligible residual).
    NotSpd {
        /// Iteration at which the breakdown was detected.
        iteration: usize,
        /// The offending curvature value `pᵀAp`.
        pap: f64,
    },
    /// The iteration stopped making progress and the residual grew beyond
    /// the divergence threshold.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Relative residual norm at that iteration.
        relative_residual: f64,
    },
    /// The residual became NaN or infinite.
    NonFiniteResidual {
        /// Iteration at which the residual left the finite range.
        iteration: usize,
    },
    /// A worker thread panicked during a parallel kernel; the pool drained
    /// the round and remains usable.
    WorkerPanicked {
        /// Thread id of the worker that died.
        tid: usize,
        /// Rendered panic message.
        message: String,
    },
    /// No reduction strategy of this name is registered with the context.
    UnknownStrategy {
        /// The name that failed to resolve.
        name: String,
    },
    /// The request's cancellation token was cancelled; the kernel stopped
    /// at the next cooperative checkpoint and the context healed.
    Cancelled,
    /// The request's deadline passed before the kernel finished.
    DeadlineExceeded {
        /// `true` when a worker overran the deadline mid-round and the
        /// round-watchdog marked the pool Wedged while it drained; `false`
        /// when the deadline simply expired between rounds.
        wedged: bool,
    },
    /// The shared pool is currently Wedged (a round is overrunning its
    /// deadline); the request was refused without queueing on the pool so
    /// it can be served by the degraded-mode fallback instead.
    PoolWedged,
    /// A bounded [`RetryPolicy`](crate::RetryPolicy) exhausted its attempts
    /// without a successful run.
    RetriesExhausted {
        /// Attempts made (equal to the policy's `max_attempts`).
        attempts: usize,
        /// The error from the final attempt.
        last: Box<SymSpmvError>,
    },
}

impl fmt::Display for SymSpmvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymSpmvError::Parse(e) => write!(f, "failed to read matrix: {e}"),
            SymSpmvError::InvalidStructure(e) => write!(f, "invalid matrix structure: {e}"),
            SymSpmvError::NotSpd { iteration, pap } => write!(
                f,
                "CG breakdown at iteration {iteration}: matrix is not positive definite \
                 (p^T A p = {pap:e})"
            ),
            SymSpmvError::Diverged {
                iteration,
                relative_residual,
            } => write!(
                f,
                "solver diverged at iteration {iteration} \
                 (relative residual {relative_residual:e})"
            ),
            SymSpmvError::NonFiniteResidual { iteration } => {
                write!(f, "residual became non-finite at iteration {iteration}")
            }
            SymSpmvError::WorkerPanicked { tid, message } => {
                write!(f, "worker thread {tid} panicked during a kernel: {message}")
            }
            SymSpmvError::UnknownStrategy { name } => {
                write!(f, "no reduction strategy named {name:?} is registered")
            }
            SymSpmvError::Cancelled => {
                write!(f, "request cancelled at a cooperative checkpoint")
            }
            SymSpmvError::DeadlineExceeded { wedged: true } => write!(
                f,
                "request deadline exceeded: a worker overran the deadline mid-round \
                 (pool was marked Wedged while the round drained)"
            ),
            SymSpmvError::DeadlineExceeded { wedged: false } => {
                write!(f, "request deadline exceeded between parallel rounds")
            }
            SymSpmvError::PoolWedged => write!(
                f,
                "worker pool is Wedged (a round is overrunning its deadline); \
                 request refused — retry or use the serial fallback"
            ),
            SymSpmvError::RetriesExhausted { attempts, last } => write!(
                f,
                "retry policy exhausted after {attempts} attempt(s); last error: {last}"
            ),
        }
    }
}

impl std::error::Error for SymSpmvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SymSpmvError::Parse(e) | SymSpmvError::InvalidStructure(e) => Some(e),
            SymSpmvError::RetriesExhausted { last, .. } => Some(&**last),
            _ => None,
        }
    }
}

impl From<SparseError> for SymSpmvError {
    /// Classifies a [`SparseError`]: structural rejections become
    /// [`SymSpmvError::InvalidStructure`], I/O and syntax failures become
    /// [`SymSpmvError::Parse`].
    fn from(e: SparseError) -> Self {
        if e.is_structural() {
            SymSpmvError::InvalidStructure(e)
        } else {
            SymSpmvError::Parse(e)
        }
    }
}

impl From<WorkerPanicInfo> for SymSpmvError {
    fn from(info: WorkerPanicInfo) -> Self {
        SymSpmvError::WorkerPanicked {
            tid: info.tid,
            message: info.message,
        }
    }
}

impl From<Interrupt> for SymSpmvError {
    /// Maps a supervision interrupt (raised at a pool checkpoint and caught
    /// by the fallible kernel entry points) to its typed error.
    fn from(i: Interrupt) -> Self {
        match i {
            Interrupt::Cancelled => SymSpmvError::Cancelled,
            Interrupt::DeadlineExceeded { wedged } => SymSpmvError::DeadlineExceeded { wedged },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_errors_classify_by_structure() {
        let io_like = SparseError::Parse {
            line: 3,
            msg: "bad value".into(),
        };
        assert!(matches!(
            SymSpmvError::from(io_like),
            SymSpmvError::Parse(_)
        ));

        let structural = SparseError::NotSymmetric { row: 1, col: 2 };
        assert!(matches!(
            SymSpmvError::from(structural),
            SymSpmvError::InvalidStructure(_)
        ));
    }

    #[test]
    fn display_messages_are_actionable() {
        let e = SymSpmvError::NotSpd {
            iteration: 7,
            pap: -1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("iteration 7"), "{msg}");
        assert!(msg.contains("not positive definite"), "{msg}");

        let w = SymSpmvError::WorkerPanicked {
            tid: 2,
            message: "index out of bounds".into(),
        };
        assert!(w.to_string().contains("worker thread 2"));
    }

    #[test]
    fn worker_panic_info_converts() {
        let info = WorkerPanicInfo {
            tid: 5,
            message: "boom".into(),
        };
        assert_eq!(
            SymSpmvError::from(info),
            SymSpmvError::WorkerPanicked {
                tid: 5,
                message: "boom".into()
            }
        );
    }

    #[test]
    fn interrupts_convert_to_typed_errors() {
        assert_eq!(
            SymSpmvError::from(Interrupt::Cancelled),
            SymSpmvError::Cancelled
        );
        assert_eq!(
            SymSpmvError::from(Interrupt::DeadlineExceeded { wedged: true }),
            SymSpmvError::DeadlineExceeded { wedged: true }
        );
    }

    #[test]
    fn resilience_errors_display_and_chain() {
        use std::error::Error;
        let e = SymSpmvError::RetriesExhausted {
            attempts: 3,
            last: Box::new(SymSpmvError::WorkerPanicked {
                tid: 1,
                message: "boom".into(),
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("3 attempt"), "{msg}");
        assert!(msg.contains("worker thread 1"), "{msg}");
        assert!(e.source().is_some(), "last error is the source");

        assert!(SymSpmvError::PoolWedged.to_string().contains("Wedged"));
        assert!(SymSpmvError::Cancelled.to_string().contains("cancelled"));
        assert!(SymSpmvError::DeadlineExceeded { wedged: true }
            .to_string()
            .contains("Wedged"));
    }

    #[test]
    fn source_chains_to_sparse_error() {
        use std::error::Error;
        let e = SymSpmvError::InvalidStructure(SparseError::NotSymmetric { row: 0, col: 1 });
        assert!(e.source().is_some());
        let n = SymSpmvError::NonFiniteResidual { iteration: 1 };
        assert!(n.source().is_none());
    }
}
