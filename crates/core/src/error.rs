//! The workspace-wide error taxonomy.
//!
//! [`SymSpmvError`] is the one error type callers above the format layer
//! (kernels, solvers, the harness) need to handle. It classifies every
//! failure into a small set of recoverable categories:
//!
//! * **`Parse`** — the input file could not be read or understood
//!   (I/O failures, malformed MatrixMarket syntax);
//! * **`InvalidStructure`** — the file parsed but describes a matrix the
//!   requested format rejects: asymmetry, out-of-range or duplicate
//!   indices, non-finite values, index overflow;
//! * **`NotSpd` / `Diverged` / `NonFiniteResidual`** — a solver detected
//!   numerical breakdown instead of silently emitting garbage;
//! * **`WorkerPanicked`** — a pool worker died mid-kernel; the round
//!   drained, the context healed, and the panic is reported as data;
//! * **`UnknownStrategy`** — a reduction strategy name not present in the
//!   context registry.
//!
//! `From<SparseError>` performs the `Parse` vs `InvalidStructure`
//! classification, so `?` works across the crate boundary.

use std::fmt;
use symspmv_runtime::WorkerPanicInfo;
use symspmv_sparse::SparseError;

/// Structured error for every failure mode of the symmetric-SpMV stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SymSpmvError {
    /// The input could not be read or parsed (I/O or syntax).
    Parse(SparseError),
    /// The input parsed but fails structural validation for the requested
    /// format (asymmetry, bad indices, duplicates, non-finite values…).
    InvalidStructure(SparseError),
    /// CG breakdown: the operator is not symmetric positive definite
    /// (`pᵀAp ≤ 0` with a non-negligible residual).
    NotSpd {
        /// Iteration at which the breakdown was detected.
        iteration: usize,
        /// The offending curvature value `pᵀAp`.
        pap: f64,
    },
    /// The iteration stopped making progress and the residual grew beyond
    /// the divergence threshold.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Relative residual norm at that iteration.
        relative_residual: f64,
    },
    /// The residual became NaN or infinite.
    NonFiniteResidual {
        /// Iteration at which the residual left the finite range.
        iteration: usize,
    },
    /// A worker thread panicked during a parallel kernel; the pool drained
    /// the round and remains usable.
    WorkerPanicked {
        /// Thread id of the worker that died.
        tid: usize,
        /// Rendered panic message.
        message: String,
    },
    /// No reduction strategy of this name is registered with the context.
    UnknownStrategy {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for SymSpmvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymSpmvError::Parse(e) => write!(f, "failed to read matrix: {e}"),
            SymSpmvError::InvalidStructure(e) => write!(f, "invalid matrix structure: {e}"),
            SymSpmvError::NotSpd { iteration, pap } => write!(
                f,
                "CG breakdown at iteration {iteration}: matrix is not positive definite \
                 (p^T A p = {pap:e})"
            ),
            SymSpmvError::Diverged {
                iteration,
                relative_residual,
            } => write!(
                f,
                "solver diverged at iteration {iteration} \
                 (relative residual {relative_residual:e})"
            ),
            SymSpmvError::NonFiniteResidual { iteration } => {
                write!(f, "residual became non-finite at iteration {iteration}")
            }
            SymSpmvError::WorkerPanicked { tid, message } => {
                write!(f, "worker thread {tid} panicked during a kernel: {message}")
            }
            SymSpmvError::UnknownStrategy { name } => {
                write!(f, "no reduction strategy named {name:?} is registered")
            }
        }
    }
}

impl std::error::Error for SymSpmvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SymSpmvError::Parse(e) | SymSpmvError::InvalidStructure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for SymSpmvError {
    /// Classifies a [`SparseError`]: structural rejections become
    /// [`SymSpmvError::InvalidStructure`], I/O and syntax failures become
    /// [`SymSpmvError::Parse`].
    fn from(e: SparseError) -> Self {
        if e.is_structural() {
            SymSpmvError::InvalidStructure(e)
        } else {
            SymSpmvError::Parse(e)
        }
    }
}

impl From<WorkerPanicInfo> for SymSpmvError {
    fn from(info: WorkerPanicInfo) -> Self {
        SymSpmvError::WorkerPanicked {
            tid: info.tid,
            message: info.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_errors_classify_by_structure() {
        let io_like = SparseError::Parse {
            line: 3,
            msg: "bad value".into(),
        };
        assert!(matches!(
            SymSpmvError::from(io_like),
            SymSpmvError::Parse(_)
        ));

        let structural = SparseError::NotSymmetric { row: 1, col: 2 };
        assert!(matches!(
            SymSpmvError::from(structural),
            SymSpmvError::InvalidStructure(_)
        ));
    }

    #[test]
    fn display_messages_are_actionable() {
        let e = SymSpmvError::NotSpd {
            iteration: 7,
            pap: -1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("iteration 7"), "{msg}");
        assert!(msg.contains("not positive definite"), "{msg}");

        let w = SymSpmvError::WorkerPanicked {
            tid: 2,
            message: "index out of bounds".into(),
        };
        assert!(w.to_string().contains("worker thread 2"));
    }

    #[test]
    fn worker_panic_info_converts() {
        let info = WorkerPanicInfo {
            tid: 5,
            message: "boom".into(),
        };
        assert_eq!(
            SymSpmvError::from(info),
            SymSpmvError::WorkerPanicked {
                tid: 5,
                message: "boom".into()
            }
        );
    }

    #[test]
    fn source_chains_to_sparse_error() {
        use std::error::Error;
        let e = SymSpmvError::InvalidStructure(SparseError::NotSymmetric { row: 0, col: 1 });
        assert!(e.source().is_some());
        let n = SymSpmvError::NonFiniteResidual { iteration: 1 };
        assert!(n.source().is_none());
    }
}
