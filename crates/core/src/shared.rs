//! Shared-mutable buffers for partitioned parallel writes.
//!
//! The [`SharedBuf`] escape hatch now lives in `symspmv-runtime` (next to
//! the pool and the reduction strategies that use it); this module
//! re-exports it so kernel code and downstream users keep their imports.

pub use symspmv_runtime::shared::SharedBuf;
