//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing, converting or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: u32,
        /// Column index of the offending entry.
        col: u32,
        /// Declared number of rows.
        nrows: u32,
        /// Declared number of columns.
        ncols: u32,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: u32,
        /// Number of columns.
        ncols: u32,
    },
    /// The operation requires a (numerically) symmetric matrix.
    NotSymmetric {
        /// Row of the first asymmetric entry found.
        row: u32,
        /// Column of the first asymmetric entry found.
        col: u32,
    },
    /// A MatrixMarket stream could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// An I/O error occurred while reading or writing a matrix file.
    Io(String),
    /// A permutation vector is not a bijection on `0..n`.
    InvalidPermutation {
        /// Description of the violation.
        msg: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for a {nrows}x{ncols} matrix"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::NotSymmetric { row, col } => {
                write!(
                    f,
                    "matrix is not symmetric: entry ({row}, {col}) has no symmetric match"
                )
            }
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
            SparseError::InvalidPermutation { msg } => write!(f, "invalid permutation: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
