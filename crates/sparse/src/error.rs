//! Error type shared by the sparse substrate.
//!
//! [`SparseError`] is the base of the workspace error taxonomy: every
//! structural defect a matrix can arrive with — parse failures, bad
//! indices, asymmetry, non-finite values, index-width overflow — maps to a
//! structured variant here, and the higher layers (`symspmv-core`'s
//! `SymSpmvError`) classify these variants instead of re-deriving them.

use std::fmt;

/// Errors produced while constructing, converting or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: u32,
        /// Column index of the offending entry.
        col: u32,
        /// Declared number of rows.
        nrows: u32,
        /// Declared number of columns.
        ncols: u32,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: u32,
        /// Number of columns.
        ncols: u32,
    },
    /// The operation requires a (numerically) symmetric matrix.
    NotSymmetric {
        /// Row of the first asymmetric entry found.
        row: u32,
        /// Column of the first asymmetric entry found.
        col: u32,
    },
    /// A MatrixMarket stream could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// An I/O error occurred while reading or writing a matrix file.
    Io(String),
    /// A permutation vector is not a bijection on `0..n`.
    InvalidPermutation {
        /// Description of the violation.
        msg: String,
    },
    /// An entry's value is NaN or infinite.
    NonFiniteValue {
        /// Row index of the offending entry.
        row: u32,
        /// Column index of the offending entry.
        col: u32,
        /// The offending value (rendered; NaN compares unequal so the
        /// variant stores the bit-identical `f64`).
        value: f64,
    },
    /// The same `(row, col)` coordinate appears more than once where a
    /// canonical (duplicate-free) matrix is required.
    DuplicateEntry {
        /// Row index of the duplicated coordinate.
        row: u32,
        /// Column index of the duplicated coordinate.
        col: u32,
    },
    /// Triplets are not sorted row-major where canonical order is required.
    UnsortedTriplets {
        /// Position (triplet index) of the first out-of-order entry.
        position: usize,
    },
    /// A dimension or entry count does not fit the 4-byte index type (or
    /// `usize` for counts) used by every storage format.
    IndexOverflow {
        /// What overflowed (e.g. `"row count"`).
        what: &'static str,
        /// The declared value.
        value: u64,
        /// The largest representable value.
        max: u64,
    },
    /// A constructor argument (block size, tolerance, …) is out of its
    /// valid domain.
    InvalidArgument {
        /// Description of the violation.
        msg: String,
    },
    /// A `symmetric` MatrixMarket file stored an upper-triangle entry; the
    /// format mandates lower-triangle-only storage.
    UpperTriangleInSymmetric {
        /// 1-based line number of the offending entry.
        line: usize,
        /// Row index (0-based) of the offending entry.
        row: u32,
        /// Column index (0-based) of the offending entry.
        col: u32,
    },
    /// The operation requires a skew-symmetric matrix
    /// (`a_ji = -a_ij`, zero diagonal).
    NotSkewSymmetric {
        /// Row of the first offending entry found.
        row: u32,
        /// Column of the first offending entry found.
        col: u32,
    },
    /// A skew-symmetric matrix carries a nonzero (or explicit, where
    /// forbidden) diagonal entry.
    SkewNonzeroDiagonal {
        /// Index of the offending diagonal entry.
        row: u32,
        /// The offending value.
        value: f64,
    },
    /// The operation requires a structurally symmetric pattern: every
    /// off-diagonal entry `(r, c)` must have a stored partner `(c, r)`.
    NotStructurallySymmetric {
        /// Row of the first unpaired entry found.
        row: u32,
        /// Column of the first unpaired entry found.
        col: u32,
    },
    /// A `skew-symmetric` MatrixMarket file stored a diagonal entry; the
    /// diagonal of a skew-symmetric matrix is identically zero and the
    /// format mandates strict-lower-triangle storage.
    DiagonalInSkewSymmetric {
        /// 1-based line number of the offending entry.
        line: usize,
        /// Index of the offending diagonal entry.
        row: u32,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for a {nrows}x{ncols} matrix"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::NotSymmetric { row, col } => {
                write!(
                    f,
                    "matrix is not symmetric: entry ({row}, {col}) has no symmetric match"
                )
            }
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
            SparseError::InvalidPermutation { msg } => write!(f, "invalid permutation: {msg}"),
            SparseError::NonFiniteValue { row, col, value } => {
                write!(f, "entry ({row}, {col}) has non-finite value {value}")
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "coordinate ({row}, {col}) appears more than once")
            }
            SparseError::UnsortedTriplets { position } => {
                write!(f, "triplets not in row-major order at position {position}")
            }
            SparseError::IndexOverflow { what, value, max } => {
                write!(f, "{what} {value} exceeds the index limit {max}")
            }
            SparseError::InvalidArgument { msg } => write!(f, "invalid argument: {msg}"),
            SparseError::UpperTriangleInSymmetric { line, row, col } => write!(
                f,
                "line {line}: entry ({row}, {col}) lies in the upper triangle of a `symmetric` file (lower-triangle storage is mandatory)"
            ),
            SparseError::NotSkewSymmetric { row, col } => write!(
                f,
                "matrix is not skew-symmetric: entry ({row}, {col}) has no negated mirror"
            ),
            SparseError::SkewNonzeroDiagonal { row, value } => write!(
                f,
                "skew-symmetric matrix has nonzero diagonal entry ({row}, {row}) = {value}"
            ),
            SparseError::NotStructurallySymmetric { row, col } => write!(
                f,
                "pattern is not symmetric: entry ({row}, {col}) has no stored partner ({col}, {row})"
            ),
            SparseError::DiagonalInSkewSymmetric { line, row } => write!(
                f,
                "line {line}: diagonal entry ({row}, {row}) in a `skew-symmetric` file (the diagonal is implicitly zero; strict-lower storage is mandatory)"
            ),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

impl SparseError {
    /// True for variants describing a structurally invalid matrix (as
    /// opposed to parse/I/O failures): bad indices, asymmetry, duplicates,
    /// non-finite values, overflow.
    pub fn is_structural(&self) -> bool {
        !matches!(self, SparseError::Parse { .. } | SparseError::Io(_))
    }
}
