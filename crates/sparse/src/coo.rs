//! Coordinate (triplet) format — the construction/interchange format.
//!
//! Every other format in the workspace is built from a [`CooMatrix`]. The
//! format stores `(row, col, value)` triplets in arbitrary order and supports
//! canonicalization (sort + duplicate summation), symmetry queries, and
//! triangular extraction, which the symmetric formats rely on.

use crate::error::SparseError;
use crate::{Idx, Val};

/// A sparse matrix in coordinate (triplet) format.
///
/// ```
/// use symspmv_sparse::CooMatrix;
/// let mut a = CooMatrix::new(3, 3);
/// a.push(0, 0, 2.0);
/// a.push(2, 1, -1.0);
/// a.push(2, 1, -0.5); // duplicates are summed by canonicalize
/// a.canonicalize();
/// assert_eq!(a.nnz(), 2);
/// assert_eq!(a.find(2, 1), Some(-1.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: Idx,
    ncols: Idx,
    rows: Vec<Idx>,
    cols: Vec<Idx>,
    vals: Vec<Val>,
}

impl CooMatrix {
    /// Creates an empty matrix with the given dimensions.
    pub fn new(nrows: Idx, ncols: Idx) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with room reserved for `cap` entries.
    pub fn with_capacity(nrows: Idx, ncols: Idx, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds a matrix from parallel triplet slices.
    ///
    /// Returns an error if the slices disagree in length (first length wins
    /// as the reference) or if any index is out of bounds.
    pub fn from_triplets(
        nrows: Idx,
        ncols: Idx,
        rows: Vec<Idx>,
        cols: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Result<Self, SparseError> {
        assert_eq!(
            rows.len(),
            cols.len(),
            "triplet slices must agree in length"
        );
        assert_eq!(
            rows.len(),
            vals.len(),
            "triplet slices must agree in length"
        );
        for (&r, &c) in rows.iter().zip(&cols) {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> Idx {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Idx {
        self.ncols
    }

    /// Number of stored entries (including any duplicates).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Appends a triplet. Panics if out of bounds (construction-time bug).
    pub fn push(&mut self, row: Idx, col: Idx, val: Val) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) out of bounds"
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Row indices of the stored triplets.
    pub fn row_indices(&self) -> &[Idx] {
        &self.rows
    }

    /// Column indices of the stored triplets.
    pub fn col_indices(&self) -> &[Idx] {
        &self.cols
    }

    /// Values of the stored triplets.
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` triplets in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, Val)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sorts triplets row-major and sums duplicates in place.
    ///
    /// Entries that sum to exactly zero are kept (structural non-zeros), so
    /// the structure of generated matrices is deterministic.
    pub fn canonicalize(&mut self) {
        let n = self.nnz();
        let mut order: Vec<usize> = (0..n).collect();
        // Include the original position in the key so duplicate entries are
        // summed in insertion order — floating-point addition is not
        // associative, and an unspecified order would make canonicalization
        // non-deterministic (and mirror images of a symmetric matrix could
        // round differently).
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i], i));

        let mut rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for &i in &order {
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if rows.last() == Some(&r) && cols.last() == Some(&c) {
                if let Some(last) = vals.last_mut() {
                    *last += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Returns true if the triplets are sorted row-major with no duplicates.
    pub fn is_canonical(&self) -> bool {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(self.rows.iter().skip(1).zip(self.cols.iter().skip(1)))
            .all(|((&r0, &c0), (&r1, &c1))| (r0, c0) < (r1, c1))
    }

    /// Checks numeric symmetry: every entry `(r, c, v)` must have a matching
    /// `(c, r, v)` entry (within `tol` absolute tolerance).
    ///
    /// The matrix must be canonical; call [`CooMatrix::canonicalize`] first.
    pub fn is_symmetric(&self, tol: Val) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        debug_assert!(self.is_canonical(), "is_symmetric requires canonical form");
        self.iter().all(|(r, c, v)| {
            r == c
                || match self.find(c, r) {
                    Some(w) => (v - w).abs() <= tol,
                    None => false,
                }
        })
    }

    /// Checks skew symmetry: every off-diagonal entry `(r, c, v)` must have
    /// a matching `(c, r, -v)` entry (within `tol` absolute tolerance), and
    /// every stored diagonal entry must be zero within `tol`.
    ///
    /// The matrix must be canonical; call [`CooMatrix::canonicalize`] first.
    pub fn is_skew_symmetric(&self, tol: Val) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        debug_assert!(
            self.is_canonical(),
            "is_skew_symmetric requires canonical form"
        );
        self.iter().all(|(r, c, v)| {
            if r == c {
                v.abs() <= tol
            } else {
                match self.find(c, r) {
                    Some(w) => (v + w).abs() <= tol,
                    None => false,
                }
            }
        })
    }

    /// Checks structural (pattern) symmetry: every off-diagonal entry
    /// `(r, c)` must have a stored partner `(c, r)` — values are ignored.
    ///
    /// The matrix must be canonical; call [`CooMatrix::canonicalize`] first.
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        debug_assert!(
            self.is_canonical(),
            "is_structurally_symmetric requires canonical form"
        );
        self.iter()
            .all(|(r, c, _)| r == c || self.find(c, r).is_some())
    }

    /// Binary-searches a canonical matrix for entry `(row, col)`.
    pub fn find(&self, row: Idx, col: Idx) -> Option<Val> {
        // Find the row range by binary search, then the column inside it.
        let lo = self.rows.partition_point(|&r| r < row);
        let hi = self.rows.partition_point(|&r| r <= row);
        let cols = &self.cols[lo..hi];
        cols.binary_search(&col).ok().map(|k| self.vals[lo + k])
    }

    /// Extracts the strict lower triangle and the main diagonal (as a dense
    /// `N`-vector, zero-filled where the diagonal is structurally absent).
    ///
    /// This is the decomposition both SSS and CSX-Sym store. Fails if the
    /// matrix is not square.
    pub fn split_lower_diag(&self) -> Result<(CooMatrix, Vec<Val>), SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let n = self.nrows as usize;
        let mut diag = vec![0.0; n];
        let mut lower = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz() / 2 + 1);
        for (r, c, v) in self.iter() {
            if r == c {
                diag[r as usize] += v;
            } else if c < r {
                lower.push(r, c, v);
            }
        }
        Ok((lower, diag))
    }

    /// Builds the full symmetric matrix from triplets that only describe the
    /// lower triangle (plus diagonal), mirroring off-diagonal entries.
    pub fn symmetrize_from_lower(&self) -> Result<CooMatrix, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let mut full = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz() * 2);
        for (r, c, v) in self.iter() {
            full.push(r, c, v);
            if r != c {
                full.push(c, r, v);
            }
        }
        full.canonicalize();
        Ok(full)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Dense reference SpMV (`y = A x`), for testing only — O(nnz).
    pub fn spmv_reference(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols as usize);
        assert_eq!(y.len(), self.nrows as usize);
        y.fill(0.0);
        for (r, c, v) in self.iter() {
            y[r as usize] += v * x[c as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        // 3x3: [[2, 1, 0], [1, 3, 0], [0, 0, 4]]
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.push(1, 1, 3.0);
        m.push(2, 2, 4.0);
        m.canonicalize();
        m
    }

    #[test]
    fn canonicalize_sorts_and_sums_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 0.5);
        m.canonicalize();
        assert_eq!(m.nnz(), 2);
        assert!(m.is_canonical());
        assert_eq!(m.find(1, 1), Some(1.5));
        assert_eq!(m.find(0, 0), Some(2.0));
        assert_eq!(m.find(0, 1), None);
    }

    #[test]
    fn symmetry_detection() {
        let m = sample();
        assert!(m.is_symmetric(0.0));

        let mut asym = sample();
        asym.push(2, 0, 1.0);
        asym.canonicalize();
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn skew_symmetry_detection() {
        // [[0, -1, 0], [1, 0, 2], [0, -2, 0]]
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, -1.0);
        m.push(1, 0, 1.0);
        m.push(1, 2, 2.0);
        m.push(2, 1, -2.0);
        m.canonicalize();
        assert!(m.is_skew_symmetric(0.0));
        assert!(!m.is_symmetric(0.0));

        // A nonzero diagonal breaks skew symmetry…
        let mut d = m.clone();
        d.push(0, 0, 3.0);
        d.canonicalize();
        assert!(!d.is_skew_symmetric(0.0));
        // …but an explicit zero diagonal entry is fine.
        let mut z = m.clone();
        z.push(0, 0, 0.0);
        z.canonicalize();
        assert!(z.is_skew_symmetric(0.0));

        // An unpaired entry breaks it.
        let mut u = m.clone();
        u.push(0, 2, 5.0);
        u.canonicalize();
        assert!(!u.is_skew_symmetric(0.0));

        // A same-sign mirror breaks it (that would be symmetric).
        let s = sample();
        assert!(!s.is_skew_symmetric(0.0));
    }

    #[test]
    fn structural_symmetry_detection() {
        // Pattern symmetric, values unrelated.
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 4.0);
        m.push(0, 1, 7.0);
        m.push(1, 0, -2.5);
        m.push(1, 2, 1.0);
        m.push(2, 1, 9.0);
        m.canonicalize();
        assert!(m.is_structurally_symmetric());
        assert!(!m.is_symmetric(0.0));
        assert!(!m.is_skew_symmetric(0.0));

        // Numerically symmetric implies structurally symmetric.
        assert!(sample().is_structurally_symmetric());

        // Unpaired entry breaks the pattern.
        let mut u = m.clone();
        u.push(2, 0, 1.0);
        u.canonicalize();
        assert!(!u.is_structurally_symmetric());
    }

    #[test]
    fn split_and_symmetrize_round_trip() {
        let m = sample();
        let (lower, diag) = m.split_lower_diag().unwrap();
        assert_eq!(diag, vec![2.0, 3.0, 4.0]);
        assert_eq!(lower.nnz(), 1); // only (1,0)

        // Rebuild: lower + diagonal as triplets, then mirror.
        let mut rebuilt = lower.clone();
        for (i, &d) in diag.iter().enumerate() {
            if d != 0.0 {
                rebuilt.push(i as Idx, i as Idx, d);
            }
        }
        let full = rebuilt.symmetrize_from_lower().unwrap();
        let mut a = sample();
        a.canonicalize();
        assert_eq!(full, a);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let res = CooMatrix::from_triplets(2, 2, vec![2], vec![0], vec![1.0]);
        assert!(matches!(res, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn reference_spmv() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv_reference(&x, &mut y);
        assert_eq!(y, vec![4.0, 7.0, 12.0]);
    }

    #[test]
    fn transpose_swaps_indices() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 2, 5.0);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.row_indices(), &[2]);
        assert_eq!(t.col_indices(), &[0]);
    }

    #[test]
    fn empty_matrix_is_symmetric_and_canonical() {
        let mut m = CooMatrix::new(4, 4);
        m.canonicalize();
        assert!(m.is_canonical());
        assert!(m.is_symmetric(0.0));
        let (lower, diag) = m.split_lower_diag().unwrap();
        assert_eq!(lower.nnz(), 0);
        assert_eq!(diag, vec![0.0; 4]);
    }
}
