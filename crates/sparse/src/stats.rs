//! Structural statistics: bandwidth, row profiles, densities.
//!
//! These feed Table I (matrix characteristics), Fig. 4 (density of the
//! effective regions) and the §V-D discussion of high-bandwidth matrices.

use crate::coo::CooMatrix;
use crate::Idx;

/// Summary statistics of a sparse matrix's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Matrix dimension (rows).
    pub nrows: Idx,
    /// Non-zero count.
    pub nnz: usize,
    /// Maximum `|r - c|` over all entries (the matrix bandwidth).
    pub bandwidth: Idx,
    /// Mean `|r - c|` over off-diagonal entries.
    pub avg_entry_distance: f64,
    /// Mean non-zeros per row.
    pub avg_row_nnz: f64,
    /// Maximum non-zeros in any row.
    pub max_row_nnz: usize,
    /// Minimum non-zeros in any row.
    pub min_row_nnz: usize,
    /// nnz / (nrows·ncols).
    pub fill: f64,
}

/// Computes [`MatrixStats`] for a COO matrix.
pub fn matrix_stats(coo: &CooMatrix) -> MatrixStats {
    let nrows = coo.nrows();
    let nnz = coo.nnz();
    let mut bandwidth = 0;
    let mut dist_sum = 0.0f64;
    let mut offdiag = 0usize;
    let mut row_nnz = vec![0usize; nrows as usize];
    for (r, c, _) in coo.iter() {
        let d = r.abs_diff(c);
        bandwidth = bandwidth.max(d);
        if d > 0 {
            dist_sum += d as f64;
            offdiag += 1;
        }
        row_nnz[r as usize] += 1;
    }
    let (min_row, max_row) = row_nnz
        .iter()
        .fold((usize::MAX, 0usize), |(mn, mx), &k| (mn.min(k), mx.max(k)));
    MatrixStats {
        nrows,
        nnz,
        bandwidth,
        avg_entry_distance: if offdiag > 0 {
            dist_sum / offdiag as f64
        } else {
            0.0
        },
        avg_row_nnz: nnz as f64 / nrows.max(1) as f64,
        max_row_nnz: max_row,
        min_row_nnz: if nrows == 0 { 0 } else { min_row },
        fill: nnz as f64 / (nrows as f64 * coo.ncols() as f64).max(1.0),
    }
}

/// Size of the matrix as the paper's Table I "Size (MiB)" column: the CSR
/// representation `12·NNZ + 4·(N+1)` in MiB.
pub fn csr_size_mib(nrows: Idx, nnz: usize) -> f64 {
    csr_size_bytes(nrows, nnz) as f64 / (1024.0 * 1024.0)
}

/// Eq. 1 in bytes: the CSR representation `12·NNZ + 4·(N+1)` with `NNZ`
/// the full-matrix non-zero count (8-byte values, 4-byte indices).
pub fn csr_size_bytes(nrows: Idx, nnz: usize) -> usize {
    12 * nnz + 4 * (nrows as usize + 1)
}

/// Eq. 2 in bytes: the SSS representation — `12` bytes per strict-lower
/// entry (value + column index), the dense diagonal (`8·N`), and the row
/// pointers (`4·(N+1)`). Matches `SssMatrix::size_bytes` for the plain
/// symmetric kind (structural matrices pay an extra paired-upper-value
/// array not modeled here).
pub fn sss_size_bytes(nrows: Idx, lower_nnz: usize) -> usize {
    let n = nrows as usize;
    12 * lower_nnz + 8 * n + 4 * (n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_matrix() {
        // [[1, 2, 0], [2, 1, 0], [0, 0, 1]] plus a far entry (0,2)/(2,0).
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 1.0),
            (1, 1, 1.0),
            (2, 2, 1.0),
            (0, 1, 2.0),
            (1, 0, 2.0),
            (0, 2, 3.0),
            (2, 0, 3.0),
        ] {
            coo.push(r, c, v);
        }
        coo.canonicalize();
        let s = matrix_stats(&coo);
        assert_eq!(s.nrows, 3);
        assert_eq!(s.nnz, 7);
        assert_eq!(s.bandwidth, 2);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.min_row_nnz, 2);
        assert!((s.avg_row_nnz - 7.0 / 3.0).abs() < 1e-12);
        // Off-diagonal distances: 1,1,2,2 → mean 1.5
        assert!((s.avg_entry_distance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn csr_size_matches_eq1() {
        // 12 * 1_000_000 + 4 * (100_001) bytes.
        let mib = csr_size_mib(100_000, 1_000_000);
        let expect = (12_000_000u64 + 400_004) as f64 / (1024.0 * 1024.0);
        assert!((mib - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let coo = CooMatrix::new(0, 0);
        let s = matrix_stats(&coo);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.min_row_nnz, 0);
    }
}
