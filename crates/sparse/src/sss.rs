//! Symmetric Sparse Skyline — the symmetric baseline format (§II-B).
//!
//! SSS stores the main diagonal densely in `dvalues` and the strict lower
//! triangle in CSR layout. Its size model is Eq. 2 of the paper:
//! `S_SSS = 6·(NNZ + N) + 4` bytes, where `NNZ` counts the non-zeros of the
//! *full* matrix.
//!
//! The same half storage carries all three [`SymmetryKind`]s: a skew
//! matrix stores the strict lower triangle with an implicit sign flip on
//! the mirror (and an identically zero diagonal); a structurally symmetric
//! matrix stores a paired `upper_values` array alongside the lower values
//! (`upper_values[j]` is `a[colind[j]][r]` for lower entry `j`).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::symmetry::{SymmetryKind, SymmetryOps};
use crate::validate::{validate_coo, CooChecks};
use crate::with_symmetry_ops;
use crate::{Idx, Val};
use std::sync::OnceLock;

/// A symmetric sparse matrix in SSS format (diagonal + strict lower CSR).
///
/// ```
/// use symspmv_sparse::{CooMatrix, SssMatrix};
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 0, 4.0);
/// a.push(1, 1, 3.0);
/// a.push(1, 0, 1.0);
/// a.push(0, 1, 1.0);
/// let sss = SssMatrix::from_coo(&a, 0.0).unwrap();
/// assert_eq!(sss.lower_nnz(), 1); // only the strict lower triangle stored
/// let mut y = vec![0.0; 2];
/// sss.spmv(&[1.0, 2.0], &mut y); // Alg. 2 of the paper
/// assert_eq!(y, vec![6.0, 7.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SssMatrix {
    n: Idx,
    kind: SymmetryKind,
    dvalues: Vec<Val>,
    rowptr: Vec<Idx>,
    colind: Vec<Idx>,
    values: Vec<Val>,
    /// Paired upper-triangle values in lower-CSR order; empty unless
    /// `kind == Structural`.
    upper_values: Vec<Val>,
    /// Lazily computed structural fingerprint. The matrix is immutable
    /// after construction (no `&mut self` methods exist), so the cached
    /// value can never go stale.
    fp: OnceLock<u64>,
}

// Manual impl: equality is over the matrix content only — whether the
// fingerprint cache happens to be populated is not part of the value.
impl PartialEq for SssMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.kind == other.kind
            && self.dvalues == other.dvalues
            && self.rowptr == other.rowptr
            && self.colind == other.colind
            && self.values == other.values
            && self.upper_values == other.upper_values
    }
}

impl SssMatrix {
    /// Builds an SSS matrix from a full symmetric COO matrix.
    ///
    /// The input must be square and numerically symmetric (checked with
    /// absolute tolerance `tol`; pass `0.0` for exact symmetry).
    pub fn from_coo(coo: &CooMatrix, tol: Val) -> Result<Self, SparseError> {
        Self::from_coo_kind(coo, SymmetryKind::Symmetric, tol)
    }

    /// Builds the half storage for any [`SymmetryKind`] from a full COO
    /// matrix.
    ///
    /// The input must be square and satisfy the kind's relation (numeric
    /// checks use absolute tolerance `tol`): symmetric — `a_ji = a_ij`;
    /// skew — `a_ji = -a_ij` with every stored diagonal entry zero
    /// (nonzero diagonals are rejected as
    /// [`SparseError::SkewNonzeroDiagonal`], and the stored diagonal is
    /// identically zero); structural — every off-diagonal entry paired,
    /// with the upper value of each pair kept in `upper_values`.
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        tol: Val,
    ) -> Result<Self, SparseError> {
        let mut c = coo.clone();
        c.canonicalize();
        if c.nrows() != c.ncols() {
            return Err(SparseError::NotSquare {
                nrows: c.nrows(),
                ncols: c.ncols(),
            });
        }
        match kind {
            SymmetryKind::Symmetric => {
                if !c.is_symmetric(tol) {
                    // Locate the first offending entry for the error message.
                    for (r, col, v) in c.iter() {
                        if r != col {
                            let m = c.find(col, r);
                            if m.is_none_or(|w| (w - v).abs() > tol) {
                                return Err(SparseError::NotSymmetric { row: r, col });
                            }
                        }
                    }
                    unreachable!("is_symmetric and scan disagree");
                }
            }
            SymmetryKind::Skew => {
                if !c.is_skew_symmetric(tol) {
                    for (r, col, v) in c.iter() {
                        if r == col {
                            if v.abs() > tol {
                                return Err(SparseError::SkewNonzeroDiagonal { row: r, value: v });
                            }
                        } else {
                            let m = c.find(col, r);
                            if m.is_none_or(|w| (v + w).abs() > tol) {
                                return Err(SparseError::NotSkewSymmetric { row: r, col });
                            }
                        }
                    }
                    unreachable!("is_skew_symmetric and scan disagree");
                }
            }
            SymmetryKind::Structural => {
                if !c.is_structurally_symmetric() {
                    for (r, col, _) in c.iter() {
                        if r != col && c.find(col, r).is_none() {
                            return Err(SparseError::NotStructurallySymmetric { row: r, col });
                        }
                    }
                    unreachable!("is_structurally_symmetric and scan disagree");
                }
            }
        }
        let (lower, dvalues) = c.split_lower_diag()?;
        let lower_csr = CsrMatrix::from_coo(&lower);
        // Skew storage is exactly skew: the diagonal is identically zero
        // (entries within `tol` of zero are clamped, not kept).
        let dvalues = if kind.requires_zero_diagonal() {
            vec![0.0; c.nrows() as usize]
        } else {
            dvalues
        };
        // Structural storage pairs each lower entry with its mirror value,
        // in lower-CSR order, so the kernels' sequential value cursor
        // walks both arrays in lockstep.
        let upper_values = if kind.has_upper_values() {
            let mut upper = Vec::with_capacity(lower_csr.colind().len());
            for r in 0..c.nrows() {
                let lo = lower_csr.rowptr()[r as usize] as usize;
                let hi = lower_csr.rowptr()[r as usize + 1] as usize;
                for &col in &lower_csr.colind()[lo..hi] {
                    match c.find(col, r) {
                        Some(u) => upper.push(u),
                        None => unreachable!("pattern symmetry was just verified"),
                    }
                }
            }
            upper
        } else {
            Vec::new()
        };
        Ok(SssMatrix {
            n: c.nrows(),
            kind,
            dvalues,
            rowptr: lower_csr.rowptr().to_vec(),
            colind: lower_csr.colind().to_vec(),
            values: lower_csr.values().to_vec(),
            upper_values,
            fp: OnceLock::new(),
        })
    }

    /// Fully validated constructor: beyond [`SssMatrix::from_coo`]'s
    /// square/symmetric checks, rejects non-finite values, duplicate
    /// coordinates and index overflow with a structured [`SparseError`].
    ///
    /// This is the entry point for matrices from outside the process;
    /// `from_coo` remains for trusted (generated) inputs.
    pub fn try_from_coo(coo: &CooMatrix, tol: Val) -> Result<Self, SparseError> {
        Self::try_from_coo_kind(coo, SymmetryKind::Symmetric, tol)
    }

    /// Fully validated kind-aware constructor (see
    /// [`SssMatrix::try_from_coo`] and [`SssMatrix::from_coo_kind`]).
    pub fn try_from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        tol: Val,
    ) -> Result<Self, SparseError> {
        if !tol.is_finite() || tol < 0.0 {
            return Err(SparseError::InvalidArgument {
                msg: format!("symmetry tolerance must be finite and >= 0, got {tol}"),
            });
        }
        let mut c = coo.clone();
        c.canonicalize();
        validate_coo(&c, &CooChecks::for_kind(kind, tol))?;
        Self::from_coo_kind(&c, kind, tol)
    }

    /// Builds an SSS matrix from triplets describing only the lower triangle
    /// (diagonal entries included among them), *trusting* symmetry.
    pub fn from_lower_coo(lower_with_diag: &CooMatrix) -> Result<Self, SparseError> {
        let mut c = lower_with_diag.clone();
        c.canonicalize();
        if c.nrows() != c.ncols() {
            return Err(SparseError::NotSquare {
                nrows: c.nrows(),
                ncols: c.ncols(),
            });
        }
        let (lower, dvalues) = c.split_lower_diag()?;
        let lower_csr = CsrMatrix::from_coo(&lower);
        Ok(SssMatrix {
            n: c.nrows(),
            kind: SymmetryKind::Symmetric,
            dvalues,
            rowptr: lower_csr.rowptr().to_vec(),
            colind: lower_csr.colind().to_vec(),
            values: lower_csr.values().to_vec(),
            upper_values: Vec::new(),
            fp: OnceLock::new(),
        })
    }

    /// Matrix dimension `N`.
    pub fn n(&self) -> Idx {
        self.n
    }

    /// The symmetry kind this storage satisfies.
    pub fn kind(&self) -> SymmetryKind {
        self.kind
    }

    /// The paired upper-triangle values, aligned with
    /// [`SssMatrix::values`]: for a structural matrix this is the explicit
    /// `upper_values` array (`paired_values()[j]` is `a[colind[j]][r]` for
    /// lower entry `j` of row `r`); for the numeric kinds it aliases the
    /// lower values (the mirror is `±values[j]`), so kernels can always
    /// zip a pair slice.
    pub fn paired_values(&self) -> &[Val] {
        if self.kind.has_upper_values() {
            &self.upper_values
        } else {
            &self.values
        }
    }

    /// The raw structural `upper_values` array (empty unless the kind is
    /// [`SymmetryKind::Structural`]).
    pub fn upper_values(&self) -> &[Val] {
        &self.upper_values
    }

    /// Dense diagonal array (`N` entries, zero where structurally absent).
    pub fn dvalues(&self) -> &[Val] {
        &self.dvalues
    }

    /// Row pointers of the strict lower triangle.
    pub fn rowptr(&self) -> &[Idx] {
        &self.rowptr
    }

    /// Column indices of the strict lower triangle.
    pub fn colind(&self) -> &[Idx] {
        &self.colind
    }

    /// Values of the strict lower triangle.
    pub fn values(&self) -> &[Val] {
        &self.values
    }

    /// Non-zeros stored (strict lower triangle only).
    pub fn lower_nnz(&self) -> usize {
        self.colind.len()
    }

    /// Non-zeros of the represented full matrix, counting the structural
    /// diagonal entries.
    pub fn full_nnz(&self) -> usize {
        let diag_nnz = self.dvalues.iter().filter(|&&d| d != 0.0).count();
        2 * self.lower_nnz() + diag_nnz
    }

    /// Size of the representation in bytes — Eq. 2 of the paper:
    /// `S_SSS = 6·(NNZ + N) + 4`, with `NNZ` the full-matrix non-zero count.
    ///
    /// (Derivation: values+colind store `(NNZ − N)/2` entries at 12 bytes
    /// each, dvalues stores `N` doubles, rowptr `N + 1` four-byte indices.)
    ///
    /// A structural matrix additionally stores the paired upper values
    /// (8 bytes per lower entry) — still well below full CSR, which pays
    /// indices *and* row structure for both triangles.
    pub fn size_bytes(&self) -> usize {
        let upper = 8 * self.upper_values.len();
        12 * self.lower_nnz() + 8 * self.n as usize + 4 * (self.n as usize + 1) + upper
    }

    /// A deterministic 64-bit fingerprint of the sparsity *structure*
    /// (dimension, row pointers, column indices — values excluded).
    ///
    /// Partition plans, conflict indices and race certificates depend only
    /// on structure, so two matrices with identical structure may share
    /// cached plans; the fingerprint is their cache key. FNV-1a is used
    /// rather than the std hasher so the value is stable across processes
    /// and can be embedded in serialized certificates. Computed on first
    /// use and memoized (the matrix is immutable), so repeat plan-cache
    /// lookups do not re-walk the structure.
    pub fn fingerprint(&self) -> u64 {
        *self.fp.get_or_init(|| self.compute_fingerprint())
    }

    fn compute_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u32| {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.n);
        for &p in &self.rowptr {
            eat(p);
        }
        for &c in &self.colind {
            eat(c);
        }
        h
    }

    /// The strict-lower-triangle row `r` (columns and values).
    pub fn row(&self, r: Idx) -> (&[Idx], &[Val]) {
        let lo = self.rowptr[r as usize] as usize;
        let hi = self.rowptr[r as usize + 1] as usize;
        (&self.colind[lo..hi], &self.values[lo..hi])
    }

    /// Row `r` with its paired (mirror) values: for structural symmetry
    /// the third slice holds the upper-triangle values `a_cr`; for the
    /// numeric kinds it aliases the lower values (the mirror is `±v`).
    pub fn row_with_paired(&self, r: Idx) -> (&[Idx], &[Val], &[Val]) {
        let lo = self.rowptr[r as usize] as usize;
        let hi = self.rowptr[r as usize + 1] as usize;
        (
            &self.colind[lo..hi],
            &self.values[lo..hi],
            &self.paired_values()[lo..hi],
        )
    }

    /// Serial half-storage SpMV (`y = A·x`) — Alg. 2 of the paper,
    /// generalized over the symmetry kind: the mirror contribution of a
    /// stored entry is `+v` (symmetric), `-v` (skew) or the paired upper
    /// value (structural). Monomorphized per kind; the symmetric
    /// instantiation is bit-identical to the pre-kind kernel.
    pub fn spmv(&self, x: &[Val], y: &mut [Val]) {
        with_symmetry_ops!(self.kind, O => self.spmv_ops::<O>(x, y));
    }

    fn spmv_ops<O: SymmetryOps>(&self, x: &[Val], y: &mut [Val]) {
        let n = self.n as usize;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for r in 0..n {
            y[r] = self.dvalues[r] * x[r];
        }
        for r in 0..self.n {
            let (cols, vals, paired) = self.row_with_paired(r);
            let xr = x[r as usize];
            let mut acc = 0.0;
            for ((&c, &v), &u) in cols.iter().zip(vals).zip(paired) {
                let c = c as usize;
                acc += v * x[c];
                y[c] += O::transposed(v, u) * xr;
            }
            y[r as usize] += acc;
        }
    }

    /// Reconstructs the represented full matrix as COO (for testing and
    /// cross-format conversions), applying the kind's mirror rule to the
    /// upper triangle.
    pub fn to_full_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.full_nnz());
        for (i, &d) in self.dvalues.iter().enumerate() {
            if d != 0.0 {
                coo.push(i as Idx, i as Idx, d);
            }
        }
        for r in 0..self.n {
            let (cols, vals, paired) = self.row_with_paired(r);
            for ((&c, &v), &u) in cols.iter().zip(vals).zip(paired) {
                coo.push(r, c, v);
                coo.push(c, r, self.kind.transposed(v, u));
            }
        }
        coo.canonicalize();
        coo
    }

    /// Converts to an equivalent full CSR matrix (the unsymmetric baseline
    /// representation of the same operator).
    pub fn to_full_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(&self.to_full_coo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_coo() -> CooMatrix {
        // [[4, 1, 0, 0],
        //  [1, 5, 2, 0],
        //  [0, 2, 6, 3],
        //  [0, 0, 3, 7]]
        let mut m = CooMatrix::new(4, 4);
        for (r, c, v) in [
            (0, 0, 4.0),
            (1, 1, 5.0),
            (2, 2, 6.0),
            (3, 3, 7.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 2.0),
            (2, 1, 2.0),
            (2, 3, 3.0),
            (3, 2, 3.0),
        ] {
            m.push(r, c, v);
        }
        m
    }

    #[test]
    fn construction_from_symmetric() {
        let sss = SssMatrix::from_coo(&sym_coo(), 0.0).unwrap();
        assert_eq!(sss.n(), 4);
        assert_eq!(sss.dvalues(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(sss.lower_nnz(), 3);
        assert_eq!(sss.full_nnz(), 10);
    }

    #[test]
    fn asymmetric_rejected() {
        let mut m = sym_coo();
        m.push(0, 3, 9.0);
        let res = SssMatrix::from_coo(&m, 0.0);
        assert!(matches!(res, Err(SparseError::NotSymmetric { .. })));
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = sym_coo();
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.0; 4];
        let mut y_ref = vec![0.0; 4];
        sss.spmv(&x, &mut y);
        let mut c = coo.clone();
        c.canonicalize();
        c.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-12, "{y:?} vs {y_ref:?}");
        }
    }

    #[test]
    fn full_round_trip() {
        let mut coo = sym_coo();
        coo.canonicalize();
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        assert_eq!(sss.to_full_coo(), coo);
    }

    #[test]
    fn size_model_eq2() {
        let sss = SssMatrix::from_coo(&sym_coo(), 0.0).unwrap();
        // 12*3 + 8*4 + 4*5 = 36 + 32 + 20 = 88
        assert_eq!(sss.size_bytes(), 88);
        // And Eq. 2's asymptotic claim: roughly half of CSR for NNZ >> N.
        let csr = sss.to_full_csr();
        assert!(sss.size_bytes() < csr.size_bytes());
    }

    #[test]
    fn fingerprint_is_structural_and_stable() {
        let a = SssMatrix::from_coo(&sym_coo(), 0.0).unwrap();
        // Same structure, different values → same fingerprint.
        let mut scaled = CooMatrix::new(4, 4);
        for (r, c, v) in sym_coo().iter() {
            scaled.push(r, c, 2.0 * v);
        }
        let b = SssMatrix::from_coo(&scaled, 0.0).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different structure → different fingerprint.
        let mut m = sym_coo();
        m.push(0, 3, 9.0);
        m.push(3, 0, 9.0);
        let c = SssMatrix::from_coo(&m, 0.0).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // FNV-1a over a fixed structure is a process-independent constant;
        // pin the 4×4 tridiagonal-ish fixture so serialization stays stable.
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn missing_diagonal_entries_stored_as_zero() {
        let mut m = CooMatrix::new(3, 3);
        m.push(1, 0, 2.0);
        m.push(0, 1, 2.0);
        let sss = SssMatrix::from_coo(&m, 0.0).unwrap();
        assert_eq!(sss.dvalues(), &[0.0, 0.0, 0.0]);
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![0.0; 3];
        sss.spmv(&x, &mut y);
        assert_eq!(y, vec![2.0, 2.0, 0.0]);
    }

    fn skew_coo() -> CooMatrix {
        // [[0, -1, 0, 0], [1, 0, 2, 0], [0, -2, 0, -3], [0, 0, 3, 0]]
        let mut m = CooMatrix::new(4, 4);
        for (r, c, v) in [
            (0, 1, -1.0),
            (1, 0, 1.0),
            (1, 2, 2.0),
            (2, 1, -2.0),
            (2, 3, -3.0),
            (3, 2, 3.0),
        ] {
            m.push(r, c, v);
        }
        m
    }

    fn structural_coo() -> CooMatrix {
        // Symmetric pattern, unrelated values.
        // [[4, 7, 0], [-2.5, 5, 1], [0, 9, 6]]
        let mut m = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, 7.0),
            (1, 0, -2.5),
            (1, 1, 5.0),
            (1, 2, 1.0),
            (2, 1, 9.0),
            (2, 2, 6.0),
        ] {
            m.push(r, c, v);
        }
        m
    }

    #[test]
    fn default_kind_is_symmetric() {
        let sss = SssMatrix::from_coo(&sym_coo(), 0.0).unwrap();
        assert_eq!(sss.kind(), SymmetryKind::Symmetric);
        assert!(sss.upper_values().is_empty());
        // Paired slice aliases the lower values for numeric kinds.
        assert_eq!(sss.paired_values(), sss.values());
    }

    #[test]
    fn skew_construction_and_spmv() {
        let coo = skew_coo();
        let sss = SssMatrix::from_coo_kind(&coo, SymmetryKind::Skew, 0.0).unwrap();
        assert_eq!(sss.kind(), SymmetryKind::Skew);
        assert_eq!(sss.lower_nnz(), 3);
        assert_eq!(sss.dvalues(), &[0.0; 4]);
        assert!(sss.upper_values().is_empty());

        let x = vec![1.0, -2.0, 0.5, 3.0];
        let mut y = vec![f64::NAN; 4];
        sss.spmv(&x, &mut y);
        let mut c = coo.clone();
        c.canonicalize();
        let mut y_ref = vec![0.0; 4];
        c.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-12, "{y:?} vs {y_ref:?}");
        }

        // Round trip through the mirror rule.
        let mut canon = coo.clone();
        canon.canonicalize();
        assert_eq!(sss.to_full_coo(), canon);
    }

    #[test]
    fn skew_rejects_nonzero_diagonal_and_wrong_mirror() {
        let mut d = skew_coo();
        d.push(1, 1, 5.0);
        let err = SssMatrix::from_coo_kind(&d, SymmetryKind::Skew, 0.0).unwrap_err();
        assert_eq!(err, SparseError::SkewNonzeroDiagonal { row: 1, value: 5.0 });

        let sym = sym_coo();
        let err = SssMatrix::from_coo_kind(&sym, SymmetryKind::Skew, 0.0).unwrap_err();
        assert!(matches!(
            err,
            SparseError::SkewNonzeroDiagonal { .. } | SparseError::NotSkewSymmetric { .. }
        ));

        // try_from_coo_kind reports the same structured error.
        let err = SssMatrix::try_from_coo_kind(&d, SymmetryKind::Skew, 0.0).unwrap_err();
        assert_eq!(err, SparseError::SkewNonzeroDiagonal { row: 1, value: 5.0 });
    }

    #[test]
    fn structural_construction_and_spmv() {
        let coo = structural_coo();
        let sss = SssMatrix::from_coo_kind(&coo, SymmetryKind::Structural, 0.0).unwrap();
        assert_eq!(sss.kind(), SymmetryKind::Structural);
        assert_eq!(sss.lower_nnz(), 2);
        // Lower entries in CSR order: (1,0) = -2.5, (2,1) = 9.0; their
        // paired upper values are a_01 = 7.0 and a_12 = 1.0.
        assert_eq!(sss.values(), &[-2.5, 9.0]);
        assert_eq!(sss.upper_values(), &[7.0, 1.0]);
        assert_eq!(sss.paired_values(), &[7.0, 1.0]);

        let x = vec![1.0, -2.0, 0.5];
        let mut y = vec![f64::NAN; 3];
        sss.spmv(&x, &mut y);
        let mut c = coo.clone();
        c.canonicalize();
        let mut y_ref = vec![0.0; 3];
        c.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-12, "{y:?} vs {y_ref:?}");
        }

        // Full reconstruction restores the unsymmetric values.
        assert_eq!(sss.to_full_coo(), c);

        // The extra upper array is visible in the size model.
        let plain = SssMatrix::from_coo(&sym_coo(), 0.0).unwrap();
        assert_eq!(sss.size_bytes(), 12 * 2 + 8 * 3 + 4 * 4 + 8 * 2,);
        assert!(plain.upper_values().is_empty());
    }

    #[test]
    fn structural_rejects_unpaired_pattern() {
        let mut m = structural_coo();
        m.push(2, 0, 1.0);
        let err = SssMatrix::from_coo_kind(&m, SymmetryKind::Structural, 0.0).unwrap_err();
        assert_eq!(
            err,
            SparseError::NotStructurallySymmetric { row: 2, col: 0 }
        );
    }

    #[test]
    fn kinds_share_structural_fingerprint() {
        // Same pattern, different kinds/values → same fingerprint: plans,
        // conflict indices and write-set proofs are structure-only and are
        // legitimately shared across kinds.
        let skew = SssMatrix::from_coo_kind(&skew_coo(), SymmetryKind::Skew, 0.0).unwrap();
        let mut symmetric_same_pattern = CooMatrix::new(4, 4);
        for (r, c, v) in skew_coo().iter() {
            symmetric_same_pattern.push(r, c, v.abs());
        }
        let sym = SssMatrix::from_coo(&symmetric_same_pattern, 0.0).unwrap();
        assert_eq!(skew.fingerprint(), sym.fingerprint());
    }

    #[test]
    fn symmetric_kind_spmv_bit_identical_to_pre_kind_loop() {
        // The monomorphized symmetric path must replay the historical op
        // order exactly: re-run the original Alg. 2 loop here and compare
        // bit for bit.
        let coo = symmetric_like_random(257);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let n = sss.n() as usize;
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 97) as f64 / 13.0).collect();
        let mut y = vec![0.0; n];
        sss.spmv(&x, &mut y);

        let mut want = vec![0.0; n];
        for r in 0..n {
            want[r] = sss.dvalues()[r] * x[r];
        }
        for r in 0..n {
            let lo = sss.rowptr()[r] as usize;
            let hi = sss.rowptr()[r + 1] as usize;
            let xr = x[r];
            let mut acc = 0.0;
            for j in lo..hi {
                let c = sss.colind()[j] as usize;
                let v = sss.values()[j];
                acc += v * x[c];
                want[c] += v * xr;
            }
            want[r] += acc;
        }
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    fn symmetric_like_random(n: Idx) -> CooMatrix {
        // Small deterministic symmetric matrix without pulling in gen's RNG.
        let mut m = CooMatrix::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.0 + (i % 7) as f64);
            let j = (i * 13 + 5) % n;
            let (r, c) = if i > j { (i, j) } else { (j, i) };
            if r != c {
                let v = 1.0 + ((i % 11) as f64) / 3.0;
                m.push(r, c, v);
                m.push(c, r, v);
            }
        }
        m.canonicalize();
        m
    }

    #[test]
    fn from_lower_coo_matches_from_coo() {
        let full = sym_coo();
        let a = SssMatrix::from_coo(&full, 0.0).unwrap();
        let (lower, diag) = {
            let mut c = full.clone();
            c.canonicalize();
            c.split_lower_diag().unwrap()
        };
        let mut lower_with_diag = lower;
        for (i, &d) in diag.iter().enumerate() {
            if d != 0.0 {
                lower_with_diag.push(i as Idx, i as Idx, d);
            }
        }
        let b = SssMatrix::from_lower_coo(&lower_with_diag).unwrap();
        assert_eq!(a, b);
    }
}
