//! MatrixMarket coordinate-format I/O.
//!
//! Supports the subset needed for the paper's matrix suite: `matrix
//! coordinate` files with `real`, `integer` or `pattern` fields and
//! `general`, `symmetric` or `skew-symmetric` symmetry. Symmetric files
//! are expanded to the full matrix on load (the storage formats re-extract
//! the lower triangle themselves); skew-symmetric files mirror each strict
//! lower entry `(r, c, v)` to `(c, r, -v)` and must not store diagonal
//! entries (the diagonal of a skew-symmetric matrix is identically zero).

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::symmetry::SymmetryKind;
use crate::validate::checked_idx;
use crate::Idx;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Field type of a MatrixMarket file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Real-valued entries.
    Real,
    /// Integer-valued entries (parsed as f64).
    Integer,
    /// Pattern-only entries (values set to 1.0).
    Pattern,
}

/// Symmetry declaration of a MatrixMarket file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; mirrored on load.
    Symmetric,
    /// Only the strict lower triangle stored; mirrored with a sign flip on
    /// load. Diagonal entries are forbidden.
    SkewSymmetric,
}

/// Parsed MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmHeader {
    /// Field type (real/integer/pattern).
    pub field: MmField,
    /// Symmetry (general/symmetric/skew-symmetric).
    pub symmetry: MmSymmetry,
}

impl MmSymmetry {
    /// The [`SymmetryKind`] a half-storage kernel should be built with, or
    /// `None` for `general` files (no symmetry to exploit — `structural`
    /// can only be asserted by the caller, never inferred from the header).
    pub fn kind(self) -> Option<SymmetryKind> {
        match self {
            MmSymmetry::General => None,
            MmSymmetry::Symmetric => Some(SymmetryKind::Symmetric),
            MmSymmetry::SkewSymmetric => Some(SymmetryKind::Skew),
        }
    }
}

/// Reads a MatrixMarket matrix from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<(CooMatrix, MmHeader), SparseError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    // Header line.
    let (lineno, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: 1,
                    msg: "empty file".into(),
                });
            }
        }
    };
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("bad MatrixMarket banner: {header:?}"),
        });
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(SparseError::Parse {
            line: lineno,
            msg: "only `matrix coordinate` files are supported".into(),
        });
    }
    let field = match toks[3].to_ascii_lowercase().as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = match toks[4].to_ascii_lowercase().as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("unsupported symmetry {other:?}"),
            })
        }
    };
    if symmetry == MmSymmetry::SkewSymmetric && field == MmField::Pattern {
        // A pattern file carries no signs, so the mirrored `-v` entries
        // would be meaningless; the MM spec restricts `skew-symmetric` to
        // valued fields.
        return Err(SparseError::Parse {
            line: lineno,
            msg: "`pattern` field cannot be combined with `skew-symmetric`".into(),
        });
    }

    // Size line (skipping comments).
    let (size_lineno, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    msg: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_lineno,
            msg: format!("size line must have 3 fields, got {:?}", dims.len()),
        });
    }
    let parse_dim = |s: &str, what: &str| -> Result<u64, SparseError> {
        s.parse::<u64>().map_err(|_| SparseError::Parse {
            line: size_lineno,
            msg: format!("bad {what}: {s:?}"),
        })
    };
    // The casts are checked: a file declaring dimensions beyond the 4-byte
    // index type must fail loudly, not truncate into a smaller matrix.
    let nrows = checked_idx(parse_dim(dims[0], "row count")?, "row count")?;
    let ncols = checked_idx(parse_dim(dims[1], "column count")?, "column count")?;
    let nnz64 = parse_dim(dims[2], "nnz count")?;
    let nnz = usize::try_from(nnz64).map_err(|_| SparseError::IndexOverflow {
        what: "nnz count",
        value: nnz64,
        max: usize::MAX as u64,
    })?;

    let expansion: usize = if symmetry == MmSymmetry::General {
        1
    } else {
        2
    };
    // Cap the pre-reservation so a lying header cannot OOM the process
    // before a single entry is read; the vectors grow on demand past this.
    const MAX_PREALLOC_ENTRIES: usize = 1 << 24;
    let cap = nnz.saturating_mul(expansion).min(MAX_PREALLOC_ENTRIES);
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let lineno = i + 1;
        let mut index = |what: &'static str| -> Result<Idx, SparseError> {
            let raw = it
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .filter(|&v| v >= 1)
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    msg: format!("bad {what}"),
                })?;
            checked_idx(raw - 1, what)
        };
        let r = index("row index")?;
        let c = index("column index")?;
        let v = match field {
            MmField::Pattern => 1.0,
            _ => it
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    msg: "bad value".into(),
                })?,
        };
        if !v.is_finite() {
            return Err(SparseError::NonFiniteValue {
                row: r,
                col: c,
                value: v,
            });
        }
        if r >= nrows || c >= ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: r,
                col: c,
                nrows,
                ncols,
            });
        }
        if symmetry != MmSymmetry::General && c > r {
            // The MatrixMarket spec mandates lower-triangle-only storage
            // for `symmetric` and `skew-symmetric` files; mirroring an
            // upper entry anyway would silently double-count it against
            // its lower twin.
            return Err(SparseError::UpperTriangleInSymmetric {
                line: lineno,
                row: r,
                col: c,
            });
        }
        if symmetry == MmSymmetry::SkewSymmetric && c == r {
            return Err(SparseError::DiagonalInSkewSymmetric {
                line: lineno,
                row: r,
            });
        }
        if seen == nnz {
            // Fail fast on the first surplus entry instead of buffering an
            // unbounded tail.
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("more entries than the declared {nnz}"),
            });
        }
        coo.push(r, c, v);
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if r != c {
                    coo.push(c, r, v);
                }
            }
            MmSymmetry::SkewSymmetric => coo.push(c, r, -v),
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: size_lineno,
            msg: format!("truncated file: declared {nnz} entries but found {seen}"),
        });
    }
    coo.canonicalize();
    Ok((coo, MmHeader { field, symmetry }))
}

/// Reads a MatrixMarket matrix from a file path.
pub fn read_matrix_market_file<P: AsRef<Path>>(
    path: P,
) -> Result<(CooMatrix, MmHeader), SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes a matrix in MatrixMarket coordinate format.
///
/// When `symmetric` is set, only the lower triangle (incl. diagonal) is
/// emitted and the header declares `symmetric`; the caller is responsible
/// for the matrix actually being symmetric.
pub fn write_matrix_market<W: Write>(
    w: &mut W,
    coo: &CooMatrix,
    symmetric: bool,
) -> Result<(), SparseError> {
    let symmetry = if symmetric {
        MmSymmetry::Symmetric
    } else {
        MmSymmetry::General
    };
    write_matrix_market_as(w, coo, symmetry)
}

/// Writes a matrix in MatrixMarket coordinate format under an explicit
/// symmetry declaration.
///
/// `Symmetric` emits the lower triangle (incl. diagonal); `SkewSymmetric`
/// emits the strict lower triangle only (diagonal and sign-flipped upper
/// entries are implied by the format). The caller is responsible for the
/// matrix actually having the declared symmetry; skew matrices with a
/// nonzero diagonal are rejected because the format cannot represent one.
pub fn write_matrix_market_as<W: Write>(
    w: &mut W,
    coo: &CooMatrix,
    symmetry: MmSymmetry,
) -> Result<(), SparseError> {
    let sym = match symmetry {
        MmSymmetry::General => "general",
        MmSymmetry::Symmetric => "symmetric",
        MmSymmetry::SkewSymmetric => "skew-symmetric",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate real {sym}")?;
    let entries: Vec<(Idx, Idx, f64)> = coo
        .iter()
        .filter(|&(r, c, v)| match symmetry {
            MmSymmetry::General => true,
            MmSymmetry::Symmetric => c <= r,
            MmSymmetry::SkewSymmetric => c < r || (c == r && v != 0.0),
        })
        .collect();
    if symmetry == MmSymmetry::SkewSymmetric {
        if let Some(&(r, _, v)) = entries.iter().find(|&&(r, c, _)| r == c) {
            return Err(SparseError::SkewNonzeroDiagonal { row: r, value: v });
        }
    }
    writeln!(w, "{} {} {}", coo.nrows(), coo.ncols(), entries.len())?;
    for (r, c, v) in entries {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_symmetry_maps_to_kind() {
        assert_eq!(MmSymmetry::General.kind(), None);
        assert_eq!(MmSymmetry::Symmetric.kind(), Some(SymmetryKind::Symmetric));
        assert_eq!(MmSymmetry::SkewSymmetric.kind(), Some(SymmetryKind::Skew));
    }

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 1 1.5\n\
                    3 2 -2.0\n";
        let (coo, hdr) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(hdr.field, MmField::Real);
        assert_eq!(hdr.symmetry, MmSymmetry::General);
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.find(0, 0), Some(1.5));
        assert_eq!(coo.find(2, 1), Some(-2.0));
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 1.0\n";
        let (coo, _) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.find(0, 1), Some(1.0));
        assert_eq!(coo.find(1, 0), Some(1.0));
        assert!(coo.is_symmetric(0.0));
    }

    #[test]
    fn parse_skew_symmetric_expands_with_sign_flip() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    3 3 2\n\
                    2 1 4.0\n\
                    3 2 -1.5\n";
        let (coo, hdr) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(hdr.symmetry, MmSymmetry::SkewSymmetric);
        assert_eq!(coo.nnz(), 4);
        assert_eq!(coo.find(1, 0), Some(4.0));
        assert_eq!(coo.find(0, 1), Some(-4.0));
        assert_eq!(coo.find(2, 1), Some(-1.5));
        assert_eq!(coo.find(1, 2), Some(1.5));
        assert!(coo.is_skew_symmetric(0.0));
    }

    #[test]
    fn skew_diagonal_entry_rejected() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 2\n\
                    2 1 4.0\n\
                    2 2 0.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::DiagonalInSkewSymmetric { line: 4, row: 1 })
        ));
    }

    #[test]
    fn skew_upper_triangle_rejected() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    1 2 -4.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::UpperTriangleInSymmetric { .. })
        ));
    }

    #[test]
    fn skew_pattern_field_rejected() {
        let text = "%%MatrixMarket matrix coordinate pattern skew-symmetric\n\
                    2 2 1\n\
                    2 1\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse { .. })
        ));
    }

    #[test]
    fn write_read_round_trip_skew() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 0, 4.0);
        coo.push(0, 1, -4.0);
        coo.push(2, 1, -1.5);
        coo.push(1, 2, 1.5);
        coo.canonicalize();

        let mut buf = Vec::new();
        write_matrix_market_as(&mut buf, &coo, MmSymmetry::SkewSymmetric).unwrap();
        let (back, hdr) = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(hdr.symmetry, MmSymmetry::SkewSymmetric);
        assert_eq!(back, coo);
    }

    #[test]
    fn write_skew_nonzero_diagonal_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 4.0);
        coo.push(0, 1, -4.0);
        coo.push(0, 0, 3.0);
        coo.canonicalize();
        let mut buf = Vec::new();
        assert!(matches!(
            write_matrix_market_as(&mut buf, &coo, MmSymmetry::SkewSymmetric),
            Err(SparseError::SkewNonzeroDiagonal { row: 0, .. })
        ));
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 1\n\
                    2 2\n";
        let (coo, hdr) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(hdr.field, MmField::Pattern);
        assert_eq!(coo.find(1, 1), Some(1.0));
    }

    #[test]
    fn nnz_mismatch_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse { .. })
        ));
    }

    #[test]
    fn bad_banner_rejected() {
        let text = "%%NotMatrixMarket nope\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn zero_based_indices_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn write_read_round_trip_symmetric() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 0, -1.0);
        coo.push(0, 1, -1.0);
        coo.push(2, 2, 5.0);
        coo.canonicalize();

        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &coo, true).unwrap();
        let (back, hdr) = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(hdr.symmetry, MmSymmetry::Symmetric);
        assert_eq!(back, coo);
    }

    #[test]
    fn write_read_round_trip_general() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.25);
        coo.push(1, 0, -7.5);
        coo.canonicalize();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &coo, false).unwrap();
        let (back, _) = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, coo);
    }
}
