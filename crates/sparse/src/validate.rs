//! Structural validation of COO inputs — the checks behind every
//! `try_from_coo` constructor.
//!
//! RACE-style pipelines treat input validation as a first-class
//! preprocessing stage: a malformed matrix must surface as a structured
//! [`SparseError`] *before* any kernel touches it, never as a panic inside
//! a parallel region. This module centralizes the checks so each storage
//! format states its requirements declaratively.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::{Idx, Val};

/// Which structural properties a constructor requires of its input.
///
/// `CooChecks::default()` checks only universal well-formedness (finite
/// values, in-range indices); builders add the properties their format
/// needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CooChecks {
    /// Require `nrows == ncols`.
    pub square: bool,
    /// Require numeric symmetry within this absolute tolerance.
    pub symmetric: Option<Val>,
    /// Require row-major sorted triplets with no duplicate coordinates.
    pub canonical: bool,
}

impl CooChecks {
    /// The requirements of the symmetric formats (SSS, CSX-Sym, CSB-Sym):
    /// square, exactly symmetric, canonical.
    pub fn symmetric_format() -> Self {
        CooChecks {
            square: true,
            symmetric: Some(0.0),
            canonical: true,
        }
    }

    /// The requirements of the unsymmetric formats (CSR, BCSR, CSB, CSX):
    /// canonical triplets, nothing more.
    pub fn unsymmetric_format() -> Self {
        CooChecks {
            square: false,
            symmetric: None,
            canonical: true,
        }
    }
}

/// Validates `coo` against `checks`, returning the first violation found.
///
/// Checks run cheapest-first: dimension/overflow guards, then a single
/// pass over the triplets (bounds, finiteness, order, duplicates), then
/// the `O(nnz·log nnz)` symmetry scan when requested.
pub fn validate_coo(coo: &CooMatrix, checks: &CooChecks) -> Result<(), SparseError> {
    if checks.square && coo.nrows() != coo.ncols() {
        return Err(SparseError::NotSquare {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
        });
    }
    // The flat index `r·ncols + c` and the CSR rowptr both index with
    // `usize`; nnz itself must also be addressable. On 32-bit targets a
    // huge nnz could overflow downstream `usize` arithmetic.
    if coo.nnz() as u64 > u32::MAX as u64 {
        return Err(SparseError::IndexOverflow {
            what: "non-zero count",
            value: coo.nnz() as u64,
            max: u32::MAX as u64,
        });
    }

    let rows = coo.row_indices();
    let cols = coo.col_indices();
    let vals = coo.values();
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    // The symmetry scan binary-searches and therefore needs canonical
    // order; requesting it implies the canonicity check.
    let canonical = checks.canonical || checks.symmetric.is_some();
    let mut prev: Option<(Idx, Idx)> = None;
    for (i, ((&r, &c), &v)) in rows.iter().zip(cols).zip(vals).enumerate() {
        if r >= nrows || c >= ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: r,
                col: c,
                nrows,
                ncols,
            });
        }
        if !v.is_finite() {
            return Err(SparseError::NonFiniteValue {
                row: r,
                col: c,
                value: v,
            });
        }
        if canonical {
            if let Some(p) = prev {
                if p == (r, c) {
                    return Err(SparseError::DuplicateEntry { row: r, col: c });
                }
                if p > (r, c) {
                    return Err(SparseError::UnsortedTriplets { position: i });
                }
            }
            prev = Some((r, c));
        }
    }

    if let Some(tol) = checks.symmetric {
        if !coo.is_symmetric(tol) {
            // Locate the first offending entry for the error message.
            for (r, c, v) in coo.iter() {
                if r == c {
                    continue;
                }
                match coo.find(c, r) {
                    Some(w) if (w - v).abs() <= tol => {}
                    _ => return Err(SparseError::NotSymmetric { row: r, col: c }),
                }
            }
            return Err(SparseError::NotSymmetric { row: 0, col: 0 });
        }
    }
    Ok(())
}

/// Converts a `u64` (as parsed from external input) into the 4-byte index
/// type, reporting [`SparseError::IndexOverflow`] with context on failure.
pub fn checked_idx(value: u64, what: &'static str) -> Result<Idx, SparseError> {
    Idx::try_from(value).map_err(|_| SparseError::IndexOverflow {
        what,
        value,
        max: Idx::MAX as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym3() -> CooMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.push(2, 2, 4.0);
        m.canonicalize();
        m
    }

    #[test]
    fn well_formed_passes_all_checks() {
        let m = sym3();
        assert!(validate_coo(&m, &CooChecks::symmetric_format()).is_ok());
        assert!(validate_coo(&m, &CooChecks::unsymmetric_format()).is_ok());
    }

    #[test]
    fn nan_and_inf_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut m = sym3();
            m.push(2, 1, bad);
            m.push(1, 2, bad);
            let err = validate_coo(&m, &CooChecks::default()).unwrap_err();
            assert!(
                matches!(err, SparseError::NonFiniteValue { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn duplicates_rejected_when_canonical_required() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.0);
        let err = validate_coo(&m, &CooChecks::unsymmetric_format()).unwrap_err();
        assert_eq!(err, SparseError::DuplicateEntry { row: 0, col: 0 });
        // Without the canonical requirement duplicates are tolerated.
        assert!(validate_coo(&m, &CooChecks::default()).is_ok());
    }

    #[test]
    fn unsorted_rejected_when_canonical_required() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        let err = validate_coo(&m, &CooChecks::unsymmetric_format()).unwrap_err();
        assert_eq!(err, SparseError::UnsortedTriplets { position: 1 });
    }

    #[test]
    fn asymmetric_rejected() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0);
        m.canonicalize();
        let err = validate_coo(&m, &CooChecks::symmetric_format()).unwrap_err();
        assert!(matches!(err, SparseError::NotSymmetric { row: 0, col: 1 }));
    }

    #[test]
    fn non_square_rejected_for_symmetric_format() {
        let m = CooMatrix::new(2, 3);
        let err = validate_coo(&m, &CooChecks::symmetric_format()).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { .. }));
    }

    #[test]
    fn checked_idx_reports_overflow() {
        assert_eq!(checked_idx(7, "row count"), Ok(7));
        let err = checked_idx(u64::from(Idx::MAX) + 1, "row count").unwrap_err();
        assert!(matches!(
            err,
            SparseError::IndexOverflow {
                what: "row count",
                ..
            }
        ));
    }
}
