//! Structural validation of COO inputs — the checks behind every
//! `try_from_coo` constructor.
//!
//! RACE-style pipelines treat input validation as a first-class
//! preprocessing stage: a malformed matrix must surface as a structured
//! [`SparseError`] *before* any kernel touches it, never as a panic inside
//! a parallel region. This module centralizes the checks so each storage
//! format states its requirements declaratively.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::symmetry::SymmetryKind;
use crate::{Idx, Val};

/// Which structural properties a constructor requires of its input.
///
/// `CooChecks::default()` checks only universal well-formedness (finite
/// values, in-range indices); builders add the properties their format
/// needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CooChecks {
    /// Require `nrows == ncols`.
    pub square: bool,
    /// Require numeric symmetry within this absolute tolerance.
    pub symmetric: Option<Val>,
    /// Require skew symmetry (`a_ji = -a_ij`, zero diagonal) within this
    /// absolute tolerance.
    pub skew: Option<Val>,
    /// Require a symmetric sparsity *pattern* (values unconstrained).
    pub pattern_symmetric: bool,
    /// Require row-major sorted triplets with no duplicate coordinates.
    pub canonical: bool,
}

impl CooChecks {
    /// The requirements of the symmetric formats (SSS, CSX-Sym, CSB-Sym):
    /// square, exactly symmetric, canonical.
    pub fn symmetric_format() -> Self {
        CooChecks {
            square: true,
            symmetric: Some(0.0),
            canonical: true,
            ..CooChecks::default()
        }
    }

    /// The requirements of the skew-symmetric half-storage formats:
    /// square, exactly skew (zero diagonal), canonical.
    pub fn skew_format() -> Self {
        CooChecks {
            square: true,
            skew: Some(0.0),
            canonical: true,
            ..CooChecks::default()
        }
    }

    /// The requirements of the structurally symmetric half-storage
    /// formats: square, pattern-symmetric, canonical.
    pub fn structural_format() -> Self {
        CooChecks {
            square: true,
            pattern_symmetric: true,
            canonical: true,
            ..CooChecks::default()
        }
    }

    /// The half-storage requirements for a symmetry kind, with the numeric
    /// checks (symmetric/skew) at tolerance `tol`.
    pub fn for_kind(kind: SymmetryKind, tol: Val) -> Self {
        match kind {
            SymmetryKind::Symmetric => CooChecks {
                symmetric: Some(tol),
                ..CooChecks::symmetric_format()
            },
            SymmetryKind::Skew => CooChecks {
                skew: Some(tol),
                ..CooChecks::skew_format()
            },
            SymmetryKind::Structural => CooChecks::structural_format(),
        }
    }

    /// The requirements of the unsymmetric formats (CSR, BCSR, CSB, CSX):
    /// canonical triplets, nothing more.
    pub fn unsymmetric_format() -> Self {
        CooChecks {
            square: false,
            symmetric: None,
            canonical: true,
            ..CooChecks::default()
        }
    }
}

/// Validates `coo` against `checks`, returning the first violation found.
///
/// Checks run cheapest-first: dimension/overflow guards, then a single
/// pass over the triplets (bounds, finiteness, order, duplicates), then
/// the `O(nnz·log nnz)` symmetry scan when requested.
pub fn validate_coo(coo: &CooMatrix, checks: &CooChecks) -> Result<(), SparseError> {
    if checks.square && coo.nrows() != coo.ncols() {
        return Err(SparseError::NotSquare {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
        });
    }
    // The flat index `r·ncols + c` and the CSR rowptr both index with
    // `usize`; nnz itself must also be addressable. On 32-bit targets a
    // huge nnz could overflow downstream `usize` arithmetic.
    if coo.nnz() as u64 > u32::MAX as u64 {
        return Err(SparseError::IndexOverflow {
            what: "non-zero count",
            value: coo.nnz() as u64,
            max: u32::MAX as u64,
        });
    }

    let rows = coo.row_indices();
    let cols = coo.col_indices();
    let vals = coo.values();
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    // The symmetry scans binary-search and therefore need canonical
    // order; requesting one implies the canonicity check.
    let canonical = checks.canonical
        || checks.symmetric.is_some()
        || checks.skew.is_some()
        || checks.pattern_symmetric;
    let mut prev: Option<(Idx, Idx)> = None;
    for (i, ((&r, &c), &v)) in rows.iter().zip(cols).zip(vals).enumerate() {
        if r >= nrows || c >= ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: r,
                col: c,
                nrows,
                ncols,
            });
        }
        if !v.is_finite() {
            return Err(SparseError::NonFiniteValue {
                row: r,
                col: c,
                value: v,
            });
        }
        if canonical {
            if let Some(p) = prev {
                if p == (r, c) {
                    return Err(SparseError::DuplicateEntry { row: r, col: c });
                }
                if p > (r, c) {
                    return Err(SparseError::UnsortedTriplets { position: i });
                }
            }
            prev = Some((r, c));
        }
    }

    if let Some(tol) = checks.symmetric {
        if !coo.is_symmetric(tol) {
            // Locate the first offending entry for the error message.
            for (r, c, v) in coo.iter() {
                if r == c {
                    continue;
                }
                match coo.find(c, r) {
                    Some(w) if (w - v).abs() <= tol => {}
                    _ => return Err(SparseError::NotSymmetric { row: r, col: c }),
                }
            }
            return Err(SparseError::NotSymmetric { row: 0, col: 0 });
        }
    }

    if let Some(tol) = checks.skew {
        if !coo.is_skew_symmetric(tol) {
            // Locate the first offending entry for the error message,
            // distinguishing the diagonal violation from a missing mirror.
            for (r, c, v) in coo.iter() {
                if r == c {
                    if v.abs() > tol {
                        return Err(SparseError::SkewNonzeroDiagonal { row: r, value: v });
                    }
                    continue;
                }
                match coo.find(c, r) {
                    Some(w) if (v + w).abs() <= tol => {}
                    _ => return Err(SparseError::NotSkewSymmetric { row: r, col: c }),
                }
            }
            return Err(SparseError::NotSkewSymmetric { row: 0, col: 0 });
        }
    }

    if checks.pattern_symmetric && !coo.is_structurally_symmetric() {
        for (r, c, _) in coo.iter() {
            if r != c && coo.find(c, r).is_none() {
                return Err(SparseError::NotStructurallySymmetric { row: r, col: c });
            }
        }
        return Err(SparseError::NotStructurallySymmetric { row: 0, col: 0 });
    }
    Ok(())
}

/// Converts a `u64` (as parsed from external input) into the 4-byte index
/// type, reporting [`SparseError::IndexOverflow`] with context on failure.
pub fn checked_idx(value: u64, what: &'static str) -> Result<Idx, SparseError> {
    Idx::try_from(value).map_err(|_| SparseError::IndexOverflow {
        what,
        value,
        max: Idx::MAX as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym3() -> CooMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.push(2, 2, 4.0);
        m.canonicalize();
        m
    }

    #[test]
    fn well_formed_passes_all_checks() {
        let m = sym3();
        assert!(validate_coo(&m, &CooChecks::symmetric_format()).is_ok());
        assert!(validate_coo(&m, &CooChecks::unsymmetric_format()).is_ok());
    }

    #[test]
    fn nan_and_inf_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut m = sym3();
            m.push(2, 1, bad);
            m.push(1, 2, bad);
            let err = validate_coo(&m, &CooChecks::default()).unwrap_err();
            assert!(
                matches!(err, SparseError::NonFiniteValue { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn duplicates_rejected_when_canonical_required() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.0);
        let err = validate_coo(&m, &CooChecks::unsymmetric_format()).unwrap_err();
        assert_eq!(err, SparseError::DuplicateEntry { row: 0, col: 0 });
        // Without the canonical requirement duplicates are tolerated.
        assert!(validate_coo(&m, &CooChecks::default()).is_ok());
    }

    #[test]
    fn unsorted_rejected_when_canonical_required() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        let err = validate_coo(&m, &CooChecks::unsymmetric_format()).unwrap_err();
        assert_eq!(err, SparseError::UnsortedTriplets { position: 1 });
    }

    #[test]
    fn asymmetric_rejected() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0);
        m.canonicalize();
        let err = validate_coo(&m, &CooChecks::symmetric_format()).unwrap_err();
        assert!(matches!(err, SparseError::NotSymmetric { row: 0, col: 1 }));
    }

    #[test]
    fn non_square_rejected_for_symmetric_format() {
        let m = CooMatrix::new(2, 3);
        let err = validate_coo(&m, &CooChecks::symmetric_format()).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { .. }));
    }

    fn skew3() -> CooMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, -1.0);
        m.push(1, 0, 1.0);
        m.push(1, 2, 2.0);
        m.push(2, 1, -2.0);
        m.canonicalize();
        m
    }

    #[test]
    fn skew_checks() {
        assert!(validate_coo(&skew3(), &CooChecks::skew_format()).is_ok());
        assert!(validate_coo(&skew3(), &CooChecks::for_kind(SymmetryKind::Skew, 0.0)).is_ok());

        // A nonzero diagonal is a distinct, named violation.
        let mut d = skew3();
        d.push(1, 1, 4.0);
        d.canonicalize();
        let err = validate_coo(&d, &CooChecks::skew_format()).unwrap_err();
        assert_eq!(err, SparseError::SkewNonzeroDiagonal { row: 1, value: 4.0 });

        // sym3 has a nonzero diagonal, flagged before the mirror scan.
        let err = validate_coo(&sym3(), &CooChecks::skew_format()).unwrap_err();
        assert!(matches!(err, SparseError::SkewNonzeroDiagonal { .. }));

        // A same-sign mirror (zero diagonal) fails the skew relation itself.
        let mut same_sign = CooMatrix::new(2, 2);
        same_sign.push(0, 1, 1.0);
        same_sign.push(1, 0, 1.0);
        same_sign.canonicalize();
        let err = validate_coo(&same_sign, &CooChecks::skew_format()).unwrap_err();
        assert!(matches!(err, SparseError::NotSkewSymmetric { .. }));

        // An unpaired entry fails it too.
        let mut u = skew3();
        u.push(0, 2, 5.0);
        u.canonicalize();
        let err = validate_coo(&u, &CooChecks::skew_format()).unwrap_err();
        assert_eq!(err, SparseError::NotSkewSymmetric { row: 0, col: 2 });
    }

    #[test]
    fn pattern_symmetry_checks() {
        // Pattern symmetric with unrelated values passes structural but
        // fails both numeric kinds.
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 3.0);
        m.push(1, 0, -7.5);
        m.canonicalize();
        assert!(validate_coo(&m, &CooChecks::structural_format()).is_ok());
        assert!(validate_coo(&m, &CooChecks::for_kind(SymmetryKind::Structural, 0.0)).is_ok());
        assert!(validate_coo(&m, &CooChecks::symmetric_format()).is_err());
        assert!(validate_coo(&m, &CooChecks::skew_format()).is_err());

        let mut u = m.clone();
        u.push(1, 1, 1.0);
        u.canonicalize();
        assert!(validate_coo(&u, &CooChecks::structural_format()).is_ok());

        let mut broken = CooMatrix::new(2, 2);
        broken.push(0, 1, 3.0);
        broken.canonicalize();
        let err = validate_coo(&broken, &CooChecks::structural_format()).unwrap_err();
        assert_eq!(
            err,
            SparseError::NotStructurallySymmetric { row: 0, col: 1 }
        );
    }

    #[test]
    fn for_kind_matches_format_constructors() {
        let sym = CooChecks::for_kind(SymmetryKind::Symmetric, 0.0);
        assert_eq!(sym.symmetric, Some(0.0));
        assert!(sym.square && sym.canonical);
        let skew = CooChecks::for_kind(SymmetryKind::Skew, 1e-9);
        assert_eq!(skew.skew, Some(1e-9));
        let st = CooChecks::for_kind(SymmetryKind::Structural, 0.0);
        assert!(st.pattern_symmetric && st.symmetric.is_none() && st.skew.is_none());
    }

    #[test]
    fn checked_idx_reports_overflow() {
        assert_eq!(checked_idx(7, "row count"), Ok(7));
        let err = checked_idx(u64::from(Idx::MAX) + 1, "row count").unwrap_err();
        assert!(matches!(
            err,
            SparseError::IndexOverflow {
                what: "row count",
                ..
            }
        ));
    }
}
