//! Compressed Sparse Row — the paper's baseline format (§II-A).
//!
//! CSR stores `values` and `colind` for every non-zero plus a `rowptr` array
//! of row starts. Its size model is Eq. 1 of the paper:
//! `S_CSR = 12·NNZ + 4·(N+1)` bytes.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::validate::{validate_coo, CooChecks};
use crate::{Idx, Val};

/// A sparse matrix in Compressed Sparse Row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: Idx,
    ncols: Idx,
    rowptr: Vec<Idx>,
    colind: Vec<Idx>,
    values: Vec<Val>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a COO matrix (canonicalizes a copy first).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut coo = coo.clone();
        coo.canonicalize();
        Self::from_canonical_coo(&coo)
    }

    /// Validated constructor: canonicalizes a copy, then checks the input
    /// for non-finite values and index overflow before building.
    ///
    /// Prefer this over [`CsrMatrix::from_coo`] for matrices arriving from
    /// outside the process (files, network, user code): a malformed input
    /// yields a structured [`SparseError`] instead of a downstream panic.
    pub fn try_from_coo(coo: &CooMatrix) -> Result<Self, SparseError> {
        let mut coo = coo.clone();
        coo.canonicalize();
        validate_coo(&coo, &CooChecks::unsymmetric_format())?;
        Ok(Self::from_canonical_coo(&coo))
    }

    /// Builds a CSR matrix from an already-canonical COO matrix without
    /// cloning the triplets a second time.
    pub fn from_canonical_coo(coo: &CooMatrix) -> Self {
        debug_assert!(coo.is_canonical());
        let nrows = coo.nrows();
        let nnz = coo.nnz();
        let mut rowptr = vec![0 as Idx; nrows as usize + 1];
        for &r in coo.row_indices() {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..nrows as usize {
            rowptr[i + 1] += rowptr[i];
        }
        debug_assert_eq!(rowptr[nrows as usize] as usize, nnz);
        CsrMatrix {
            nrows,
            ncols: coo.ncols(),
            rowptr,
            colind: coo.col_indices().to_vec(),
            values: coo.values().to_vec(),
        }
    }

    /// Builds a CSR matrix directly from raw arrays (debug-checked).
    pub fn from_raw(
        nrows: Idx,
        ncols: Idx,
        rowptr: Vec<Idx>,
        colind: Vec<Idx>,
        values: Vec<Val>,
    ) -> Self {
        debug_assert_eq!(rowptr.len(), nrows as usize + 1);
        debug_assert_eq!(colind.len(), values.len());
        debug_assert_eq!(*rowptr.last().unwrap_or(&0) as usize, colind.len());
        debug_assert!(colind.iter().all(|&c| c < ncols));
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Idx {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Idx {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn rowptr(&self) -> &[Idx] {
        &self.rowptr
    }

    /// Column index array.
    pub fn colind(&self) -> &[Idx] {
        &self.colind
    }

    /// Non-zero values array.
    pub fn values(&self) -> &[Val] {
        &self.values
    }

    /// The column indices and values of row `r`.
    pub fn row(&self, r: Idx) -> (&[Idx], &[Val]) {
        let lo = self.rowptr[r as usize] as usize;
        let hi = self.rowptr[r as usize + 1] as usize;
        (&self.colind[lo..hi], &self.values[lo..hi])
    }

    /// Looks up entry `(r, c)` by binary search within the row.
    pub fn get(&self, r: Idx, c: Idx) -> Option<Val> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// Size of the representation in bytes — Eq. 1 of the paper:
    /// `12·NNZ + 4·(N+1)`.
    pub fn size_bytes(&self) -> usize {
        12 * self.nnz() + 4 * (self.nrows as usize + 1)
    }

    /// Serial SpMV: `y = A·x`.
    pub fn spmv(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols as usize);
        assert_eq!(y.len(), self.nrows as usize);
        self.spmv_rows(0, self.nrows, x, y);
    }

    /// SpMV restricted to rows `[start, end)` — the building block the
    /// multithreaded CSR kernel partitions over.
    #[inline]
    pub fn spmv_rows(&self, start: Idx, end: Idx, x: &[Val], y: &mut [Val]) {
        for r in start..end {
            let lo = self.rowptr[r as usize] as usize;
            let hi = self.rowptr[r as usize + 1] as usize;
            let mut acc = 0.0;
            for j in lo..hi {
                acc += self.values[j] * x[self.colind[j] as usize];
            }
            y[r as usize] = acc;
        }
    }

    /// Converts back to COO (canonical by construction).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c, v);
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        // [[1, 0, 2], [0, 0, 3], [4, 5, 6]]
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(1, 2, 3.0);
        m.push(2, 0, 4.0);
        m.push(2, 1, 5.0);
        m.push(2, 2, 6.0);
        m
    }

    #[test]
    fn conversion_preserves_structure() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 6);
        assert_eq!(csr.rowptr(), &[0, 2, 3, 6]);
        assert_eq!(csr.colind(), &[0, 2, 2, 0, 1, 2]);
        assert_eq!(csr.get(2, 1), Some(5.0));
        assert_eq!(csr.get(1, 0), None);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        let back = csr.to_coo();
        let csr2 = CsrMatrix::from_coo(&back);
        assert_eq!(csr, csr2);
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        let mut y_ref = vec![0.0; 3];
        csr.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn spmv_rows_partial_only_writes_range() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let x = vec![1.0; 3];
        let mut y = vec![-1.0; 3];
        csr.spmv_rows(1, 2, &x, &mut y);
        assert_eq!(y[0], -1.0);
        assert_eq!(y[1], 3.0);
        assert_eq!(y[2], -1.0);
    }

    #[test]
    fn size_model_eq1() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        // 12 * 6 + 4 * 4 = 88
        assert_eq!(csr.size_bytes(), 88);
    }

    #[test]
    fn empty_rows_handled() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 3, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.rowptr(), &[0, 0, 0, 0, 1]);
        let x = vec![2.0; 4];
        let mut y = vec![9.0; 4];
        csr.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 2.0]);
    }
}
