//! Blocked Compressed Sparse Row (BCSR) — the register-blocking baseline
//! of the paper's related work (Im & Yelick's SPARSITY, the OSKI lineage).
//!
//! The matrix is tiled with aligned `br × bc` blocks; every block that
//! contains at least one non-zero is stored *densely* (explicit zero
//! fill), so the column index cost is paid once per block instead of once
//! per element. Whether the fill-in pays for the saved indices depends on
//! the matrix — [`choose_block_size`] estimates the best dimensions the
//! way auto-tuners do, from the fill ratio.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::validate::{validate_coo, CooChecks};
use crate::{Idx, Val};
use std::collections::HashMap;

/// Entries of one block during assembly: (local row, local col, value).
type BlockEntries = Vec<(u32, u32, Val)>;

/// A sparse matrix in BCSR format with `br × bc` dense blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    nrows: Idx,
    ncols: Idx,
    br: u32,
    bc: u32,
    /// Block-row pointers (`nrows.div_ceil(br) + 1` entries).
    browptr: Vec<Idx>,
    /// Block-column indices (per stored block).
    bcolind: Vec<Idx>,
    /// Dense block payloads, row-major within each block.
    values: Vec<Val>,
    /// True non-zeros (pre-fill), for flop accounting.
    true_nnz: usize,
}

impl BcsrMatrix {
    /// Validated constructor: rejects degenerate block dimensions and
    /// structurally invalid input (non-finite values, index overflow) with
    /// a structured [`SparseError`] instead of panicking.
    pub fn try_from_coo(coo: &CooMatrix, br: u32, bc: u32) -> Result<Self, SparseError> {
        if br == 0 || bc == 0 {
            return Err(SparseError::InvalidArgument {
                msg: format!("block dimensions must be positive, got {br}x{bc}"),
            });
        }
        // The dense payload of one block is indexed as `lr·bc + lc`; keep
        // the product inside u32 so local offsets cannot wrap.
        if br as u64 * bc as u64 > u32::MAX as u64 {
            return Err(SparseError::IndexOverflow {
                what: "block area (br*bc)",
                value: br as u64 * bc as u64,
                max: u32::MAX as u64,
            });
        }
        let mut c = coo.clone();
        c.canonicalize();
        validate_coo(&c, &CooChecks::unsymmetric_format())?;
        Ok(Self::from_coo(&c, br, bc))
    }

    /// Builds a BCSR matrix with the given block dimensions.
    pub fn from_coo(coo: &CooMatrix, br: u32, bc: u32) -> Self {
        assert!(br >= 1 && bc >= 1, "block dimensions must be positive");
        let mut c = coo.clone();
        c.canonicalize();
        let nrows = c.nrows();
        let ncols = c.ncols();
        let nbrows = nrows.div_ceil(br).max(1);

        // Group entries by (block row, block col).
        let mut blocks: HashMap<(Idx, Idx), BlockEntries> = HashMap::new();
        for (r, col, v) in c.iter() {
            blocks
                .entry((r / br, col / bc))
                .or_default()
                .push((r % br, col % bc, v));
        }
        let mut keys: Vec<(Idx, Idx)> = blocks.keys().copied().collect();
        keys.sort_unstable();

        let bsize = (br * bc) as usize;
        let mut browptr = vec![0 as Idx; nbrows as usize + 1];
        let mut bcolind = Vec::with_capacity(keys.len());
        let mut values = Vec::with_capacity(keys.len() * bsize);
        for &(bi, bj) in &keys {
            browptr[bi as usize + 1] += 1;
            bcolind.push(bj);
            let mut dense = vec![0.0; bsize];
            for &(lr, lc, v) in &blocks[&(bi, bj)] {
                dense[(lr * bc + lc) as usize] += v;
            }
            values.extend(dense);
        }
        for i in 0..nbrows as usize {
            browptr[i + 1] += browptr[i];
        }
        BcsrMatrix {
            nrows,
            ncols,
            br,
            bc,
            browptr,
            bcolind,
            values,
            true_nnz: c.nnz(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Idx {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Idx {
        self.ncols
    }

    /// Block dimensions `(br, bc)`.
    pub fn block_dims(&self) -> (u32, u32) {
        (self.br, self.bc)
    }

    /// Stored blocks.
    pub fn nblocks(&self) -> usize {
        self.bcolind.len()
    }

    /// True non-zeros (before fill-in).
    pub fn true_nnz(&self) -> usize {
        self.true_nnz
    }

    /// Stored elements including explicit zero fill.
    pub fn stored_elements(&self) -> usize {
        self.values.len()
    }

    /// Fill ratio: stored elements / true non-zeros (≥ 1).
    pub fn fill_ratio(&self) -> f64 {
        self.stored_elements() as f64 / self.true_nnz.max(1) as f64
    }

    /// Size in bytes: dense payloads + 4-byte block columns + block rowptr.
    pub fn size_bytes(&self) -> usize {
        8 * self.values.len() + 4 * self.bcolind.len() + 4 * (self.browptr.len())
    }

    /// Block-row weights (stored elements per block row) for partitioning.
    pub fn blockrow_weights(&self) -> Vec<u64> {
        let bsize = (self.br * self.bc) as u64;
        self.browptr
            .windows(2)
            .map(|w| (w[1] - w[0]) as u64 * bsize + 1)
            .collect()
    }

    /// SpMV over block rows `[bstart, bend)`, writing the corresponding
    /// rows of `y` (absolute indexing).
    pub fn spmv_blockrows(&self, bstart: Idx, bend: Idx, x: &[Val], y: &mut [Val]) {
        let (br, bc) = (self.br as usize, self.bc as usize);
        for bi in bstart..bend {
            let row0 = bi as usize * br;
            let rows_here = br.min(self.nrows as usize - row0);
            let mut acc = [0.0; 8];
            debug_assert!(
                br <= 8,
                "register-block rows kept small by choose_block_size"
            );
            let acc = &mut acc[..rows_here.max(1)];
            for a in acc.iter_mut() {
                *a = 0.0;
            }
            let lo = self.browptr[bi as usize] as usize;
            let hi = self.browptr[bi as usize + 1] as usize;
            for k in lo..hi {
                let col0 = self.bcolind[k] as usize * bc;
                let block = &self.values[k * br * bc..(k + 1) * br * bc];
                let cols_here = bc.min(self.ncols as usize - col0);
                for (lr, a) in acc.iter_mut().enumerate().take(rows_here) {
                    let brow = &block[lr * bc..lr * bc + cols_here];
                    let xs = &x[col0..col0 + cols_here];
                    let mut s = 0.0;
                    for (&v, &xv) in brow.iter().zip(xs) {
                        s += v * xv;
                    }
                    *a += s;
                }
            }
            for (lr, &a) in acc.iter().enumerate().take(rows_here) {
                y[row0 + lr] = a;
            }
        }
    }

    /// Serial SpMV: `y = A·x`.
    pub fn spmv(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols as usize);
        assert_eq!(y.len(), self.nrows as usize);
        self.spmv_blockrows(0, self.nrows.div_ceil(self.br), x, y);
    }

    /// Reconstructs the COO form, dropping fill-in zeros (testing).
    pub fn to_coo(&self) -> CooMatrix {
        let (br, bc) = (self.br, self.bc);
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.true_nnz);
        for bi in 0..(self.browptr.len() - 1) as Idx {
            let lo = self.browptr[bi as usize] as usize;
            let hi = self.browptr[bi as usize + 1] as usize;
            for k in lo..hi {
                let bj = self.bcolind[k];
                let block = &self.values[k * (br * bc) as usize..(k + 1) * (br * bc) as usize];
                for lr in 0..br {
                    for lc in 0..bc {
                        let v = block[(lr * bc + lc) as usize];
                        let (r, c) = (bi * br + lr, bj * bc + lc);
                        if v != 0.0 && r < self.nrows && c < self.ncols {
                            coo.push(r, c, v);
                        }
                    }
                }
            }
        }
        coo.canonicalize();
        coo
    }
}

/// Auto-tunes the block dimensions the way SPARSITY/OSKI do: estimate the
/// fill ratio of each candidate on a row sample and pick the dimensions
/// minimizing estimated bytes (payload + block indices).
pub fn choose_block_size(coo: &CooMatrix, candidates: &[(u32, u32)]) -> (u32, u32) {
    let mut c = coo.clone();
    c.canonicalize();
    let mut best = (1, 1);
    let mut best_cost = f64::INFINITY;
    for &(br, bc) in candidates {
        // Count distinct blocks (exact; the sample optimization is not
        // needed at our scales).
        let mut blocks = std::collections::HashSet::new();
        for (r, col, _) in c.iter() {
            blocks.insert(((r / br) as u64) << 32 | (col / bc) as u64);
        }
        let stored = blocks.len() as f64 * (br * bc) as f64;
        let cost = 8.0 * stored + 4.0 * blocks.len() as f64;
        if cost < best_cost {
            best_cost = cost;
            best = (br, bc);
        }
    }
    best
}

/// The candidate set auto-tuners conventionally search.
pub const BLOCK_CANDIDATES: [(u32, u32); 7] =
    [(1, 1), (2, 2), (3, 3), (4, 4), (2, 1), (1, 2), (6, 6)];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn round_trip_drops_fill() {
        let coo = crate::gen::block_structural(20, 3, 4.0, 6, 3);
        let mut canon = coo.clone();
        canon.canonicalize();
        for (br, bc) in [(1, 1), (2, 2), (3, 3), (4, 2)] {
            let b = BcsrMatrix::from_coo(&coo, br, bc);
            assert_eq!(b.to_coo(), canon, "block {br}x{bc}");
            assert_eq!(b.true_nnz(), canon.nnz());
            assert!(b.fill_ratio() >= 1.0);
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = crate::gen::banded_random(250, 14, 8.0, 6);
        let x = seeded_vector(250, 4);
        let mut y_ref = vec![0.0; 250];
        coo.spmv_reference(&x, &mut y_ref);
        for (br, bc) in [(1, 1), (2, 2), (3, 3), (2, 4)] {
            let b = BcsrMatrix::from_coo(&coo, br, bc);
            let mut y = vec![f64::NAN; 250];
            b.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn three_by_three_blocks_have_unit_fill_on_block_matrix() {
        // A 3-dof structural matrix tiles perfectly with aligned 3x3 blocks.
        let coo = crate::gen::block_structural(30, 3, 6.0, 8, 1);
        let b = BcsrMatrix::from_coo(&coo, 3, 3);
        assert!(
            b.fill_ratio() < 1.35,
            "block matrix should have low fill: {}",
            b.fill_ratio()
        );
        // 1x1 BCSR degenerates to CSR-equivalent storage.
        let b1 = BcsrMatrix::from_coo(&coo, 1, 1);
        assert_eq!(b1.stored_elements(), b1.true_nnz());
    }

    #[test]
    fn auto_tuner_prefers_3x3_on_3dof_matrix() {
        let coo = crate::gen::block_structural(40, 3, 8.0, 10, 2);
        let (br, bc) = choose_block_size(&coo, &BLOCK_CANDIDATES);
        assert_eq!((br, bc), (3, 3), "expected 3x3 for a 3-dof FEM matrix");
    }

    #[test]
    fn auto_tuner_prefers_1x1_on_scattered_matrix() {
        let coo = crate::gen::mixed_bandwidth(300, 5.0, 0.3, 8, 3);
        let (br, bc) = choose_block_size(&coo, &BLOCK_CANDIDATES);
        assert_eq!((br, bc), (1, 1), "scattered matrices should not block");
    }

    #[test]
    fn ragged_edges() {
        // N not divisible by the block size.
        let mut coo = CooMatrix::new(7, 7);
        for i in 0..7 {
            coo.push(i, i, i as Val + 1.0);
        }
        coo.push(6, 0, 2.0);
        let b = BcsrMatrix::from_coo(&coo, 3, 3);
        let x = seeded_vector(7, 1);
        let mut y = vec![0.0; 7];
        let mut y_ref = vec![0.0; 7];
        b.spmv(&x, &mut y);
        coo.canonicalize();
        coo.spmv_reference(&x, &mut y_ref);
        assert_vec_close(&y, &y_ref, 1e-12);
    }
}
