//! Binary serialization of COO matrices, used to cache generated suite
//! matrices between experiment invocations.
//!
//! Hand-rolled little-endian format (no serialization dependency):
//!
//! ```text
//! magic   8 bytes  "SYMSPMV1"
//! nrows   u32      ncols u32      nnz u64
//! rows    nnz × u32
//! cols    nnz × u32
//! vals    nnz × f64 (bit pattern)
//! ```
//!
//! The format is an internal cache, not an interchange format — use
//! MatrixMarket ([`crate::mm`]) to exchange matrices with other tools.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::{Idx, Val};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SYMSPMV1";

/// Writes a matrix in the binary cache format.
pub fn write_binary<W: Write>(w: &mut W, coo: &CooMatrix) -> Result<(), SparseError> {
    w.write_all(MAGIC)?;
    w.write_all(&coo.nrows().to_le_bytes())?;
    w.write_all(&coo.ncols().to_le_bytes())?;
    w.write_all(&(coo.nnz() as u64).to_le_bytes())?;
    for &r in coo.row_indices() {
        w.write_all(&r.to_le_bytes())?;
    }
    for &c in coo.col_indices() {
        w.write_all(&c.to_le_bytes())?;
    }
    for &v in coo.values() {
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    Ok(())
}

/// Reads a matrix from the binary cache format.
pub fn read_binary<R: Read>(r: &mut R) -> Result<CooMatrix, SparseError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse {
            line: 0,
            msg: "bad cache magic".into(),
        });
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4)?;
    let nrows = Idx::from_le_bytes(b4);
    r.read_exact(&mut b4)?;
    let ncols = Idx::from_le_bytes(b4);
    r.read_exact(&mut b8)?;
    let nnz = u64::from_le_bytes(b8) as usize;

    // Guard against absurd header values before allocating.
    if nnz > (1usize << 33) {
        return Err(SparseError::Parse {
            line: 0,
            msg: format!("implausible nnz {nnz}"),
        });
    }
    let mut read_u32s = |n: usize| -> Result<Vec<Idx>, SparseError> {
        let mut buf = vec![0u8; n * 4];
        r.read_exact(&mut buf)?;
        Ok(buf
            .chunks_exact(4)
            .map(|c| Idx::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    };
    let rows = read_u32s(nnz)?;
    let cols = read_u32s(nnz)?;
    let mut buf = vec![0u8; nnz * 8];
    r.read_exact(&mut buf)?;
    let vals: Vec<Val> = buf
        .chunks_exact(8)
        .map(|c| {
            Val::from_bits(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]))
        })
        .collect();
    CooMatrix::from_triplets(nrows, ncols, rows, cols, vals)
}

/// Loads `path` if it exists, otherwise generates the matrix with `gen`,
/// stores it, and returns it. I/O failures fall back to generation (a cache
/// must never break the caller).
pub fn load_or_generate<P: AsRef<Path>>(
    path: P,
    generate: impl FnOnce() -> CooMatrix,
) -> CooMatrix {
    let path = path.as_ref();
    if let Ok(mut f) = std::fs::File::open(path) {
        if let Ok(coo) = read_binary(&mut f) {
            return coo;
        }
    }
    let coo = generate();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::File::create(path) {
        if write_binary(&mut f, &coo).is_err() {
            let _ = std::fs::remove_file(path);
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact() {
        let coo = crate::gen::banded_random(300, 12, 7.0, 9);
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        let back = read_binary(&mut &buf[..]).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn bit_exact_values_survive() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, f64::MIN_POSITIVE);
        coo.push(1, 1, -0.0);
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        let back = read_binary(&mut &buf[..]).unwrap();
        assert_eq!(back.values()[0], f64::MIN_POSITIVE);
        assert!(back.values()[1].to_bits() == (-0.0f64).to_bits());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTMAGIC".to_vec();
        assert!(read_binary(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let coo = crate::gen::laplacian_2d(5, 5);
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&mut &buf[..]).is_err());
    }

    #[test]
    fn load_or_generate_caches() {
        let dir = std::env::temp_dir().join("symspmv_cache_test");
        let path = dir.join("m.bin");
        let _ = std::fs::remove_file(&path);
        let mut calls = 0;
        let a = load_or_generate(&path, || {
            calls += 1;
            crate::gen::laplacian_2d(6, 6)
        });
        assert_eq!(calls, 1);
        let b = load_or_generate(&path, || {
            calls += 1;
            crate::gen::laplacian_2d(6, 6)
        });
        assert_eq!(calls, 1, "second load must come from the cache");
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }
}
