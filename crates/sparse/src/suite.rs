//! The 12-matrix evaluation suite — synthetic analogs of Table I.
//!
//! Each entry records the *paper's* matrix characteristics (rows, non-zeros,
//! CSR size, the compression ratios the paper reports) and a structure class
//! that selects a generator with matched non-zeros/row, block structure and
//! bandwidth profile. A global `scale` shrinks the dimension so the suite
//! runs on a laptop; `scale = 1.0` reproduces the original sizes.

use crate::coo::CooMatrix;
use crate::gen;
use crate::symmetry::SymmetryKind;
use crate::Idx;

/// Structure class of a suite matrix, mapped to a generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StructureClass {
    /// Banded node graph with dense 3×3 dof blocks (structural FEM), with
    /// mesh-generator-style locally-shuffled node numbering.
    BlockStructural {
        /// Average neighbor nodes per node.
        node_degree: f64,
        /// Neighbor locality, as a fraction of the node count.
        band_frac: f64,
    },
    /// Local band plus globally scattered entries, hidden behind a random
    /// numbering (the high-bandwidth corner cases; RCM can recover the
    /// band but not the scattered fraction — §V-D).
    MixedBandwidth {
        /// Fraction of entries that stay within the local band.
        local_frac: f64,
        /// Local band half-width as a fraction of N.
        band_frac: f64,
    },
    /// Power-law circuit-like graph (local mesh + global hub rails),
    /// scrambled like the mixed class.
    PowerLaw {
        /// Fraction of rows acting as hubs.
        hub_frac: f64,
    },
    /// Dense-ish band (nd12k-style 2D/3D problem).
    DenseBand {
        /// Band half-width as a fraction of N.
        band_frac: f64,
    },
    /// Skew-symmetric convection transport operator (banded antisymmetric
    /// couplings, zero diagonal), scrambled like the mixed class so RCM
    /// has a numbering to recover — the PARS3 experiment setup.
    SkewConvection {
        /// Band half-width as a fraction of N.
        band_frac: f64,
    },
    /// Structurally symmetric circuit-like matrix: mirrored pattern,
    /// independently drawn pair values (Batista et al.'s target class).
    StructuralCircuit {
        /// Fraction of pairs that stay within the local band.
        local_frac: f64,
        /// Local band half-width as a fraction of N.
        band_frac: f64,
    },
}

/// Static description of one Table I matrix.
#[derive(Debug, Clone, Copy)]
pub struct SuiteSpec {
    /// Matrix name as in the paper.
    pub name: &'static str,
    /// Rows in the original UF matrix.
    pub paper_rows: u64,
    /// Non-zeros in the original UF matrix.
    pub paper_nnz: u64,
    /// CSR size reported by the paper (MiB).
    pub paper_size_mib: f64,
    /// Compression ratio achieved by CSX-Sym in the paper (%).
    pub paper_cr_csx_sym: f64,
    /// Maximum possible symmetric compression ratio in the paper (%).
    pub paper_cr_max: f64,
    /// Problem domain as listed in Table I.
    pub problem: &'static str,
    /// Structure class used by the synthetic analog.
    pub class: StructureClass,
    /// Symmetry kind of the generated matrix.
    pub kind: SymmetryKind,
    /// Deterministic generator seed.
    pub seed: u64,
}

impl SuiteSpec {
    /// Non-zeros per row of the original matrix.
    pub fn paper_nnz_per_row(&self) -> f64 {
        self.paper_nnz as f64 / self.paper_rows as f64
    }
}

/// The paper's 12-matrix suite (Table I), in paper order.
pub const SUITE: [SuiteSpec; 12] = [
    SuiteSpec {
        name: "parabolic_fem",
        paper_rows: 525_825,
        paper_nnz: 3_674_625,
        paper_size_mib: 44.06,
        paper_cr_csx_sym: 49.6,
        paper_cr_max: 63.6,
        problem: "C.F.D.",
        class: StructureClass::MixedBandwidth {
            local_frac: 0.80,
            band_frac: 1.0 / 64.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA001,
    },
    SuiteSpec {
        name: "offshore",
        paper_rows: 259_789,
        paper_nnz: 4_242_673,
        paper_size_mib: 49.54,
        paper_cr_csx_sym: 56.1,
        paper_cr_max: 65.3,
        problem: "E/M",
        class: StructureClass::MixedBandwidth {
            local_frac: 0.90,
            band_frac: 1.0 / 32.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA002,
    },
    SuiteSpec {
        name: "consph",
        paper_rows: 83_334,
        paper_nnz: 6_010_480,
        paper_size_mib: 69.10,
        paper_cr_csx_sym: 63.9,
        paper_cr_max: 66.4,
        problem: "F.E.M.",
        class: StructureClass::BlockStructural {
            node_degree: 23.0,
            band_frac: 1.0 / 20.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA003,
    },
    SuiteSpec {
        name: "bmw7st_1",
        paper_rows: 141_347,
        paper_nnz: 7_339_667,
        paper_size_mib: 84.54,
        paper_cr_csx_sym: 64.4,
        paper_cr_max: 66.2,
        problem: "Structural",
        class: StructureClass::BlockStructural {
            node_degree: 16.3,
            band_frac: 1.0 / 40.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA004,
    },
    SuiteSpec {
        name: "G3_circuit",
        paper_rows: 1_585_478,
        paper_nnz: 7_660_826,
        paper_size_mib: 93.72,
        paper_cr_csx_sym: 60.2,
        paper_cr_max: 62.4,
        problem: "Circuit",
        class: StructureClass::PowerLaw { hub_frac: 0.002 },
        kind: SymmetryKind::Symmetric,
        seed: 0xA005,
    },
    SuiteSpec {
        name: "thermal2",
        paper_rows: 1_228_045,
        paper_nnz: 8_580_313,
        paper_size_mib: 102.88,
        paper_cr_csx_sym: 53.4,
        paper_cr_max: 63.6,
        problem: "Thermal",
        class: StructureClass::MixedBandwidth {
            local_frac: 0.88,
            band_frac: 1.0 / 48.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA006,
    },
    SuiteSpec {
        name: "bmwcra_1",
        paper_rows: 148_770,
        paper_nnz: 10_644_002,
        paper_size_mib: 122.38,
        paper_cr_csx_sym: 65.1,
        paper_cr_max: 66.4,
        problem: "Structural",
        class: StructureClass::BlockStructural {
            node_degree: 22.8,
            band_frac: 1.0 / 30.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA007,
    },
    SuiteSpec {
        name: "hood",
        paper_rows: 220_542,
        paper_nnz: 10_768_436,
        paper_size_mib: 124.08,
        paper_cr_csx_sym: 64.4,
        paper_cr_max: 66.2,
        problem: "Structural",
        class: StructureClass::BlockStructural {
            node_degree: 15.3,
            band_frac: 1.0 / 40.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA008,
    },
    SuiteSpec {
        name: "crankseg_2",
        paper_rows: 63_838,
        paper_nnz: 14_148_858,
        paper_size_mib: 162.16,
        paper_cr_csx_sym: 64.9,
        paper_cr_max: 66.6,
        problem: "Structural",
        class: StructureClass::BlockStructural {
            node_degree: 72.9,
            band_frac: 1.0 / 10.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA009,
    },
    SuiteSpec {
        name: "nd12k",
        paper_rows: 36_000,
        paper_nnz: 14_220_946,
        paper_size_mib: 162.88,
        paper_cr_csx_sym: 64.9,
        paper_cr_max: 66.6,
        problem: "2D/3D",
        class: StructureClass::DenseBand {
            band_frac: 1.0 / 8.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA00A,
    },
    SuiteSpec {
        name: "inline_1",
        paper_rows: 503_712,
        paper_nnz: 36_816_342,
        paper_size_mib: 423.25,
        paper_cr_csx_sym: 64.7,
        paper_cr_max: 66.4,
        problem: "Structural",
        class: StructureClass::BlockStructural {
            node_degree: 23.4,
            band_frac: 1.0 / 40.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA00B,
    },
    SuiteSpec {
        name: "ldoor",
        paper_rows: 952_203,
        paper_nnz: 46_522_475,
        paper_size_mib: 536.04,
        paper_cr_csx_sym: 64.5,
        paper_cr_max: 66.2,
        problem: "Structural",
        class: StructureClass::BlockStructural {
            node_degree: 15.3,
            band_frac: 1.0 / 40.0,
        },
        kind: SymmetryKind::Symmetric,
        seed: 0xA00C,
    },
];

/// Kind-extension entries: synthetic analogs of the matrix classes the
/// generalized symmetry engine opens up (not part of Table I). The skew
/// entry models the PARS3 convection experiments; the structural entry
/// models the circuit / unsymmetric-FEM class of Batista et al. The
/// `paper_*` columns carry the *generator targets* (there is no Table I
/// row to mirror).
pub const KIND_SUITE: [SuiteSpec; 2] = [
    SuiteSpec {
        name: "convection_skew",
        paper_rows: 400_000,
        paper_nnz: 3_200_000,
        paper_size_mib: 38.1,
        paper_cr_csx_sym: 0.0,
        paper_cr_max: 0.0,
        problem: "Convection (ext.)",
        class: StructureClass::SkewConvection {
            band_frac: 1.0 / 64.0,
        },
        kind: SymmetryKind::Skew,
        seed: 0xB001,
    },
    SuiteSpec {
        name: "circuit_structural",
        paper_rows: 600_000,
        paper_nnz: 4_800_000,
        paper_size_mib: 57.2,
        paper_cr_csx_sym: 0.0,
        paper_cr_max: 0.0,
        problem: "Circuit (ext.)",
        class: StructureClass::StructuralCircuit {
            local_frac: 0.85,
            band_frac: 1.0 / 48.0,
        },
        kind: SymmetryKind::Structural,
        seed: 0xB002,
    },
];

/// A generated suite matrix together with its paper spec.
#[derive(Debug, Clone)]
pub struct SuiteMatrix {
    /// The Table I description this matrix stands in for.
    pub spec: SuiteSpec,
    /// The generated symmetric SPD matrix.
    pub coo: CooMatrix,
}

/// Generates the analog of one suite entry at the given scale.
///
/// `scale` multiplies the original dimension; the non-zeros-per-row ratio is
/// preserved (capped so tiny scaled matrices stay sparse). The minimum
/// dimension is 1024 rows.
pub fn generate(spec: &SuiteSpec, scale: f64) -> SuiteMatrix {
    assert!(scale > 0.0, "scale must be positive");
    let n_target = ((spec.paper_rows as f64 * scale) as u64).max(1024) as Idx;
    let nnz_per_row = spec.paper_nnz_per_row().min(n_target as f64 / 4.0);

    let coo = match spec.class {
        StructureClass::BlockStructural {
            node_degree,
            band_frac,
        } => {
            let block = 3;
            let nodes = (n_target.div_ceil(block)).max(8);
            let node_band = (((nodes as f64) * band_frac) as Idx).max(4);
            let a = gen::block_structural(nodes, block, node_degree, node_band, spec.seed);
            // Real FEM numbering is mesh-generator order: locally shuffled,
            // globally coherent — the state RCM recovers from (§V-D).
            let window = (nodes / 8).max(8);
            gen::scramble_nodes_windowed(&a, block, window, spec.seed ^ 0x3A3A)
        }
        StructureClass::MixedBandwidth {
            local_frac,
            band_frac,
        } => {
            let hbw = (((n_target as f64) * band_frac) as Idx).max(2);
            let local = gen::mixed_bandwidth(n_target, nnz_per_row, local_frac, hbw, spec.seed);
            gen::scramble(&local, spec.seed ^ 0x5C5C)
        }
        StructureClass::PowerLaw { hub_frac } => {
            let band = (n_target / 128).max(2);
            let local = gen::power_law(n_target, nnz_per_row, hub_frac, band, spec.seed);
            gen::scramble(&local, spec.seed ^ 0x5C5C)
        }
        StructureClass::DenseBand { band_frac } => {
            let hbw = (((n_target as f64) * band_frac) as Idx).max(4);
            gen::banded_random(n_target, hbw, nnz_per_row, spec.seed)
        }
        StructureClass::SkewConvection { band_frac } => {
            let hbw = (((n_target as f64) * band_frac) as Idx).max(2);
            let local = gen::skew_convection(n_target, hbw, nnz_per_row, spec.seed);
            gen::scramble(&local, spec.seed ^ 0x5C5C)
        }
        StructureClass::StructuralCircuit {
            local_frac,
            band_frac,
        } => {
            let hbw = (((n_target as f64) * band_frac) as Idx).max(2);
            let local = gen::structural_random(n_target, nnz_per_row, local_frac, hbw, spec.seed);
            gen::scramble(&local, spec.seed ^ 0x5C5C)
        }
    };
    SuiteMatrix { spec: *spec, coo }
}

/// Generates the Table I suite at the given scale, in paper order (the
/// twelve symmetric matrices; see [`generate_full_suite`] for the
/// kind-extension entries).
pub fn generate_suite(scale: f64) -> Vec<SuiteMatrix> {
    SUITE.iter().map(|s| generate(s, scale)).collect()
}

/// Generates the Table I suite plus the [`KIND_SUITE`] extension entries
/// (skew and structural analogs), in declaration order.
pub fn generate_full_suite(scale: f64) -> Vec<SuiteMatrix> {
    SUITE
        .iter()
        .chain(KIND_SUITE.iter())
        .map(|s| generate(s, scale))
        .collect()
}

/// Looks up a suite spec by name (case-sensitive, as in Table I),
/// including the kind-extension entries.
pub fn spec_by_name(name: &str) -> Option<&'static SuiteSpec> {
    SUITE
        .iter()
        .chain(KIND_SUITE.iter())
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::matrix_stats;

    #[test]
    fn suite_has_twelve_entries_in_paper_order() {
        assert_eq!(SUITE.len(), 12);
        assert_eq!(SUITE[0].name, "parabolic_fem");
        assert_eq!(SUITE[11].name, "ldoor");
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_by_name("hood").is_some());
        assert!(spec_by_name("not_a_matrix").is_none());
        // Kind-extension entries resolve too.
        assert_eq!(
            spec_by_name("convection_skew").map(|s| s.kind),
            Some(SymmetryKind::Skew)
        );
        assert_eq!(
            spec_by_name("circuit_structural").map(|s| s.kind),
            Some(SymmetryKind::Structural)
        );
    }

    #[test]
    fn kind_suite_entries_generate_their_kind() {
        let skew = generate(spec_by_name("convection_skew").unwrap(), 0.004);
        assert!(skew.coo.is_skew_symmetric(0.0), "convection_skew not skew");
        assert!(skew.coo.nrows() >= 1024);

        let st = generate(spec_by_name("circuit_structural").unwrap(), 0.003);
        assert!(
            st.coo.is_structurally_symmetric(),
            "circuit_structural pattern not symmetric"
        );
        assert!(!st.coo.is_symmetric(0.0), "values must be unsymmetric");
        assert!(st.coo.nrows() >= 1024);

        // The full suite is the twelve plus the two, in order.
        let full = generate_full_suite(0.002);
        assert_eq!(full.len(), SUITE.len() + KIND_SUITE.len());
        assert_eq!(full[12].spec.name, "convection_skew");
        assert_eq!(full[13].spec.name, "circuit_structural");
    }

    #[test]
    fn generated_matrices_are_symmetric_and_sized() {
        for spec in &SUITE {
            let m = generate(spec, 0.004);
            assert!(m.coo.is_symmetric(0.0), "{} asymmetric", spec.name);
            assert!(m.coo.nrows() >= 1024, "{} too small", spec.name);
        }
    }

    #[test]
    fn nnz_per_row_tracks_paper() {
        // Structure match: realized nnz/row within a factor ~2 of the paper
        // target for a representative of each class.
        for name in ["bmw7st_1", "offshore", "G3_circuit", "nd12k"] {
            let spec = spec_by_name(name).unwrap();
            let m = generate(spec, 0.01);
            let s = matrix_stats(&m.coo);
            let target = spec.paper_nnz_per_row().min(m.coo.nrows() as f64 / 4.0);
            assert!(
                s.avg_row_nnz > target * 0.4 && s.avg_row_nnz < target * 2.5,
                "{name}: got {} expected ~{target}",
                s.avg_row_nnz
            );
        }
    }

    #[test]
    fn determinism() {
        let a = generate(&SUITE[1], 0.004);
        let b = generate(&SUITE[1], 0.004);
        assert_eq!(a.coo, b.coo);
    }

    #[test]
    fn high_bandwidth_classes_have_larger_spread() {
        // The corner cases (mixed/power-law) must have a larger average
        // entry distance relative to N than the structural ones — that is
        // the property §V-B/§V-C hinges on.
        let structural = generate(spec_by_name("bmw7st_1").unwrap(), 0.01);
        let scattered = generate(spec_by_name("G3_circuit").unwrap(), 0.001);
        let s1 = matrix_stats(&structural.coo);
        let s2 = matrix_stats(&scattered.coo);
        let rel1 = s1.avg_entry_distance / structural.coo.nrows() as f64;
        let rel2 = s2.avg_entry_distance / scattered.coo.nrows() as f64;
        assert!(rel2 > rel1 * 2.0, "scattered {rel2} vs structural {rel1}");
    }
}
