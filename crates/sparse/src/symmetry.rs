//! Symmetry kinds — the algebraic family the half-storage formats cover.
//!
//! The paper's machinery (half storage, local-vectors multiply, reduction
//! strategies) only needs two facts about a matrix: what the *transposed
//! contribution* of a stored entry `a_ij` is, and how the storage pairs
//! values. Three kinds share the machinery:
//!
//! * **Symmetric** — `a_ji = a_ij`; the transposed contribution reuses the
//!   stored value (the paper's case).
//! * **Skew** — `a_ji = -a_ij` and the diagonal is identically zero; the
//!   transposed contribution is the stored value negated (PARS3,
//!   Yıldırım et al.).
//! * **Structural** — the *pattern* is symmetric but values are not;
//!   `a_ji` is stored explicitly in a paired upper-triangle array
//!   (Batista et al., the effective-ranges baseline).
//!
//! [`SymmetryKind`] is the runtime tag threaded through constructors,
//! certificates and reports; [`SymmetryOps`] is its compile-time mirror,
//! used to monomorphize the kernels so the `Symmetric` hot path compiles
//! to exactly the code it compiled to before kinds existed.

use crate::Val;

/// Which symmetry relation a half-stored matrix satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymmetryKind {
    /// `a_ji = a_ij` — numeric symmetry (the default, the paper's case).
    #[default]
    Symmetric,
    /// `a_ji = -a_ij`, zero diagonal — skew symmetry.
    Skew,
    /// Pattern symmetric, values unrelated: `a_ji` stored explicitly.
    Structural,
}

impl SymmetryKind {
    /// All kinds, in declaration order (the oracle's kind axis).
    pub const ALL: [SymmetryKind; 3] = [
        SymmetryKind::Symmetric,
        SymmetryKind::Skew,
        SymmetryKind::Structural,
    ];

    /// Stable short tag (certificate texts, bench ledger rows, repro lines).
    pub fn tag(self) -> &'static str {
        match self {
            SymmetryKind::Symmetric => "symmetric",
            SymmetryKind::Skew => "skew",
            SymmetryKind::Structural => "structural",
        }
    }

    /// Parses [`SymmetryKind::tag`] output. Returns `None` for unknown tags.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "symmetric" => Some(SymmetryKind::Symmetric),
            "skew" => Some(SymmetryKind::Skew),
            "structural" => Some(SymmetryKind::Structural),
            _ => None,
        }
    }

    /// Whether the kind stores a paired upper-triangle value array.
    pub fn has_upper_values(self) -> bool {
        matches!(self, SymmetryKind::Structural)
    }

    /// Whether the kind forbids structural diagonal entries.
    pub fn requires_zero_diagonal(self) -> bool {
        matches!(self, SymmetryKind::Skew)
    }

    /// The transposed contribution of a stored lower-triangle entry with
    /// value `v` and paired upper value `u` (ignored unless structural).
    /// Runtime mirror of [`SymmetryOps::transposed`], for serial code.
    #[inline]
    pub fn transposed(self, v: Val, u: Val) -> Val {
        match self {
            SymmetryKind::Symmetric => v,
            SymmetryKind::Skew => -v,
            SymmetryKind::Structural => u,
        }
    }
}

/// Compile-time symmetry kind: the kernels are generic over an
/// implementation of this trait, so each kind monomorphizes to its own
/// straight-line code. For [`Sym`] the `u` operand is dead and the
/// symmetric instantiation compiles to exactly the pre-kind kernel.
///
/// Kernels pass the stored lower value as `v` and the *paired* value as
/// `u`; for the non-structural kinds callers pass the lower values slice
/// itself as the pair slice (the duplicate load is eliminated).
pub trait SymmetryOps: Copy + Send + Sync + 'static {
    /// The runtime tag this implementation mirrors.
    const KIND: SymmetryKind;

    /// The transposed contribution of a stored entry (see
    /// [`SymmetryKind::transposed`]).
    fn transposed(v: Val, u: Val) -> Val;
}

/// `a_ji = a_ij`.
#[derive(Debug, Clone, Copy)]
pub struct Sym;

/// `a_ji = -a_ij`.
#[derive(Debug, Clone, Copy)]
pub struct Skew;

/// `a_ji` stored explicitly in the paired upper array.
#[derive(Debug, Clone, Copy)]
pub struct Structural;

impl SymmetryOps for Sym {
    const KIND: SymmetryKind = SymmetryKind::Symmetric;
    #[inline(always)]
    fn transposed(v: Val, _u: Val) -> Val {
        v
    }
}

impl SymmetryOps for Skew {
    const KIND: SymmetryKind = SymmetryKind::Skew;
    #[inline(always)]
    fn transposed(v: Val, _u: Val) -> Val {
        -v
    }
}

impl SymmetryOps for Structural {
    const KIND: SymmetryKind = SymmetryKind::Structural;
    #[inline(always)]
    fn transposed(_v: Val, u: Val) -> Val {
        u
    }
}

/// Dispatches a kind-generic closure-like operation on a runtime kind.
/// Each arm monomorphizes `f` separately — the macro form keeps the
/// dispatch at the *call boundary* so the kernels themselves stay generic.
#[macro_export]
macro_rules! with_symmetry_ops {
    ($kind:expr, $O:ident => $body:expr) => {
        match $kind {
            $crate::symmetry::SymmetryKind::Symmetric => {
                type $O = $crate::symmetry::Sym;
                $body
            }
            $crate::symmetry::SymmetryKind::Skew => {
                type $O = $crate::symmetry::Skew;
                $body
            }
            $crate::symmetry::SymmetryKind::Structural => {
                type $O = $crate::symmetry::Structural;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for k in SymmetryKind::ALL {
            assert_eq!(SymmetryKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(SymmetryKind::from_tag("hermitian"), None);
    }

    #[test]
    fn default_is_symmetric() {
        assert_eq!(SymmetryKind::default(), SymmetryKind::Symmetric);
    }

    #[test]
    fn transposed_algebra() {
        assert_eq!(SymmetryKind::Symmetric.transposed(2.5, 9.0), 2.5);
        assert_eq!(SymmetryKind::Skew.transposed(2.5, 9.0), -2.5);
        assert_eq!(SymmetryKind::Structural.transposed(2.5, 9.0), 9.0);
        assert_eq!(Sym::transposed(2.5, 9.0), 2.5);
        assert_eq!(Skew::transposed(2.5, 9.0), -2.5);
        assert_eq!(Structural::transposed(2.5, 9.0), 9.0);
    }

    #[test]
    fn compile_time_mirrors_runtime() {
        fn check<O: SymmetryOps>(kind: SymmetryKind) {
            assert_eq!(O::KIND, kind);
            for (v, u) in [(1.0, 2.0), (-3.5, 0.0), (0.25, -8.0)] {
                assert_eq!(
                    O::transposed(v, u).to_bits(),
                    kind.transposed(v, u).to_bits()
                );
            }
        }
        for kind in SymmetryKind::ALL {
            with_symmetry_ops!(kind, O => check::<O>(kind));
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(!SymmetryKind::Symmetric.has_upper_values());
        assert!(SymmetryKind::Structural.has_upper_values());
        assert!(SymmetryKind::Skew.requires_zero_diagonal());
        assert!(!SymmetryKind::Structural.requires_zero_diagonal());
    }
}
