#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Sparse-matrix substrate for the `symspmv` workspace.
//!
//! This crate provides everything the paper's evaluation rests on *below*
//! the optimized kernels themselves:
//!
//! * the classic storage formats — [`coo::CooMatrix`], [`csr::CsrMatrix`]
//!   (Eq. 1 of the paper), the Symmetric Sparse Skyline format
//!   [`sss::SssMatrix`] (Eq. 2) and register-blocked [`bcsr::BcsrMatrix`]
//!   (related work), each with a serial SpMV reference kernel;
//! * MatrixMarket I/O ([`mm`]) so the real University-of-Florida matrices can
//!   be dropped in when available;
//! * deterministic synthetic generators ([`gen`]) and the 12-matrix
//!   paper-suite analogs ([`suite`]) used as the substitution for the UF
//!   collection (DESIGN.md, substitution S1);
//! * structural statistics ([`stats`]) — bandwidth, densities, row profiles —
//!   feeding Figures 4 and 5;
//! * permutations ([`perm`]) used by the RCM reordering experiments
//!   (Table III, Fig. 13).
//!
//! Index type is `u32` and values are `f64`, matching the paper's four-byte
//! indices and eight-byte floating-point values.

pub mod bcsr;
pub mod block;
pub mod cache;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod gen;
pub mod mm;
pub mod perm;
pub mod rng;
pub mod sss;
pub mod stats;
pub mod suite;
pub mod symmetry;
pub mod validate;

pub use bcsr::BcsrMatrix;
pub use block::VectorBlock;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use perm::Permutation;
pub use sss::SssMatrix;
pub use symmetry::{SymmetryKind, SymmetryOps};

/// Index type used across all formats (paper: four-byte indices).
pub type Idx = u32;

/// Non-zero value type (paper: double-precision floating point).
pub type Val = f64;
