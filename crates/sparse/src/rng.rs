//! A small deterministic PRNG for matrix generators.
//!
//! The generator suite only needs reproducible streams keyed by a `u64`
//! seed — every determinism test compares same-seed outputs, never a
//! specific sequence — so a dependency-free SplitMix64 (Steele et al.,
//! "Fast splittable pseudorandom number generators", OOPSLA'14) is
//! sufficient and keeps the workspace free of external crates. The API
//! mirrors the subset of `rand` the generators use: `seed_from_u64`,
//! `random::<f64>()` and `random_range` over integer and float ranges.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Samples a value of type `T` from its canonical distribution
    /// (`f64`: uniform in `[0, 1)`).
    pub fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from a range. Panics on an empty range.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift, without
    /// the modulo bias of a plain remainder.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types with a canonical random distribution.
pub trait Random {
    /// Samples one value.
    fn random(rng: &mut StdRng) -> Self;
}

impl Random for f64 {
    fn random(rng: &mut StdRng) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

/// Ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<u32> for Range<u32> {
    fn sample(self, rng: &mut StdRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as u32
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded_u64((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
        }
        // Crude uniformity check: roughly half below the median.
        assert!((350..=650).contains(&lo_half), "{lo_half}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = rng.random_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(2usize..=4);
            assert!((2..=4).contains(&w));
            seen_lo |= w == 2;
            seen_hi |= w == 4;
            let f = rng.random_range(0.1..1.0);
            assert!((0.1..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(5usize..=5), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(4u32..4);
    }
}
