//! Multi-vector blocks for batched SpMM (`Y = A·X` with `k` right-hand
//! sides).
//!
//! Symmetric SpMV is memory-bound: the matrix is streamed once per
//! multiply and dwarfs the vector traffic. A [`VectorBlock`] packs `k`
//! vectors *lane-interleaved* — element `(row i, lane j)` lives at
//! `data[i·k + j]` — so one pass over the matrix updates all `k` lanes of
//! a row from one contiguous cache-resident group, amortizing the matrix
//! traffic over `k` results. Viewed as a dense matrix the block is the
//! `n × k` right-hand-side matrix in row-major order (equivalently the
//! `k × n` lane matrix in column-major order); "stride" below always means
//! the lane count `k`.
//!
//! Lane counts are restricted to [`SUPPORTED_LANES`] (powers of two up to
//! [`MAX_LANES`]) so kernels can keep per-row accumulators in a fixed
//! `[f64; MAX_LANES]` stack array and the per-thread local blocks leased
//! from the runtime arena stay aligned multiples of the scalar layout.

use crate::Val;

/// Maximum number of simultaneous right-hand sides a block may carry.
pub const MAX_LANES: usize = 16;

/// The lane counts the batched kernels accept.
pub const SUPPORTED_LANES: [usize; 5] = [1, 2, 4, 8, 16];

/// A block of `k` dense vectors of length `n`, lane-interleaved:
/// element `(row i, lane j)` is `data[i·k + j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorBlock {
    n: usize,
    lanes: usize,
    data: Vec<Val>,
}

impl VectorBlock {
    /// A zeroed `n × lanes` block.
    ///
    /// # Panics
    /// If `lanes` is not one of [`SUPPORTED_LANES`].
    pub fn zeros(n: usize, lanes: usize) -> Self {
        assert!(
            SUPPORTED_LANES.contains(&lanes),
            "unsupported lane count {lanes} (supported: {SUPPORTED_LANES:?})"
        );
        VectorBlock {
            n,
            lanes,
            data: vec![0.0; n * lanes],
        }
    }

    /// A block whose lane `j` is the seeded vector for `seed + j` — the
    /// deterministic multi-RHS analogue of
    /// [`seeded_vector`](crate::dense::seeded_vector).
    pub fn seeded(n: usize, lanes: usize, seed: u64) -> Self {
        let mut b = VectorBlock::zeros(n, lanes);
        for j in 0..lanes {
            let lane = crate::dense::seeded_vector(n, seed.wrapping_add(j as u64));
            b.copy_lane_from(j, &lane);
        }
        b
    }

    /// Builds a block from `lanes.len()` equal-length column vectors.
    ///
    /// # Panics
    /// If the lane count is unsupported or the columns disagree in length.
    pub fn from_lanes(columns: &[&[Val]]) -> Self {
        let lanes = columns.len();
        let n = columns.first().map_or(0, |c| c.len());
        let mut b = VectorBlock::zeros(n, lanes);
        for (j, col) in columns.iter().enumerate() {
            b.copy_lane_from(j, col);
        }
        b
    }

    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of lanes (right-hand sides) `k`.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The raw lane-interleaved storage, length `n·lanes`.
    pub fn as_slice(&self) -> &[Val] {
        &self.data
    }

    /// Mutable raw lane-interleaved storage.
    pub fn as_mut_slice(&mut self) -> &mut [Val] {
        &mut self.data
    }

    /// The `lanes`-wide group of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Val] {
        &self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Mutable `lanes`-wide group of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Val] {
        let k = self.lanes;
        &mut self.data[i * k..(i + 1) * k]
    }

    /// Element `(row i, lane j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Val {
        self.data[i * self.lanes + j]
    }

    /// Sets element `(row i, lane j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Val) {
        self.data[i * self.lanes + j] = v;
    }

    /// Overwrites every element with `v`.
    pub fn fill(&mut self, v: Val) {
        self.data.fill(v);
    }

    /// Copies contiguous vector `src` into lane `j`.
    ///
    /// # Panics
    /// If `src.len() != n` or `j >= lanes`.
    pub fn copy_lane_from(&mut self, j: usize, src: &[Val]) {
        assert_eq!(src.len(), self.n, "lane length mismatch");
        assert!(j < self.lanes, "lane {j} out of {}", self.lanes);
        for (i, &v) in src.iter().enumerate() {
            self.data[i * self.lanes + j] = v;
        }
    }

    /// Extracts lane `j` into a contiguous vector.
    pub fn lane(&self, j: usize) -> Vec<Val> {
        assert!(j < self.lanes, "lane {j} out of {}", self.lanes);
        (0..self.n).map(|i| self.data[i * self.lanes + j]).collect()
    }

    /// Copies lane `j` into contiguous `dst`.
    pub fn copy_lane_into(&self, j: usize, dst: &mut [Val]) {
        assert_eq!(dst.len(), self.n, "lane length mismatch");
        assert!(j < self.lanes, "lane {j} out of {}", self.lanes);
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.data[i * self.lanes + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_lane_interleaved() {
        let mut b = VectorBlock::zeros(3, 2);
        b.set(0, 0, 1.0);
        b.set(0, 1, 2.0);
        b.set(2, 1, 5.0);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 0.0, 0.0, 0.0, 5.0]);
        assert_eq!(b.row(0), &[1.0, 2.0]);
        assert_eq!(b.get(2, 1), 5.0);
    }

    #[test]
    fn lanes_round_trip() {
        let c0 = [1.0, 2.0, 3.0];
        let c1 = [4.0, 5.0, 6.0];
        let b = VectorBlock::from_lanes(&[&c0, &c1]);
        assert_eq!(b.lane(0), c0);
        assert_eq!(b.lane(1), c1);
        let mut out = [0.0; 3];
        b.copy_lane_into(1, &mut out);
        assert_eq!(out, c1);
    }

    #[test]
    fn seeded_lanes_match_seeded_vectors() {
        let b = VectorBlock::seeded(17, 4, 7);
        for j in 0..4 {
            assert_eq!(b.lane(j), crate::dense::seeded_vector(17, 7 + j as u64));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported lane count")]
    fn rejects_unsupported_lane_count() {
        let _ = VectorBlock::zeros(4, 3);
    }
}
