//! Row/column permutations and symmetric reordering `P·A·Pᵀ`.
//!
//! The reordering experiments (§V-D, Table III, Fig. 13) permute the matrix
//! symmetrically with the RCM ordering computed in `symspmv-reorder`.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::Idx;

/// A permutation of `0..n`, stored as `new = perm[old]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<Idx>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: Idx) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// Builds a permutation from a `new = perm[old]` map, validating that it
    /// is a bijection on `0..n`.
    pub fn from_map(perm: Vec<Idx>) -> Result<Self, SparseError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if (p as usize) >= n {
                return Err(SparseError::InvalidPermutation {
                    msg: format!("target {p} out of range for n = {n}"),
                });
            }
            if seen[p as usize] {
                return Err(SparseError::InvalidPermutation {
                    msg: format!("target {p} appears twice"),
                });
            }
            seen[p as usize] = true;
        }
        Ok(Permutation { perm })
    }

    /// Builds a permutation from an *ordering* — `order[k]` is the old index
    /// placed at new position `k` (the natural output of RCM).
    pub fn from_order(order: &[Idx]) -> Result<Self, SparseError> {
        let n = order.len();
        let mut perm = vec![Idx::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            if (old as usize) >= n {
                return Err(SparseError::InvalidPermutation {
                    msg: format!("ordering entry {old} out of range for n = {n}"),
                });
            }
            if perm[old as usize] != Idx::MAX {
                return Err(SparseError::InvalidPermutation {
                    msg: format!("old index {old} appears twice in ordering"),
                });
            }
            perm[old as usize] = new as Idx;
        }
        Ok(Permutation { perm })
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the permutation on the empty domain.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// New index of `old`.
    #[inline]
    pub fn apply(&self, old: Idx) -> Idx {
        self.perm[old as usize]
    }

    /// The underlying `new = perm[old]` map.
    pub fn as_map(&self) -> &[Idx] {
        &self.perm
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Idx; self.perm.len()];
        for (old, &new) in self.perm.iter().enumerate() {
            inv[new as usize] = old as Idx;
        }
        Permutation { perm: inv }
    }

    /// Composition `other ∘ self` (apply `self` first).
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        Permutation {
            perm: self.perm.iter().map(|&m| other.apply(m)).collect(),
        }
    }

    /// Symmetric reordering of a square matrix: entry `(r, c)` moves to
    /// `(perm[r], perm[c])` — i.e. `P·A·Pᵀ` with `P` the permutation matrix
    /// that sends old row `i` to new row `perm[i]`.
    pub fn apply_symmetric(&self, coo: &CooMatrix) -> Result<CooMatrix, SparseError> {
        if coo.nrows() != coo.ncols() {
            return Err(SparseError::NotSquare {
                nrows: coo.nrows(),
                ncols: coo.ncols(),
            });
        }
        assert_eq!(
            coo.nrows() as usize,
            self.len(),
            "permutation size mismatch"
        );
        let mut out = CooMatrix::with_capacity(coo.nrows(), coo.ncols(), coo.nnz());
        for (r, c, v) in coo.iter() {
            out.push(self.apply(r), self.apply(c), v);
        }
        out.canonicalize();
        Ok(out)
    }

    /// Permutes a dense vector: `out[perm[i]] = x[i]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![0.0; x.len()];
        for (old, &v) in x.iter().enumerate() {
            out[self.perm[old] as usize] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let p = Permutation::identity(5);
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_map_validates() {
        assert!(Permutation::from_map(vec![1, 0, 2]).is_ok());
        assert!(Permutation::from_map(vec![1, 1, 2]).is_err());
        assert!(Permutation::from_map(vec![1, 3, 2]).is_err());
    }

    #[test]
    fn order_and_map_agree() {
        // Ordering [2,0,1]: old 2 goes to new 0, old 0 to new 1, old 1 to new 2.
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.as_map(), &[1, 2, 0]);
        assert_eq!(p.apply(2), 0);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_map(vec![3, 1, 0, 2]).unwrap();
        let id = p.then(&p.inverse());
        assert_eq!(id, Permutation::identity(4));
    }

    #[test]
    fn symmetric_reorder_preserves_spectrum_sample() {
        // Reordering preserves symmetry and the multiset of values.
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 1.0),
            (1, 1, 2.0),
            (2, 2, 3.0),
            (0, 2, 5.0),
            (2, 0, 5.0),
        ] {
            coo.push(r, c, v);
        }
        coo.canonicalize();
        let p = Permutation::from_map(vec![2, 0, 1]).unwrap();
        let b = p.apply_symmetric(&coo).unwrap();
        assert!(b.is_symmetric(0.0));
        assert_eq!(b.find(2, 2), Some(1.0)); // old (0,0)
        assert_eq!(b.find(2, 1), Some(5.0)); // old (0,2)
        let mut vals: Vec<f64> = b.iter().map(|(_, _, v)| v).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 5.0, 5.0]);
    }

    #[test]
    fn reorder_commutes_with_spmv() {
        // (P A Pᵀ)(P x) = P (A x).
        let mut coo = CooMatrix::new(4, 4);
        for (r, c, v) in [
            (0, 0, 2.0),
            (1, 1, 3.0),
            (2, 2, 4.0),
            (3, 3, 5.0),
            (0, 3, 1.0),
            (3, 0, 1.0),
        ] {
            coo.push(r, c, v);
        }
        coo.canonicalize();
        let p = Permutation::from_map(vec![1, 3, 0, 2]).unwrap();
        let pa = p.apply_symmetric(&coo).unwrap();

        let x = vec![1.0, -1.0, 2.0, 0.5];
        let px = p.apply_vec(&x);
        let mut ax = vec![0.0; 4];
        coo.spmv_reference(&x, &mut ax);
        let pax = p.apply_vec(&ax);
        let mut papx = vec![0.0; 4];
        pa.spmv_reference(&px, &mut papx);
        assert_eq!(pax, papx);
    }

    #[test]
    fn apply_vec_places_elements() {
        let p = Permutation::from_map(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply_vec(&[10.0, 20.0, 30.0]), vec![20.0, 30.0, 10.0]);
    }
}
