//! Deterministic synthetic matrix generators.
//!
//! The paper evaluates on 12 matrices from the University of Florida
//! collection (Table I). Those files are not redistributable here, so the
//! workspace substitutes structure-matched generators (DESIGN.md,
//! substitution S1): SpMV behaviour is governed by the dimension, the
//! non-zeros per row, the bandwidth profile and the block structure, and
//! each generator controls exactly those knobs. All generators are seeded
//! and fully deterministic.
//!
//! Every generator returns a canonical, symmetric, positive-definite
//! [`CooMatrix`] (SPD is enforced by diagonal dominance so the CG
//! experiments of §V-F converge).

use crate::coo::CooMatrix;
use crate::rng::StdRng;
use crate::{Idx, Val};

/// Mirrors a strict-lower-triangle COO and adds a dominant diagonal,
/// producing a symmetric positive-definite matrix.
///
/// The diagonal entry of row `i` is set to `sum_j |a_ij| + shift` over the
/// full row, which makes the matrix strictly diagonally dominant with
/// positive diagonal, hence SPD.
pub fn spd_from_lower(lower: &CooMatrix, shift: Val) -> CooMatrix {
    assert!(
        shift > 0.0,
        "shift must be positive for positive definiteness"
    );
    let n = lower.nrows();
    let mut lower = lower.clone();
    lower.canonicalize();
    let mut rowsum = vec![0.0; n as usize];
    for (r, c, v) in lower.iter() {
        debug_assert!(c < r, "spd_from_lower expects a strict lower triangle");
        rowsum[r as usize] += v.abs();
        rowsum[c as usize] += v.abs();
    }
    let mut full = CooMatrix::with_capacity(n, n, lower.nnz() * 2 + n as usize);
    for (r, c, v) in lower.iter() {
        full.push(r, c, v);
        full.push(c, r, v);
    }
    for i in 0..n {
        full.push(i, i, rowsum[i as usize] + shift);
    }
    full.canonicalize();
    full
}

/// 5-point finite-difference Laplacian on an `nx × ny` grid
/// (a classic low-bandwidth SPD model problem).
pub fn laplacian_2d(nx: Idx, ny: Idx) -> CooMatrix {
    let n = nx * ny;
    let idx = |i: Idx, j: Idx| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n as usize);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            coo.push(me, me, 4.0);
            if i > 0 {
                coo.push(me, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(me, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(me, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push(me, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.canonicalize();
    coo
}

/// 7-point finite-difference Laplacian on an `nx × ny × nz` grid.
pub fn laplacian_3d(nx: Idx, ny: Idx, nz: Idx) -> CooMatrix {
    let n = nx * ny * nz;
    let idx = |i: Idx, j: Idx, k: Idx| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n as usize);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let me = idx(i, j, k);
                coo.push(me, me, 6.0);
                if i > 0 {
                    coo.push(me, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.push(me, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    coo.push(me, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.canonicalize();
    coo
}

/// Random symmetric SPD matrix with entries confined to a band.
///
/// `nnz_per_row` counts full-matrix off-diagonal targets per row (the
/// realized count can be slightly lower after duplicate removal).
pub fn banded_random(n: Idx, half_bandwidth: Idx, nnz_per_row: f64, seed: u64) -> CooMatrix {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row_lower = (nnz_per_row / 2.0).max(0.5);
    let mut lower = CooMatrix::with_capacity(n, n, (n as f64 * per_row_lower) as usize + 16);
    for r in 1..n {
        let lo = r.saturating_sub(half_bandwidth);
        // Expected number of lower-triangle entries this row.
        let mut want = per_row_lower.floor() as usize;
        if rng.random::<f64>() < per_row_lower.fract() {
            want += 1;
        }
        let span = r - lo;
        let want = want.min(span as usize);
        for _ in 0..want {
            let c = rng.random_range(lo..r);
            lower.push(r, c, -rng.random_range(0.1..1.0));
        }
    }
    spd_from_lower(&lower, 1.0)
}

/// Structural-FEM analog: a banded node graph expanded with dense
/// `block × block` blocks (models the `bmw*`, `hood`, `crankseg_2`,
/// `inline_1`, `ldoor` structural matrices, which have ~3 dof per node).
///
/// * `nodes` — number of FEM nodes; the matrix dimension is `nodes·block`.
/// * `node_degree` — average neighbors per node (each contributing a block).
/// * `node_band` — neighbors are drawn within this node-index distance.
pub fn block_structural(
    nodes: Idx,
    block: Idx,
    node_degree: f64,
    node_band: Idx,
    seed: u64,
) -> CooMatrix {
    assert!(nodes >= 2 && block >= 1);
    let n = nodes * block;
    let mut rng = StdRng::seed_from_u64(seed);
    let per_node_lower = (node_degree / 2.0).max(0.5);
    let est = (nodes as f64 * per_node_lower) as usize * (block * block) as usize;
    let mut lower = CooMatrix::with_capacity(n, n, est + n as usize);

    // Dense sub-diagonal coupling inside each node's own block.
    for node in 0..nodes {
        let base = node * block;
        for i in 0..block {
            for j in 0..i {
                lower.push(base + i, base + j, -rng.random_range(0.1..1.0));
            }
        }
    }
    // Neighbor blocks.
    for node in 1..nodes {
        let lo = node.saturating_sub(node_band);
        let mut want = per_node_lower.floor() as usize;
        if rng.random::<f64>() < per_node_lower.fract() {
            want += 1;
        }
        let span = node - lo;
        let want = want.min(span as usize);
        for _ in 0..want {
            let nbr = rng.random_range(lo..node);
            let (rb, cb) = (node * block, nbr * block);
            for i in 0..block {
                for j in 0..block {
                    lower.push(rb + i, cb + j, -rng.random_range(0.1..1.0));
                }
            }
        }
    }
    spd_from_lower(&lower, 1.0)
}

/// Random symmetric matrix whose off-diagonals mix a *local* band with
/// globally *scattered* entries.
///
/// `local_frac` of each row's entries stay within `half_bandwidth` of the
/// diagonal; the rest are drawn uniformly from the whole row, producing the
/// high-bandwidth behaviour of the paper's corner cases (`parabolic_fem`,
/// `offshore`, `G3_circuit`, `thermal2`).
pub fn mixed_bandwidth(
    n: Idx,
    nnz_per_row: f64,
    local_frac: f64,
    half_bandwidth: Idx,
    seed: u64,
) -> CooMatrix {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&local_frac));
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row_lower = (nnz_per_row / 2.0).max(0.5);
    let mut lower = CooMatrix::with_capacity(n, n, (n as f64 * per_row_lower) as usize + 16);
    for r in 1..n {
        let mut want = per_row_lower.floor() as usize;
        if rng.random::<f64>() < per_row_lower.fract() {
            want += 1;
        }
        let want = want.min(r as usize);
        for _ in 0..want {
            let c = if rng.random::<f64>() < local_frac {
                let lo = r.saturating_sub(half_bandwidth);
                rng.random_range(lo..r)
            } else {
                rng.random_range(0..r)
            };
            lower.push(r, c, -rng.random_range(0.1..1.0));
        }
    }
    spd_from_lower(&lower, 1.0)
}

/// Circuit-analog generator: a mostly-local sparse graph with a few hub
/// rows accumulating many connections (models `G3_circuit` — a power-grid
/// mesh with supply rails).
///
/// Non-hub edges stay within `local_band` of the diagonal; hub edges are
/// global. The result is usually combined with [`scramble`] so the latent
/// locality is hidden behind a bad numbering, which RCM can then recover
/// (§V-D).
pub fn power_law(n: Idx, nnz_per_row: f64, hub_frac: f64, local_band: Idx, seed: u64) -> CooMatrix {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs = ((n as f64 * hub_frac).ceil() as Idx).max(1);
    let per_row_lower = (nnz_per_row / 2.0).max(0.5);
    let mut lower = CooMatrix::with_capacity(n, n, (n as f64 * per_row_lower) as usize + 16);
    for r in 1..n {
        let mut want = per_row_lower.floor() as usize;
        if rng.random::<f64>() < per_row_lower.fract() {
            want += 1;
        }
        let want = want.min(r as usize);
        for _ in 0..want {
            // ~15% of endpoints attach to a hub; the rest stay local.
            let c = if rng.random::<f64>() < 0.15 {
                rng.random_range(0..hubs.min(r))
            } else {
                let lo = r.saturating_sub(local_band.max(1));
                rng.random_range(lo..r)
            };
            lower.push(r, c, -rng.random_range(0.1..1.0));
        }
    }
    spd_from_lower(&lower, 1.0)
}

/// Convection-style skew-symmetric generator (`a_ji = -a_ij`, zero
/// diagonal): the discrete first-derivative (transport) operator of a
/// convection–diffusion problem under central differences, whose
/// off-diagonal couplings are banded and antisymmetric.
///
/// Entries are confined to `half_bandwidth` of the diagonal, with
/// `nnz_per_row` full-matrix off-diagonal targets per row — the PARS3
/// skew + RCM experiments pair this with [`scramble`] to hide the band.
pub fn skew_convection(n: Idx, half_bandwidth: Idx, nnz_per_row: f64, seed: u64) -> CooMatrix {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row_lower = (nnz_per_row / 2.0).max(0.5);
    let mut coo = CooMatrix::with_capacity(n, n, 2 * (n as f64 * per_row_lower) as usize + 16);
    for r in 1..n {
        let lo = r.saturating_sub(half_bandwidth);
        let mut want = per_row_lower.floor() as usize;
        if rng.random::<f64>() < per_row_lower.fract() {
            want += 1;
        }
        let span = r - lo;
        let want = want.min(span as usize);
        for _ in 0..want {
            let c = rng.random_range(lo..r);
            // Transport coefficient: positive below the diagonal, negated
            // mirror above — duplicates sum pairwise, preserving skewness.
            let v = rng.random_range(0.1..1.0);
            coo.push(r, c, v);
            coo.push(c, r, -v);
        }
    }
    coo.canonicalize();
    coo
}

/// Structurally-symmetric generator: the sparsity pattern is symmetric but
/// the paired values `(a_ij, a_ji)` are drawn independently — the circuit
/// / unsymmetric-FEM class Batista et al. target. The diagonal is made
/// dominant over both triangles so the matrix stays well-conditioned for
/// the oracle's tolerance checks.
///
/// Off-diagonal placement follows [`mixed_bandwidth`]: `local_frac` of the
/// pairs stay within `half_bandwidth` of the diagonal, the rest scatter.
pub fn structural_random(
    n: Idx,
    nnz_per_row: f64,
    local_frac: f64,
    half_bandwidth: Idx,
    seed: u64,
) -> CooMatrix {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&local_frac));
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row_lower = (nnz_per_row / 2.0).max(0.5);
    let mut coo = CooMatrix::with_capacity(n, n, 2 * (n as f64 * per_row_lower) as usize + 16);
    let mut rowsum = vec![0.0; n as usize];
    for r in 1..n {
        let mut want = per_row_lower.floor() as usize;
        if rng.random::<f64>() < per_row_lower.fract() {
            want += 1;
        }
        let want = want.min(r as usize);
        for _ in 0..want {
            let c = if rng.random::<f64>() < local_frac {
                let lo = r.saturating_sub(half_bandwidth);
                rng.random_range(lo..r)
            } else {
                rng.random_range(0..r)
            };
            // Independent pair values: the pattern is mirrored, the
            // numbers are not.
            let v_lower = -rng.random_range(0.1..1.0);
            let v_upper = -rng.random_range(0.1..1.0);
            coo.push(r, c, v_lower);
            coo.push(c, r, v_upper);
            rowsum[r as usize] += v_lower.abs();
            rowsum[c as usize] += v_upper.abs();
        }
    }
    for i in 0..n {
        coo.push(i, i, rowsum[i as usize] + 1.0);
    }
    coo.canonicalize();
    coo
}

/// Locally scrambles a block-structured matrix's *node* numbering: node
/// labels are shuffled within windows of `window_nodes`, while each node's
/// `block` consecutive rows (its degrees of freedom) move together.
///
/// Real FEM matrices are numbered in mesh-generator order — locally messy,
/// globally coherent — which is exactly what gives RCM its §V-D gains on
/// the structural matrices without destroying their dense dof-blocks.
pub fn scramble_nodes_windowed(
    coo: &CooMatrix,
    block: Idx,
    window_nodes: Idx,
    seed: u64,
) -> CooMatrix {
    use crate::perm::Permutation;
    let n = coo.nrows();
    assert_eq!(
        n % block,
        0,
        "dimension must be a whole number of node blocks"
    );
    let nodes = n / block;
    let window = window_nodes.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut node_map: Vec<Idx> = (0..nodes).collect();
    let mut w0 = 0;
    while w0 < nodes {
        let w1 = (w0 + window).min(nodes);
        for i in ((w0 as usize + 1)..w1 as usize).rev() {
            let j = rng.random_range(w0 as usize..=i);
            node_map.swap(i, j);
        }
        w0 = w1;
    }
    let mut map = vec![0 as Idx; n as usize];
    for (old_node, &new_node) in node_map.iter().enumerate() {
        for d in 0..block {
            map[old_node * block as usize + d as usize] = new_node * block + d;
        }
    }
    let p = Permutation::from_map(map)
        .unwrap_or_else(|_| unreachable!("windowed shuffle is a bijection"));
    p.apply_symmetric(coo)
        .unwrap_or_else(|_| unreachable!("generator matrices are square"))
}

/// Symmetrically permutes a matrix with a random (seeded) permutation —
/// used to hide a generator's latent locality behind a bad numbering, the
/// situation the RCM experiments of §V-D start from.
pub fn scramble(coo: &CooMatrix, seed: u64) -> CooMatrix {
    use crate::perm::Permutation;
    let n = coo.nrows();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map: Vec<Idx> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n as usize).rev() {
        let j = rng.random_range(0..=i);
        map.swap(i, j);
    }
    let p = Permutation::from_map(map)
        .unwrap_or_else(|_| unreachable!("Fisher-Yates shuffle is a bijection"));
    p.apply_symmetric(coo)
        .unwrap_or_else(|_| unreachable!("generator matrices are square"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn check_spd_structure(coo: &CooMatrix) {
        assert!(coo.is_symmetric(0.0), "generated matrix must be symmetric");
        // Diagonal dominance implies SPD; verify the dominance itself.
        let n = coo.nrows() as usize;
        let mut diag = vec![0.0; n];
        let mut off = vec![0.0; n];
        for (r, c, v) in coo.iter() {
            if r == c {
                diag[r as usize] = v;
            } else {
                off[r as usize] += v.abs();
            }
        }
        let mut strict = false;
        for i in 0..n {
            assert!(diag[i] >= off[i], "row {i} not diagonally dominant");
            strict |= diag[i] > off[i];
        }
        // Weak dominance everywhere plus strictness somewhere (true for the
        // Laplacians' boundary rows and for all spd_from_lower outputs).
        assert!(strict, "no strictly dominant row");
    }

    #[test]
    fn laplacian_2d_structure() {
        let a = laplacian_2d(4, 5);
        assert_eq!(a.nrows(), 20);
        check_spd_structure(&a);
        // Interior point has exactly 5 stencil entries.
        let d = DenseMatrix::from_coo(&a);
        assert_eq!(d[(6, 6)], 4.0);
        assert_eq!(d[(6, 1)], -1.0);
    }

    #[test]
    fn laplacian_3d_structure() {
        let a = laplacian_3d(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        check_spd_structure(&a);
        // Center point (1,1,1) = index 13 has 6 neighbors.
        let center_row_nnz = a.iter().filter(|&(r, _, _)| r == 13).count();
        assert_eq!(center_row_nnz, 7);
    }

    #[test]
    fn banded_random_stays_in_band() {
        let a = banded_random(200, 10, 6.0, 7);
        check_spd_structure(&a);
        for (r, c, _) in a.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() <= 10);
        }
    }

    #[test]
    fn banded_random_deterministic() {
        let a = banded_random(100, 8, 4.0, 1);
        let b = banded_random(100, 8, 4.0, 1);
        let c = banded_random(100, 8, 4.0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn block_structural_has_blocks() {
        let a = block_structural(30, 3, 4.0, 8, 11);
        assert_eq!(a.nrows(), 90);
        check_spd_structure(&a);
        // Diagonal 3x3 node blocks must be dense.
        let d = DenseMatrix::from_coo(&a);
        for node in 0..30usize {
            for i in 0..3 {
                for j in 0..3 {
                    assert_ne!(d[(node * 3 + i, node * 3 + j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn mixed_bandwidth_has_far_entries() {
        let a = mixed_bandwidth(500, 8.0, 0.5, 5, 3);
        check_spd_structure(&a);
        let far = a
            .iter()
            .filter(|&(r, c, _)| (r as i64 - c as i64).abs() > 50)
            .count();
        assert!(far > 0, "expected scattered (high-bandwidth) entries");
    }

    #[test]
    fn power_law_has_hub_rows() {
        let a = power_law(400, 5.0, 0.01, 10, 9);
        check_spd_structure(&a);
        let n = a.nrows() as usize;
        let mut deg = vec![0usize; n];
        for (r, c, _) in a.iter() {
            if r != c {
                deg[r as usize] += 1;
                let _ = c;
            }
        }
        let max = *deg.iter().max().unwrap();
        let avg = deg.iter().sum::<usize>() as f64 / n as f64;
        assert!(max as f64 > 4.0 * avg, "max degree {max} vs avg {avg}");
    }

    #[test]
    fn skew_convection_is_skew_and_banded() {
        let a = skew_convection(300, 12, 6.0, 21);
        assert!(a.is_skew_symmetric(0.0));
        assert!(!a.is_symmetric(0.0));
        for (r, c, _) in a.iter() {
            assert_ne!(r, c, "skew generator must not emit diagonal entries");
            assert!((r as i64 - c as i64).unsigned_abs() <= 12);
        }
        // Determinism.
        assert_eq!(skew_convection(300, 12, 6.0, 21), a);
        assert_ne!(skew_convection(300, 12, 6.0, 22), a);
        // Skewness survives a symmetric permutation (the RCM-experiment
        // pipeline scrambles, reorders, and must stay skew throughout).
        let s = scramble(&a, 3);
        assert!(s.is_skew_symmetric(0.0));
    }

    #[test]
    fn structural_random_pattern_symmetric_values_not() {
        let a = structural_random(300, 7.0, 0.6, 8, 33);
        assert!(a.is_structurally_symmetric());
        assert!(!a.is_symmetric(0.0), "paired values must differ");
        assert!(!a.is_skew_symmetric(0.0));
        // Diagonal dominance over the full (unsymmetric) row values.
        let n = a.nrows() as usize;
        let mut diag = vec![0.0; n];
        let mut off = vec![0.0; n];
        for (r, c, v) in a.iter() {
            if r == c {
                diag[r as usize] = v;
            } else {
                off[r as usize] += v.abs();
            }
        }
        for i in 0..n {
            assert!(diag[i] > off[i], "row {i} not strictly dominant");
        }
        // Determinism.
        assert_eq!(structural_random(300, 7.0, 0.6, 8, 33), a);
    }

    #[test]
    fn scramble_preserves_symmetry_and_values() {
        let a = banded_random(200, 6, 5.0, 4);
        let s = scramble(&a, 1);
        assert!(s.is_symmetric(0.0));
        assert_eq!(s.nnz(), a.nnz());
        let mut va: Vec<f64> = a.iter().map(|(_, _, v)| v).collect();
        let mut vs: Vec<f64> = s.iter().map(|(_, _, v)| v).collect();
        va.sort_by(f64::total_cmp);
        vs.sort_by(f64::total_cmp);
        assert_eq!(va, vs);
        // The scramble must actually blow up the bandwidth.
        let bw = |m: &CooMatrix| m.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap();
        assert!(bw(&s) > 4 * bw(&a));
        // Determinism.
        assert_eq!(scramble(&a, 1), s);
        assert_ne!(scramble(&a, 2), s);
    }

    #[test]
    fn spd_from_lower_rejects_nonpositive_shift() {
        let lower = CooMatrix::new(3, 3);
        let res = std::panic::catch_unwind(|| spd_from_lower(&lower, 0.0));
        assert!(res.is_err());
    }
}

#[cfg(test)]
mod windowed_tests {
    use super::*;
    use crate::stats::matrix_stats;

    #[test]
    fn windowed_scramble_keeps_blocks_together() {
        let a = block_structural(40, 3, 6.0, 10, 2);
        let s = scramble_nodes_windowed(&a, 3, 10, 7);
        assert!(s.is_symmetric(0.0));
        assert_eq!(s.nnz(), a.nnz());
        // Diagonal 3x3 node blocks survive: every diagonal block is dense.
        let d = crate::dense::DenseMatrix::from_coo(&s);
        for node in 0..40usize {
            for i in 0..3 {
                for j in 0..3 {
                    assert_ne!(d[(node * 3 + i, node * 3 + j)], 0.0, "node {node}");
                }
            }
        }
    }

    #[test]
    fn windowed_scramble_grows_bandwidth_recoverably() {
        let a = block_structural(200, 3, 6.0, 10, 3);
        let s = scramble_nodes_windowed(&a, 3, 50, 9);
        let bw_a = matrix_stats(&a).bandwidth;
        let bw_s = matrix_stats(&s).bandwidth;
        assert!(
            bw_s > bw_a,
            "scramble should worsen the numbering: {bw_a} -> {bw_s}"
        );
        // And RCM-style recovery is possible in principle: the scramble is
        // windowed, so two neighbors end up at most ~2 windows apart.
        assert!(
            bw_s <= bw_a + 2 * 50 * 3 + 3,
            "bounded displacement: {bw_s}"
        );
    }

    #[test]
    fn windowed_scramble_deterministic() {
        let a = block_structural(30, 3, 5.0, 8, 1);
        assert_eq!(
            scramble_nodes_windowed(&a, 3, 8, 5),
            scramble_nodes_windowed(&a, 3, 8, 5)
        );
    }
}
