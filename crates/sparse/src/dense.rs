//! Small dense helpers used by tests and the CG solver's vector phase.

use crate::coo::CooMatrix;
use crate::{Idx, Val};

/// A trivially simple dense row-major matrix, used as the ground truth in
/// format-equivalence tests. Not intended for performance.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<Val>,
}

impl DenseMatrix {
    /// A zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Materializes a COO matrix densely.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut m = Self::zeros(coo.nrows() as usize, coo.ncols() as usize);
        for (r, c, v) in coo.iter() {
            m[(r as usize, c as usize)] += v;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Dense matrix–vector product `y = A·x`.
    pub fn matvec(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// True if `self` is exactly symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.nrows == self.ncols
            && (0..self.nrows).all(|r| (0..r).all(|c| self[(r, c)] == self[(c, r)]))
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = Val;
    fn index(&self, (r, c): (usize, usize)) -> &Val {
        &self.data[r * self.ncols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Val {
        &mut self.data[r * self.ncols + c]
    }
}

/// Asserts two vectors are element-wise equal within `tol` (test helper).
pub fn assert_vec_close(a: &[Val], b: &[Val], tol: Val) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "element {i} differs: {x} vs {y}"
        );
    }
}

/// Maximum relative difference between two vectors (0 when both empty).
pub fn max_rel_diff(a: &[Val], b: &[Val]) -> Val {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / (1.0 + x.abs().max(y.abs())))
        .fold(0.0, Val::max)
}

/// Creates a deterministic pseudo-random vector in `[-1, 1)` without pulling
/// in an RNG dependency at use sites (splitmix64-based).
pub fn seeded_vector(n: usize, seed: u64) -> Vec<Val> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            // Map the top 53 bits to [0, 1), then to [-1, 1).
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// `Idx`-indexed convenience: length of `0..n` as usize.
pub fn n_usize(n: Idx) -> usize {
    n as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matvec() {
        let mut m = DenseMatrix::zeros(2, 3);
        m[(0, 0)] = 1.0;
        m[(0, 2)] = 2.0;
        m[(1, 1)] = 3.0;
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 2];
        m.matvec(&x, &mut y);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn symmetry_check() {
        let mut m = DenseMatrix::zeros(2, 2);
        m[(0, 1)] = 1.0;
        assert!(!m.is_symmetric());
        m[(1, 0)] = 1.0;
        assert!(m.is_symmetric());
    }

    #[test]
    fn seeded_vector_deterministic_and_bounded() {
        let a = seeded_vector(100, 42);
        let b = seeded_vector(100, 42);
        let c = seeded_vector(100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        let d = DenseMatrix::from_coo(&coo);
        assert_eq!(d[(0, 0)], 3.0);
    }

    #[test]
    fn max_rel_diff_zero_for_equal() {
        let a = vec![1.0, 2.0];
        assert_eq!(max_rel_diff(&a, &a), 0.0);
    }
}
