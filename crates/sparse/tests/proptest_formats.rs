//! Randomized property tests for the base formats and permutations.
//!
//! Formerly proptest-based; now driven by the workspace's own seeded
//! [`StdRng`] so the property coverage survives without external crates
//! and every case is exactly reproducible from its loop index.

use symspmv_sparse::dense::DenseMatrix;
use symspmv_sparse::rng::StdRng;
use symspmv_sparse::{mm, CooMatrix, Idx, Permutation, SssMatrix};

const CASES: u64 = 80;

fn random_general(rng: &mut StdRng, max_dim: Idx, max_nnz: usize) -> CooMatrix {
    let nr = rng.random_range(1..max_dim);
    let nc = rng.random_range(1..max_dim);
    let nnz = rng.random_range(0..=max_nnz);
    let mut coo = CooMatrix::new(nr, nc);
    for _ in 0..nnz {
        let r = rng.random_range(0..nr);
        let c = rng.random_range(0..nc);
        coo.push(r, c, rng.random_range(-5.0..5.0));
    }
    coo.canonicalize();
    coo
}

fn random_symmetric(rng: &mut StdRng, max_dim: Idx, max_nnz: usize) -> CooMatrix {
    let n = rng.random_range(2..max_dim);
    let mut coo = CooMatrix::new(n, n);
    // Deduplicate positions: duplicate triplets would be summed in an
    // unspecified order by canonicalize, so the two mirror images could
    // round differently and break exact symmetry.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.random_range(0..=max_nnz) {
        let r = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        let v = rng.random_range(-5.0..5.0);
        if c <= r && v != 0.0 && seen.insert((r, c)) {
            coo.push(r, c, v);
            if c < r {
                coo.push(c, r, v);
            }
        }
    }
    coo.canonicalize();
    coo
}

#[test]
fn csr_spmv_matches_dense() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + case);
        let coo = random_general(&mut rng, 40, 200);
        let d = DenseMatrix::from_coo(&coo);
        let csr = symspmv_sparse::CsrMatrix::from_coo(&coo);
        let x = symspmv_sparse::dense::seeded_vector(coo.ncols() as usize, 1);
        let mut y1 = vec![0.0; coo.nrows() as usize];
        let mut y2 = vec![0.0; coo.nrows() as usize];
        d.matvec(&x, &mut y1);
        csr.spmv(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-10, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn sss_round_trip_and_spmv() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + case);
        let coo = random_symmetric(&mut rng, 40, 200);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        assert_eq!(sss.to_full_coo(), coo, "case {case}");

        let n = coo.nrows() as usize;
        let x = symspmv_sparse::dense::seeded_vector(n, 2);
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        coo.spmv_reference(&x, &mut y1);
        sss.spmv(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-10, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn matrix_market_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + case);
        let coo = random_general(&mut rng, 40, 150);
        let mut buf = Vec::new();
        mm::write_matrix_market(&mut buf, &coo, false).unwrap();
        let (back, _) = mm::read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, coo, "case {case}");
    }
}

#[test]
fn matrix_market_symmetric_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4000 + case);
        let coo = random_symmetric(&mut rng, 40, 150);
        let mut buf = Vec::new();
        mm::write_matrix_market(&mut buf, &coo, true).unwrap();
        let (back, hdr) = mm::read_matrix_market(&buf[..]).unwrap();
        assert_eq!(hdr.symmetry, mm::MmSymmetry::Symmetric, "case {case}");
        assert_eq!(back, coo, "case {case}");
    }
}

#[test]
fn permutation_inverse_composes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5000 + case);
        let n = rng.random_range(1u32..60);
        // Fisher-Yates from the seeded stream.
        let mut map: Vec<Idx> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.random_range(0..=i);
            map.swap(i, j);
        }
        let p = Permutation::from_map(map).unwrap();
        assert_eq!(
            p.then(&p.inverse()),
            Permutation::identity(n),
            "case {case}"
        );
        assert_eq!(p.inverse().inverse(), p, "case {case}");
    }
}

#[test]
fn canonicalize_idempotent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6000 + case);
        let coo = random_general(&mut rng, 40, 200);
        let mut once = coo.clone();
        once.canonicalize();
        let mut twice = once.clone();
        twice.canonicalize();
        assert_eq!(once, twice, "case {case}");
    }
}
