//! Property tests for the base formats and permutations.

use proptest::prelude::*;
use symspmv_sparse::dense::DenseMatrix;
use symspmv_sparse::{mm, CooMatrix, CsrMatrix, Idx, Permutation, SssMatrix};

fn arb_general(max_dim: Idx, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -5.0f64..5.0), 0..max_nnz).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(nr, nc);
                for (r, c, v) in trips {
                    coo.push(r, c, v);
                }
                coo.canonicalize();
                coo
            },
        )
    })
}

fn arb_symmetric(max_dim: Idx, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2..max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..max_nnz).prop_map(move |trips| {
            let mut coo = CooMatrix::new(n, n);
            // Deduplicate positions: duplicate triplets would be summed in
            // an unspecified order by canonicalize, so the two mirror
            // images could round differently and break exact symmetry.
            let mut seen = std::collections::HashSet::new();
            for (r, c, v) in trips {
                if c <= r && v != 0.0 && seen.insert((r, c)) {
                    coo.push(r, c, v);
                    if c < r {
                        coo.push(c, r, v);
                    }
                }
            }
            coo.canonicalize();
            coo
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn csr_spmv_matches_dense(coo in arb_general(40, 200)) {
        let d = DenseMatrix::from_coo(&coo);
        let csr = CsrMatrix::from_coo(&coo);
        let x = symspmv_sparse::dense::seeded_vector(coo.ncols() as usize, 1);
        let mut y1 = vec![0.0; coo.nrows() as usize];
        let mut y2 = vec![0.0; coo.nrows() as usize];
        d.matvec(&x, &mut y1);
        csr.spmv(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn sss_round_trip_and_spmv(coo in arb_symmetric(40, 200)) {
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        prop_assert_eq!(sss.to_full_coo(), coo.clone());

        let n = coo.nrows() as usize;
        let x = symspmv_sparse::dense::seeded_vector(n, 2);
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        coo.spmv_reference(&x, &mut y1);
        sss.spmv(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn matrix_market_round_trip(coo in arb_general(40, 150)) {
        let mut buf = Vec::new();
        mm::write_matrix_market(&mut buf, &coo, false).unwrap();
        let (back, _) = mm::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn matrix_market_symmetric_round_trip(coo in arb_symmetric(40, 150)) {
        let mut buf = Vec::new();
        mm::write_matrix_market(&mut buf, &coo, true).unwrap();
        let (back, hdr) = mm::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(hdr.symmetry, mm::MmSymmetry::Symmetric);
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn permutation_inverse_composes(n in 1u32..60, seed in any::<u64>()) {
        // Fisher-Yates from a seeded stream.
        let mut map: Vec<Idx> = (0..n).collect();
        let mut state = seed;
        for i in (1..n as usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            map.swap(i, j);
        }
        let p = Permutation::from_map(map).unwrap();
        prop_assert_eq!(p.then(&p.inverse()), Permutation::identity(n));
        prop_assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn canonicalize_idempotent(coo in arb_general(40, 200)) {
        let mut once = coo.clone();
        once.canonicalize();
        let mut twice = once.clone();
        twice.canonicalize();
        prop_assert_eq!(once, twice);
    }
}
