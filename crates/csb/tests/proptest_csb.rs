//! Randomized tests for the CSB formats.
//!
//! Formerly proptest-based; now driven by the workspace's own seeded
//! [`StdRng`] so the coverage survives without external crates and every
//! case is exactly reproducible from its loop index.

use symspmv_csb::{CsbMatrix, CsbSymMatrix};
use symspmv_sparse::rng::StdRng;
use symspmv_sparse::{CooMatrix, Idx, SssMatrix};

const CASES: u64 = 64;

fn random_coo(rng: &mut StdRng, max_dim: Idx, max_nnz: usize) -> CooMatrix {
    let nr = rng.random_range(2..max_dim);
    let nc = rng.random_range(2..max_dim);
    let mut coo = CooMatrix::new(nr, nc);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.random_range(0..=max_nnz) {
        let r = rng.random_range(0..nr);
        let c = rng.random_range(0..nc);
        let v = rng.random_range(-3.0..3.0);
        if v != 0.0 && seen.insert((r, c)) {
            coo.push(r, c, v);
        }
    }
    coo.canonicalize();
    coo
}

#[test]
fn round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x50_0000 + case);
        let coo = random_coo(&mut rng, 70, 300);
        let beta = 1u32 << rng.random_range(2u32..7);
        let csb = CsbMatrix::with_beta(&coo, beta);
        assert_eq!(csb.to_coo(), coo, "case {case} (beta {beta})");
        assert_eq!(csb.nnz(), coo.nnz(), "case {case}");
    }
}

#[test]
fn spmv_and_transpose_match_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x60_0000 + case);
        let coo = random_coo(&mut rng, 60, 250);
        let csb = CsbMatrix::from_coo(&coo);
        let x = symspmv_sparse::dense::seeded_vector(coo.ncols() as usize, 1);
        let mut y = vec![0.0; coo.nrows() as usize];
        let mut y_ref = vec![0.0; coo.nrows() as usize];
        csb.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-10, "case {case}");
        }

        // Aᵀ·x against the transposed reference.
        let xt = symspmv_sparse::dense::seeded_vector(coo.nrows() as usize, 2);
        let mut yt = vec![0.0; coo.ncols() as usize];
        csb.spmv_transpose(&xt, &mut yt);
        let t = coo.transpose();
        let mut canon = t.clone();
        canon.canonicalize();
        let mut yt_ref = vec![0.0; coo.ncols() as usize];
        canon.spmv_reference(&xt, &mut yt_ref);
        for (a, b) in yt.iter().zip(&yt_ref) {
            assert!((a - b).abs() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn sym_serial_matches_sss() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x70_0000 + case);
        let n = rng.random_range(3u32..50);
        let mut lower = CooMatrix::new(n, n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..rng.random_range(0usize..120) {
            let r = rng.random_range(0..n);
            let c = rng.random_range(0..n);
            let v = rng.random_range(0.1..2.0);
            if c < r && seen.insert((r, c)) {
                lower.push(r, c, -v);
            }
        }
        let full = symspmv_sparse::gen::spd_from_lower(&lower, 1.0);
        let sss = SssMatrix::from_coo(&full, 0.0).unwrap();
        let sym = CsbSymMatrix::from_sss(&sss, Some(8));
        let x = symspmv_sparse::dense::seeded_vector(n as usize, 3);
        let mut y1 = vec![0.0; n as usize];
        let mut y2 = vec![0.0; n as usize];
        sss.spmv(&x, &mut y1);
        sym.spmv_serial(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-10, "case {case}");
        }
    }
}
