//! Property tests for the CSB formats.

use proptest::prelude::*;
use symspmv_csb::{CsbMatrix, CsbSymMatrix};
use symspmv_sparse::{CooMatrix, Idx, SssMatrix};

fn arb_coo(max_dim: Idx, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2..max_dim, 2..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -3.0f64..3.0), 0..max_nnz).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(nr, nc);
                let mut seen = std::collections::HashSet::new();
                for (r, c, v) in trips {
                    if v != 0.0 && seen.insert((r, c)) {
                        coo.push(r, c, v);
                    }
                }
                coo.canonicalize();
                coo
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip(coo in arb_coo(70, 300), beta_pow in 2u32..7) {
        let beta = 1u32 << beta_pow;
        let csb = CsbMatrix::with_beta(&coo, beta);
        prop_assert_eq!(csb.to_coo(), coo.clone());
        prop_assert_eq!(csb.nnz(), coo.nnz());
    }

    #[test]
    fn spmv_and_transpose_match_reference(coo in arb_coo(60, 250)) {
        let csb = CsbMatrix::from_coo(&coo);
        let x = symspmv_sparse::dense::seeded_vector(coo.ncols() as usize, 1);
        let mut y = vec![0.0; coo.nrows() as usize];
        let mut y_ref = vec![0.0; coo.nrows() as usize];
        csb.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            prop_assert!((a - b).abs() < 1e-10);
        }

        // Aᵀ·x against the transposed reference.
        let xt = symspmv_sparse::dense::seeded_vector(coo.nrows() as usize, 2);
        let mut yt = vec![0.0; coo.ncols() as usize];
        csb.spmv_transpose(&xt, &mut yt);
        let t = coo.transpose();
        let mut canon = t.clone();
        canon.canonicalize();
        let mut yt_ref = vec![0.0; coo.ncols() as usize];
        canon.spmv_reference(&xt, &mut yt_ref);
        for (a, b) in yt.iter().zip(&yt_ref) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn sym_serial_matches_sss(n in 3u32..50, edges in proptest::collection::vec((0u32..50, 0u32..50, 0.1f64..2.0), 0..120)) {
        let mut lower = CooMatrix::new(n, n);
        let mut seen = std::collections::HashSet::new();
        for (r, c, v) in edges {
            let (r, c) = (r % n, c % n);
            if c < r && seen.insert((r, c)) {
                lower.push(r, c, -v);
            }
        }
        let full = symspmv_sparse::gen::spd_from_lower(&lower, 1.0);
        let sss = SssMatrix::from_coo(&full, 0.0).unwrap();
        let sym = CsbSymMatrix::from_sss(&sss, Some(8));
        let x = symspmv_sparse::dense::seeded_vector(n as usize, 3);
        let mut y1 = vec![0.0; n as usize];
        let mut y2 = vec![0.0; n as usize];
        sss.spmv(&x, &mut y1);
        sym.spmv_serial(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }
}
