#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Compressed Sparse Blocks — the related-work comparator of §VI.
//!
//! CSB (Buluç et al., SPAA'09 — ref. 8 of the paper) divides the matrix
//! into β×β blocks stored block-row-major; within a block, elements are
//! coordinates with *small* local indices (16 bits here), so the index
//! storage is roughly halved relative to CSR while supporting both `A·x`
//! and `Aᵀ·x` efficiently.
//!
//! The symmetric variant (Buluç et al., IPDPS'11 — ref. 27) stores the
//! lower triangle only; transposed updates that stay within a narrow band
//! of block diagonals go to small per-thread local buffers (a bounded
//! reduction), while the rare far-flung updates use atomic operations —
//! the design the paper predicts "is expected to be bound by the atomic
//! operations" on high-bandwidth matrices, which our experiments can now
//! test directly against local-vectors indexing.
//!
//! Deviation from the original: the original CSB uses Cilk task
//! parallelism with dynamic blockrow splitting; this implementation uses
//! the same static nnz-balanced blockrow partitioning as the rest of the
//! workspace (DESIGN.md substitution S4 applies).

pub mod matrix;
pub mod sym;

pub use matrix::CsbMatrix;
pub use sym::CsbSymMatrix;
