//! The unsymmetric CSB matrix.

use symspmv_sparse::validate::{validate_coo, CooChecks};
use symspmv_sparse::{CooMatrix, Idx, SparseError, Val};

/// Default block-size exponent selection: β = 2^k with β ≈ √N, clamped to
/// 16-bit local indices (β ≤ 65 536).
pub fn default_beta(n: Idx) -> u32 {
    let mut beta = 1u32;
    while (beta as u64 * beta as u64) < n as u64 {
        beta <<= 1;
    }
    beta.clamp(4, 1 << 16)
}

/// A sparse matrix in Compressed Sparse Blocks format.
///
/// Blocks are stored block-row-major; `blk_ptr` is a dense
/// `(nbr·nbc + 1)`-entry offset table into the element arrays. Element
/// coordinates are 16-bit offsets local to their block, packed into one
/// `u32` (row in the high half).
#[derive(Debug, Clone, PartialEq)]
pub struct CsbMatrix {
    nrows: Idx,
    ncols: Idx,
    beta: u32,
    nbr: u32,
    nbc: u32,
    blk_ptr: Vec<usize>,
    locind: Vec<u32>,
    values: Vec<Val>,
}

impl CsbMatrix {
    /// Builds a CSB matrix with an automatically chosen block size.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        Self::with_beta(coo, default_beta(coo.nrows().max(coo.ncols()).max(1)))
    }

    /// Fully validated constructor for matrices from outside the process:
    /// rejects out-of-range indices, non-finite values and duplicate
    /// coordinates with a structured [`SparseError`] instead of producing a
    /// silently wrong encoding. `beta` of `None` selects the default block
    /// size; an explicit block size must fit 16-bit local indices.
    pub fn try_from_coo(coo: &CooMatrix, beta: Option<u32>) -> Result<Self, SparseError> {
        if let Some(b) = beta {
            if b == 0 || b > 1 << 16 {
                return Err(SparseError::InvalidArgument {
                    msg: format!("CSB block size must be in 1..=65536, got {b}"),
                });
            }
        }
        let mut c = coo.clone();
        c.canonicalize();
        validate_coo(&c, &CooChecks::unsymmetric_format())?;
        Ok(match beta {
            Some(b) => Self::with_beta(&c, b),
            None => Self::from_coo(&c),
        })
    }

    /// Builds a CSB matrix with an explicit block size β (≤ 65 536).
    pub fn with_beta(coo: &CooMatrix, beta: u32) -> Self {
        assert!(
            beta > 0 && beta <= 1 << 16,
            "beta must fit 16-bit local indices"
        );
        let mut c = coo.clone();
        c.canonicalize();
        let nrows = c.nrows();
        let ncols = c.ncols();
        let nbr = nrows.div_ceil(beta).max(1);
        let nbc = ncols.div_ceil(beta).max(1);
        let nblocks = nbr as usize * nbc as usize;

        // Counting sort of elements into block-row-major block order.
        let block_of = |r: Idx, cc: Idx| -> usize {
            (r / beta) as usize * nbc as usize + (cc / beta) as usize
        };
        let mut counts = vec![0usize; nblocks + 1];
        for (r, cc, _) in c.iter() {
            counts[block_of(r, cc) + 1] += 1;
        }
        for b in 0..nblocks {
            counts[b + 1] += counts[b];
        }
        let blk_ptr = counts.clone();
        let mut cursor = counts;
        let mut locind = vec![0u32; c.nnz()];
        let mut values = vec![0.0; c.nnz()];
        for (r, cc, v) in c.iter() {
            let b = block_of(r, cc);
            let k = cursor[b];
            cursor[b] += 1;
            let lr = r % beta;
            let lc = cc % beta;
            locind[k] = (lr << 16) | lc;
            values[k] = v;
        }
        CsbMatrix {
            nrows,
            ncols,
            beta,
            nbr,
            nbc,
            blk_ptr,
            locind,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Idx {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Idx {
        self.ncols
    }

    /// Block size β.
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// Block-row count.
    pub fn nbr(&self) -> u32 {
        self.nbr
    }

    /// Block-column count.
    pub fn nbc(&self) -> u32 {
        self.nbc
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Size of the representation in bytes: packed 4-byte local indices,
    /// 8-byte values, plus the dense block offset table (8 bytes/block).
    pub fn size_bytes(&self) -> usize {
        4 * self.locind.len() + 8 * self.values.len() + 8 * self.blk_ptr.len()
    }

    /// The element range of block `(bi, bj)`.
    #[inline]
    pub fn block_range(&self, bi: u32, bj: u32) -> std::ops::Range<usize> {
        let b = bi as usize * self.nbc as usize + bj as usize;
        self.blk_ptr[b]..self.blk_ptr[b + 1]
    }

    /// Non-zeros in each block row (for partitioning).
    pub fn blockrow_weights(&self) -> Vec<u64> {
        (0..self.nbr)
            .map(|bi| {
                let lo = self.blk_ptr[bi as usize * self.nbc as usize];
                let hi = self.blk_ptr[(bi as usize + 1) * self.nbc as usize];
                (hi - lo) as u64 + 1
            })
            .collect()
    }

    /// SpMV over one block row: `y_rows` is the slice of `y` covering rows
    /// `[bi·β, min((bi+1)·β, N))`.
    #[inline]
    pub fn spmv_blockrow(&self, bi: u32, x: &[Val], y_rows: &mut [Val]) {
        let beta = self.beta;
        for bj in 0..self.nbc {
            let range = self.block_range(bi, bj);
            if range.is_empty() {
                continue;
            }
            let xoff = (bj * beta) as usize;
            for k in range {
                let li = self.locind[k];
                let (lr, lc) = ((li >> 16) as usize, (li & 0xFFFF) as usize);
                y_rows[lr] += self.values[k] * x[xoff + lc];
            }
        }
    }

    /// Serial SpMV: `y = A·x`.
    pub fn spmv(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols as usize);
        assert_eq!(y.len(), self.nrows as usize);
        y.fill(0.0);
        for bi in 0..self.nbr {
            let lo = (bi * self.beta) as usize;
            let hi = ((bi + 1) * self.beta).min(self.nrows) as usize;
            let (_, rest) = y.split_at_mut(lo);
            self.spmv_blockrow(bi, x, &mut rest[..hi - lo]);
        }
    }

    /// Serial transpose product `y = Aᵀ·x` (the operation CSB is designed
    /// to share storage with).
    pub fn spmv_transpose(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.nrows as usize);
        assert_eq!(y.len(), self.ncols as usize);
        y.fill(0.0);
        let beta = self.beta;
        for bi in 0..self.nbr {
            let xoff = (bi * beta) as usize;
            for bj in 0..self.nbc {
                let yoff = (bj * beta) as usize;
                for k in self.block_range(bi, bj) {
                    let li = self.locind[k];
                    let (lr, lc) = ((li >> 16) as usize, (li & 0xFFFF) as usize);
                    y[yoff + lc] += self.values[k] * x[xoff + lr];
                }
            }
        }
    }

    /// Raw packed local-index array (row in the high 16 bits) — exposed for
    /// the symmetric kernels in `symspmv-core`.
    pub fn locind_raw(&self) -> &[u32] {
        &self.locind
    }

    /// Raw values array, parallel to [`CsbMatrix::locind_raw`].
    pub fn values_raw(&self) -> &[Val] {
        &self.values
    }

    /// Reconstructs the COO form (testing).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for bi in 0..self.nbr {
            for bj in 0..self.nbc {
                for k in self.block_range(bi, bj) {
                    let li = self.locind[k];
                    let (lr, lc) = (li >> 16, li & 0xFFFF);
                    coo.push(bi * self.beta + lr, bj * self.beta + lc, self.values[k]);
                }
            }
        }
        coo.canonicalize();
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector};

    #[test]
    fn beta_selection() {
        assert_eq!(default_beta(1), 4);
        assert_eq!(default_beta(16), 4);
        assert_eq!(default_beta(17), 8);
        assert_eq!(default_beta(1 << 20), 1 << 10);
    }

    #[test]
    fn round_trip() {
        let coo = symspmv_sparse::gen::banded_random(200, 15, 7.0, 3);
        let csb = CsbMatrix::with_beta(&coo, 32);
        let mut canon = coo.clone();
        canon.canonicalize();
        assert_eq!(csb.to_coo(), canon);
        assert_eq!(csb.nnz(), canon.nnz());
    }

    #[test]
    fn spmv_matches_reference_various_betas() {
        let coo = symspmv_sparse::gen::mixed_bandwidth(300, 9.0, 0.6, 20, 7);
        let x = seeded_vector(300, 1);
        let mut y_ref = vec![0.0; 300];
        coo.spmv_reference(&x, &mut y_ref);
        for beta in [4u32, 16, 64, 512] {
            let csb = CsbMatrix::with_beta(&coo, beta);
            let mut y = vec![0.0; 300];
            csb.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn transpose_product() {
        let mut coo = CooMatrix::new(3, 5);
        coo.push(0, 4, 2.0);
        coo.push(2, 1, 3.0);
        let csb = CsbMatrix::with_beta(&coo, 4);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 5];
        csb.spmv_transpose(&x, &mut y);
        assert_eq!(y, vec![0.0, 9.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn rectangular_and_edge_sizes() {
        let mut coo = CooMatrix::new(5, 9);
        coo.push(4, 8, 1.5);
        coo.push(0, 0, -2.0);
        let csb = CsbMatrix::with_beta(&coo, 4);
        assert_eq!(csb.nbr(), 2);
        assert_eq!(csb.nbc(), 3);
        let x = vec![1.0; 9];
        let mut y = vec![0.0; 5];
        csb.spmv(&x, &mut y);
        assert_eq!(y[0], -2.0);
        assert_eq!(y[4], 1.5);
    }

    #[test]
    fn index_compression_beats_csr_on_large_n() {
        // 4-byte packed local indices vs CSR's 4-byte columns + rowptr:
        // CSB's win is the block table amortization at large N with dense
        // blocks; at minimum it must stay in the same ballpark.
        let coo = symspmv_sparse::gen::banded_random(4096, 40, 12.0, 5);
        let csb = CsbMatrix::from_coo(&coo);
        let csr_bytes = 12 * coo.nnz() + 4 * 4097;
        assert!(
            (csb.size_bytes() as f64) < 1.2 * csr_bytes as f64,
            "CSB {} vs CSR {csr_bytes}",
            csb.size_bytes()
        );
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(10, 10);
        let csb = CsbMatrix::from_coo(&coo);
        let x = vec![1.0; 10];
        let mut y = vec![7.0; 10];
        csb.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0; 10]);
    }
}
