//! The symmetric CSB variant (storage side).
//!
//! Stores the strict lower triangle in CSB plus a dense diagonal, exactly
//! like SSS but with block-local indices. The *parallel execution* scheme
//! of ref. 27 (banded local buffers + atomic far updates) lives in
//! `symspmv-core::csb_mt`, next to the other kernels; this module provides
//! the storage, the serial kernel and the structural queries it needs.
//!
//! Like SSS, the storage carries a [`SymmetryKind`]: skew matrices flip
//! the sign of the mirrored contribution, and structurally-symmetric ones
//! keep a second block-ordered `upper_values` array paired element-for-
//! element with the lower values.

use crate::matrix::CsbMatrix;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::{CooMatrix, Idx, SparseError, SssMatrix, Val};

/// A symmetric matrix as dense diagonal + strict-lower-triangle CSB.
#[derive(Debug, Clone, PartialEq)]
pub struct CsbSymMatrix {
    n: Idx,
    dvalues: Vec<Val>,
    lower: CsbMatrix,
    kind: SymmetryKind,
    /// For [`SymmetryKind::Structural`]: the upper-triangle values in the
    /// same block order as `lower`'s values (empty otherwise).
    upper_values: Vec<Val>,
}

impl CsbSymMatrix {
    /// Builds from a full symmetric COO matrix (checked).
    pub fn from_coo(coo: &CooMatrix, beta: Option<u32>) -> Result<Self, SparseError> {
        Self::from_coo_kind(coo, SymmetryKind::Symmetric, beta)
    }

    /// Builds from a full COO matrix with an explicit [`SymmetryKind`].
    pub fn from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        beta: Option<u32>,
    ) -> Result<Self, SparseError> {
        let sss = SssMatrix::from_coo_kind(coo, kind, 0.0)?;
        Ok(Self::from_sss(&sss, beta))
    }

    /// Fully validated constructor for matrices from outside the process:
    /// beyond [`CsbSymMatrix::from_coo`]'s square/symmetry checks, rejects
    /// non-finite values, duplicate coordinates, index overflow and an
    /// out-of-range block size with a structured [`SparseError`].
    pub fn try_from_coo(coo: &CooMatrix, beta: Option<u32>) -> Result<Self, SparseError> {
        Self::try_from_coo_kind(coo, SymmetryKind::Symmetric, beta)
    }

    /// The kind-aware twin of [`CsbSymMatrix::try_from_coo`].
    pub fn try_from_coo_kind(
        coo: &CooMatrix,
        kind: SymmetryKind,
        beta: Option<u32>,
    ) -> Result<Self, SparseError> {
        if let Some(b) = beta {
            if b == 0 || b > 1 << 16 {
                return Err(SparseError::InvalidArgument {
                    msg: format!("CSB block size must be in 1..=65536, got {b}"),
                });
            }
        }
        let sss = SssMatrix::try_from_coo_kind(coo, kind, 0.0)?;
        Ok(Self::from_sss(&sss, beta))
    }

    /// Builds from SSS storage (symmetry already established). The SSS
    /// matrix's [`SymmetryKind`] carries over.
    pub fn from_sss(sss: &SssMatrix, beta: Option<u32>) -> Self {
        let n = sss.n();
        let kind = sss.kind();
        let mut lower_coo = CooMatrix::with_capacity(n, n, sss.lower_nnz());
        for r in 0..n {
            let (cols, vals) = sss.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                lower_coo.push(r, c, v);
            }
        }
        let lower = match beta {
            Some(b) => CsbMatrix::with_beta(&lower_coo, b),
            None => CsbMatrix::from_coo(&lower_coo),
        };
        // For structural matrices, run the *same coordinates* through a
        // second CSB build carrying the upper values. The block layout and
        // in-block ordering are pure functions of the coordinates and beta,
        // so the element order is identical — asserted below.
        let upper_values = if kind.has_upper_values() {
            let mut upper_coo = CooMatrix::with_capacity(n, n, sss.lower_nnz());
            for r in 0..n {
                let (cols, _, pair) = sss.row_with_paired(r);
                for (&c, &u) in cols.iter().zip(pair) {
                    upper_coo.push(r, c, u);
                }
            }
            let upper = CsbMatrix::with_beta(&upper_coo, lower.beta());
            debug_assert_eq!(upper.locind_raw(), lower.locind_raw());
            upper.values_raw().to_vec()
        } else {
            Vec::new()
        };
        CsbSymMatrix {
            n,
            dvalues: sss.dvalues().to_vec(),
            lower,
            kind,
            upper_values,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> Idx {
        self.n
    }

    /// The symmetry kind this storage carries.
    pub fn kind(&self) -> SymmetryKind {
        self.kind
    }

    /// Dense diagonal.
    pub fn dvalues(&self) -> &[Val] {
        &self.dvalues
    }

    /// The strict-lower-triangle CSB storage.
    pub fn lower(&self) -> &CsbMatrix {
        &self.lower
    }

    /// The per-element mirror source: the upper-triangle values for
    /// structural matrices, the lower values themselves otherwise (the
    /// kernels apply the kind's sign through `SymmetryOps`).
    pub fn paired_values(&self) -> &[Val] {
        if self.upper_values.is_empty() {
            self.lower.values_raw()
        } else {
            &self.upper_values
        }
    }

    /// Non-zeros of the represented operator (`2·lower + N`, diagonal
    /// stored densely).
    pub fn full_nnz(&self) -> usize {
        2 * self.lower.nnz() + self.n as usize
    }

    /// Bytes: lower CSB plus the dense diagonal (plus the paired upper
    /// array for structural matrices).
    pub fn size_bytes(&self) -> usize {
        self.lower.size_bytes() + 8 * self.n as usize + 8 * self.upper_values.len()
    }

    /// Serial symmetric SpMV (`y = A·x`).
    pub fn spmv_serial(&self, x: &[Val], y: &mut [Val]) {
        let n = self.n as usize;
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for r in 0..n {
            y[r] = self.dvalues[r] * x[r];
        }
        let kind = self.kind;
        let paired = self.paired_values();
        let beta = self.lower.beta();
        for bi in 0..self.lower.nbr() {
            let roff = (bi * beta) as usize;
            for bj in 0..self.lower.nbc() {
                let coff = (bj * beta) as usize;
                for k in self.lower.block_range(bi, bj) {
                    let (lr, lc, v) = self.element(k);
                    let (r, c) = (roff + lr, coff + lc);
                    y[r] += v * x[c];
                    y[c] += kind.transposed(v, paired[k]) * x[r];
                }
            }
        }
    }

    /// Decodes element `k` of the lower CSB: local row, local col, value.
    #[inline]
    pub fn element(&self, k: usize) -> (usize, usize, Val) {
        let li = self.lower_locind()[k];
        (
            (li >> 16) as usize,
            (li & 0xFFFF) as usize,
            self.lower_values()[k],
        )
    }

    fn lower_locind(&self) -> &[u32] {
        // Accessor indirection keeps CsbMatrix's fields private.
        self.lower.locind_raw()
    }

    fn lower_values(&self) -> &[Val] {
        self.lower.values_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::dense::{assert_vec_close, seeded_vector, DenseMatrix};

    #[test]
    fn serial_matches_sss() {
        let coo = symspmv_sparse::gen::block_structural(50, 3, 8.0, 12, 5);
        let n = coo.nrows() as usize;
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let sym = CsbSymMatrix::from_sss(&sss, Some(16));
        let x = seeded_vector(n, 3);
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        sss.spmv(&x, &mut y1);
        sym.spmv_serial(&x, &mut y2);
        assert_vec_close(&y1, &y2, 1e-12);
    }

    #[test]
    fn sizes_halve_like_sss() {
        let coo = symspmv_sparse::gen::banded_random(2000, 30, 10.0, 9);
        let sym = CsbSymMatrix::from_coo(&coo, None).unwrap();
        let csr_bytes = 12 * sym.full_nnz() + 4 * 2001;
        assert!(sym.size_bytes() < csr_bytes * 6 / 10);
    }

    #[test]
    fn asymmetric_rejected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 1.0);
        assert!(CsbSymMatrix::from_coo(&coo, None).is_err());
    }

    #[test]
    fn skew_serial_matches_dense() {
        let coo = symspmv_sparse::gen::skew_convection(64, 7, 5.0, 17);
        let n = coo.nrows() as usize;
        let sym = CsbSymMatrix::from_coo_kind(&coo, SymmetryKind::Skew, Some(16)).unwrap();
        assert_eq!(sym.kind(), SymmetryKind::Skew);
        let x = seeded_vector(n, 4);
        let mut y = vec![0.0; n];
        sym.spmv_serial(&x, &mut y);
        let mut y_ref = vec![0.0; n];
        DenseMatrix::from_coo(&coo).matvec(&x, &mut y_ref);
        assert_vec_close(&y, &y_ref, 1e-12);
        let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(quad.abs() < 1e-10, "x'Ax = {quad} for skew A");
    }

    #[test]
    fn structural_serial_matches_dense() {
        let coo = symspmv_sparse::gen::structural_random(80, 6.0, 0.7, 10, 23);
        let n = coo.nrows() as usize;
        let sym = CsbSymMatrix::from_coo_kind(&coo, SymmetryKind::Structural, Some(8)).unwrap();
        assert_eq!(sym.paired_values().len(), sym.lower().nnz());
        let x = seeded_vector(n, 9);
        let mut y = vec![0.0; n];
        sym.spmv_serial(&x, &mut y);
        let mut y_ref = vec![0.0; n];
        DenseMatrix::from_coo(&coo).matvec(&x, &mut y_ref);
        assert_vec_close(&y, &y_ref, 1e-12);
    }
}
