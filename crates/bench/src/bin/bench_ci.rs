//! `bench-ci` — the perf regression gate.
//!
//! Runs a curated smoke subset of the bench suite on small deterministic
//! suite matrices, emits `BENCH_ci.json`, and compares the result against
//! the committed `bench/baseline.json` under the noise-robust rule in
//! [`symspmv_bench::regress`].
//!
//! Exit codes: `0` within noise, `1` regression (or lost coverage, or a
//! failed self-test), `2` usage/IO error, `3` improvement or new bench —
//! refresh the baseline with `--write-baseline`.
//!
//! ```text
//! cargo run --release -p symspmv-bench --bin bench-ci                  # gate
//! cargo run --release -p symspmv-bench --bin bench-ci -- --write-baseline
//! cargo run --release -p symspmv-bench --bin bench-ci -- --self-test   # gate the gate
//! ```
//!
//! `SYMSPMV_BENCH_SAMPLES` pins the per-bench sample count (CI sets it for
//! determinism), `SYMSPMV_BENCH_DIR` the artifact directory, and
//! `SYMSPMV_BENCH_RTOL` / `SYMSPMV_BENCH_MADK` the gate tolerances.

use std::path::PathBuf;

use symspmv_bench::regress::{compare, GateConfig, Verdict};
use symspmv_bench::{bench_dir, black_box, write_report, Target};
use symspmv_core::{ParallelSpmm, ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_harness::kernels::{build_kernel, build_kernel_kind, KernelSpec};
use symspmv_harness::ledger::{BenchReport, SampleSet};
use symspmv_harness::machine::MachineInfo;
use symspmv_harness::report::ledger_table;
use symspmv_runtime::ExecutionContext;
use symspmv_solver::{cg, CgConfig};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;
use symspmv_sparse::symmetry::SymmetryKind;

/// Default committed baseline location, relative to the workspace root.
const BASELINE: &str = "bench/baseline.json";

fn main() {
    std::process::exit(run());
}

struct Args {
    write_baseline: bool,
    self_test: bool,
    baseline: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        write_baseline: false,
        self_test: false,
        baseline: PathBuf::from(BASELINE),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write-baseline" => args.write_baseline = true,
            "--self-test" => args.self_test = true,
            "--baseline" => {
                args.baseline = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--baseline needs a path")?;
            }
            "--help" | "-h" => {
                println!(
                    "bench-ci: perf smoke benches + statistical regression gate\n\n\
                     \t--write-baseline   run the smoke suite and (re)write the baseline\n\
                     \t--baseline PATH    baseline to gate against (default {BASELINE})\n\
                     \t--self-test        verify the gate trips on synthetic shifts\n\n\
                     exit codes: 0 ok, 1 regression, 2 usage/io, 3 refresh baseline"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-ci: {e}");
            return 2;
        }
    };

    if args.self_test {
        return self_test();
    }

    let report = run_smoke();
    println!("\n{}", ledger_table(&report).render());

    // Always emit the artifact, gate or not — CI uploads it either way.
    match write_report(&report, &bench_dir()) {
        Ok(path) => println!("ledger: {}", path.display()),
        Err(e) => {
            eprintln!("bench-ci: cannot write ledger: {e}");
            return 2;
        }
    }

    if args.write_baseline {
        if let Some(dir) = args.baseline.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("bench-ci: cannot create {}: {e}", dir.display());
                return 2;
            }
        }
        // The baseline is committed, so normalize the volatile `+dirty`
        // marker out of its revision — otherwise a baseline refreshed
        // from a modified tree records a revision no later clean checkout
        // can reproduce, and comparisons look like lost coverage.
        let mut committed = report.clone();
        committed.machine = committed.machine.normalized();
        let text = match committed.to_json() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-ci: cannot serialize baseline: {e}");
                return 2;
            }
        };
        if let Err(e) = std::fs::write(&args.baseline, text) {
            eprintln!("bench-ci: cannot write {}: {e}", args.baseline.display());
            return 2;
        }
        println!("baseline written: {}", args.baseline.display());
        return 0;
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench-ci: cannot read baseline {}: {e}\n\
                 seed one with `cargo run --release -p symspmv-bench --bin bench-ci -- --write-baseline`",
                args.baseline.display()
            );
            return 2;
        }
    };
    let baseline = match BenchReport::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-ci: baseline is not a valid ledger: {e}");
            return 2;
        }
    };

    let cfg = GateConfig::from_env();
    println!(
        "gate: rel_tol={:.0}%, mad_k={}, floor={:.0}ns (baseline rev {})",
        cfg.rel_tol * 100.0,
        cfg.mad_k,
        cfg.abs_floor * 1e9,
        baseline.machine.git_rev_clean()
    );
    let cmp = compare(&baseline, &report, &cfg);
    println!("\n{}", cmp.table().render());
    println!("{}", cmp.summary());
    match cmp.exit_code() {
        0 => println!("gate: PASS"),
        1 => println!("gate: FAIL — median shifted beyond the noise band"),
        3 => println!("gate: IMPROVED — refresh bench/baseline.json with --write-baseline"),
        _ => {}
    }
    cmp.exit_code()
}

/// The curated smoke subset: small, deterministic, one representative per
/// measurement family (format lineup, reduction methods, solver).
fn run_smoke() -> BenchReport {
    let mut t = Target::new("ci");
    let ctx = ExecutionContext::new(2);

    // Family 1: the Fig. 11 format lineup on a structural matrix.
    let m = suite::generate(
        suite::spec_by_name("hood").unwrap_or(&suite::SUITE[0]),
        0.004,
    );
    let n = m.coo.nrows() as usize;
    {
        let mut g = t.group("ci/spmv/hood");
        g.throughput_elements(m.coo.nnz() as u64);
        for spec in [
            KernelSpec::Csr,
            KernelSpec::Sss(ReductionMethod::Indexing),
            KernelSpec::CsxSym(ReductionMethod::Indexing),
        ] {
            let Ok(mut k) = build_kernel(spec, &m.coo, &ctx) else {
                continue; // surfaces as a Vanished row against the baseline
            };
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n) as u64);
            k.reset_times();
            g.bench_function(spec.name(), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }

    // Family 2: the three reduction methods on a scattered matrix.
    let m2 = suite::generate(
        suite::spec_by_name("G3_circuit").unwrap_or(&suite::SUITE[0]),
        0.002,
    );
    let n2 = m2.coo.nrows() as usize;
    {
        let mut g = t.group("ci/reduction/G3_circuit");
        g.throughput_elements(m2.coo.nnz() as u64);
        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            let Ok(mut k) = SymSpmv::from_coo(&m2.coo, &ctx, method, SymFormat::Sss) else {
                continue;
            };
            let mut x = seeded_vector(n2, 1);
            let mut y = vec![0.0; n2];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n2) as u64);
            k.reset_times();
            g.bench_function(method.tag(), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }

    // Family 2b: the coloring-scheduled strategy against the paper's best
    // reduction strategy on the same scattered matrix — the pair the
    // `sss-race` scheme is accountable to (it trades the reduction phase
    // for one barrier per color group).
    {
        let mut g = t.group("ci/color/G3_circuit");
        g.throughput_elements(m2.coo.nnz() as u64);
        for method in [ReductionMethod::Race, ReductionMethod::Indexing] {
            let Ok(mut k) = SymSpmv::from_coo(&m2.coo, &ctx, method, SymFormat::Sss) else {
                continue;
            };
            let mut x = seeded_vector(n2, 1);
            let mut y = vec![0.0; n2];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n2) as u64);
            k.reset_times();
            g.bench_function(method.tag(), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }

    // Family 3: batched SpMM at k=1 and k=8 on the scattered matrix — the
    // per-vector-speedup pair the block path is accountable for.
    {
        let mut g = t.group("ci/spmm/G3_circuit");
        if let Ok(mut k) =
            SymSpmv::from_coo(&m2.coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
        {
            for lanes in [1usize, 8] {
                let mut x = symspmv_sparse::VectorBlock::seeded(n2, lanes, 1);
                let mut y = symspmv_sparse::VectorBlock::zeros(n2, lanes);
                g.throughput_elements(m2.coo.nnz() as u64 * lanes as u64);
                g.model(
                    2 * k.nnz_full() as u64 * lanes as u64,
                    (k.size_bytes() + 16 * n2 * lanes) as u64,
                );
                k.reset_times();
                g.bench_function(format!("sss-idx/k{lanes}"), |b| {
                    b.iter(|| {
                        k.spmm(&x, &mut y);
                        std::mem::swap(&mut x, &mut y);
                    })
                });
                g.phases_for_last(k.times());
            }
        }
        g.finish();
    }

    // Family 4: a short fixed-iteration CG solve (vector-op phases come
    // from the context ledger).
    {
        let mut g = t.group("ci/cg/hood");
        g.context(&ctx);
        let cfg = CgConfig {
            max_iters: 8,
            rel_tol: 0.0,
            record_history: false,
        };
        if let Ok(mut k) =
            SymSpmv::from_coo(&m.coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
        {
            let b_vec = seeded_vector(n, 5);
            g.model(
                cfg.max_iters as u64 * 2 * k.nnz_full() as u64,
                cfg.max_iters as u64 * (k.size_bytes() + 16 * n) as u64,
            );
            g.bench_function("sss-idx", |bch| {
                bch.iter(|| {
                    let mut x = vec![0.0; n];
                    black_box(cg(&mut k, &b_vec, &mut x, &cfg))
                })
            });
        }
        g.finish();
    }

    // Family 5: symmetry kinds. The skew pair is the PARS3 experiment in
    // miniature — the scrambled convection matrix natural vs RCM-reordered
    // (the reordering recovers the band, shrinking the conflict region) —
    // and the structural row covers the paired-values kernel. Every row
    // carries its kind tag in the ledger.
    {
        let skew = suite::generate(
            suite::spec_by_name("convection_skew").unwrap_or(&suite::KIND_SUITE[0]),
            0.05,
        );
        let nk = skew.coo.nrows() as usize;
        let mut g = t.group("ci/kinds/convection_skew");
        g.kind(SymmetryKind::Skew.tag());
        g.throughput_elements(skew.coo.nnz() as u64);
        let reordered = symspmv_reorder::rcm::rcm_reorder(&skew.coo).ok();
        for (id, coo) in [
            ("sss-idx/natural", Some(&skew.coo)),
            ("sss-idx/rcm", reordered.as_ref()),
        ] {
            let Some(coo) = coo else { continue };
            let Ok(mut k) = build_kernel_kind(
                KernelSpec::Sss(ReductionMethod::Indexing),
                coo,
                SymmetryKind::Skew,
                &ctx,
            ) else {
                continue;
            };
            let mut x = seeded_vector(nk, 1);
            let mut y = vec![0.0; nk];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * nk) as u64);
            k.reset_times();
            g.bench_function(id, |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();

        let st = suite::generate(
            suite::spec_by_name("circuit_structural").unwrap_or(&suite::KIND_SUITE[1]),
            0.005,
        );
        let ns = st.coo.nrows() as usize;
        let mut g = t.group("ci/kinds/circuit_structural");
        g.kind(SymmetryKind::Structural.tag());
        g.throughput_elements(st.coo.nnz() as u64);
        if let Ok(mut k) = build_kernel_kind(
            KernelSpec::Sss(ReductionMethod::Indexing),
            &st.coo,
            SymmetryKind::Structural,
            &ctx,
        ) {
            let mut x = seeded_vector(ns, 1);
            let mut y = vec![0.0; ns];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * ns) as u64);
            k.reset_times();
            g.bench_function("sss-idx", |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }

    t.report()
}

/// Verifies the gate itself on synthetic distributions: a known median
/// shift must trip it, a within-noise shift must pass, and an improvement
/// must produce the update-baseline exit code. Exit 0 when all three hold.
fn self_test() -> i32 {
    fn synth(id: &str, median_us: f64) -> SampleSet {
        let m = median_us * 1e-6;
        SampleSet {
            group: "selftest".into(),
            id: id.into(),
            iters: 100,
            samples: vec![0.98 * m, 0.99 * m, m, 1.01 * m, 1.02 * m],
            kind: None,
            elements: None,
            flops: None,
            bytes: None,
            phases: None,
        }
    }
    fn synth_kind(id: &str, median_us: f64, kind: &str) -> SampleSet {
        SampleSet {
            kind: Some(kind.into()),
            ..synth(id, median_us)
        }
    }
    fn rep(samples: Vec<SampleSet>) -> BenchReport {
        BenchReport {
            target: "selftest".into(),
            machine: MachineInfo::for_tests(),
            samples,
        }
    }

    let cfg = GateConfig::default();
    let base = rep(vec![
        synth("shifted", 100.0),
        synth("steady", 100.0),
        synth("faster", 100.0),
        synth("spmm/sss-idx/k8", 400.0),
        synth_kind("kinds/skew/sss-idx", 120.0, "skew"),
    ]);
    // +60 % regression, +5 % noise, −50 % improvement; the k>1 batched row
    // regresses too — the gate must see block rows like any scalar row.
    // ... and the kind-tagged skew row regresses — the gate must treat
    // per-kind rows exactly like the symmetric ones.
    let cur = rep(vec![
        synth("shifted", 160.0),
        synth("steady", 105.0),
        synth("faster", 50.0),
        synth("spmm/sss-idx/k8", 700.0),
        synth_kind("kinds/skew/sss-idx", 190.0, "skew"),
    ]);

    let cmp = compare(&base, &cur, &cfg);
    println!("{}", cmp.table().render());
    let verdict_of = |id: &str| {
        cmp.rows
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.verdict)
            .unwrap_or(Verdict::NoData)
    };

    let mut ok = true;
    let mut check = |what: &str, got: bool| {
        println!("self-test: {what}: {}", if got { "ok" } else { "FAIL" });
        ok &= got;
    };
    check(
        "synthetic +60% median shift trips the gate",
        verdict_of("shifted") == Verdict::Regression,
    );
    check(
        "within-noise +5% shift passes",
        verdict_of("steady") == Verdict::Pass,
    );
    check(
        "−50% improvement detected",
        verdict_of("faster") == Verdict::Improvement,
    );
    check(
        "k>1 batched-SpMM row regression trips the gate",
        verdict_of("spmm/sss-idx/k8") == Verdict::Regression,
    );
    check(
        "kind-tagged skew row regression trips the gate",
        verdict_of("kinds/skew/sss-idx") == Verdict::Regression,
    );
    check("regression dominates the exit code", cmp.exit_code() == 1);
    let improved_only = compare(
        &rep(vec![synth("faster", 100.0)]),
        &rep(vec![synth("faster", 50.0)]),
        &cfg,
    );
    check(
        "improvement-only run requests a baseline refresh (exit 3)",
        improved_only.exit_code() == 3,
    );
    let vanished = compare(&base, &rep(vec![synth("steady", 100.0)]), &cfg);
    check(
        "lost bench coverage fails the gate",
        vanished.exit_code() == 1,
    );

    if ok {
        println!("self-test: all gate behaviours verified");
        0
    } else {
        1
    }
}
