#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Minimal self-contained benchmark harness for the `benches/` targets.
//!
//! The build environment is offline, so the usual criterion dependency is
//! replaced by this small shim that keeps the slice of its API the bench
//! binaries use — named groups, per-function samples with a calibration
//! pass, element throughput — and adds what criterion never had here: a
//! **structured ledger**. Every [`BenchGroup::bench_function`] run records
//! a [`SampleSet`] (all raw samples, the size model for GFLOP/s and
//! effective GB/s, optional per-phase breakdown), and [`Target::finish`]
//! serializes the machine-annotated [`BenchReport`] to
//! `BENCH_<target>.json` next to the human-readable stdout table. The
//! `bench-ci` binary replays a smoke subset of these records against
//! `bench/baseline.json` (see [`regress`]).
//!
//! Sample counts can be overridden with `SYMSPMV_BENCH_SAMPLES` (useful
//! for smoke-running every target quickly: set it to `2`); the emission
//! directory with `SYMSPMV_BENCH_DIR` (default: current directory).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use symspmv_harness::ledger::{BenchReport, PhaseBreakdown, SampleSet};
use symspmv_harness::machine::MachineInfo;
use symspmv_runtime::{ExecutionContext, PhaseTimes};

pub mod regress;

/// Re-export of the compiler fence against dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to each bench routine; `iter` times a batch of calls.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `iters` times and records the wall-clock total.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One bench binary's run: collects every group's [`SampleSet`] and writes
/// the `BENCH_<name>.json` artifact at the end.
pub struct Target {
    name: String,
    samples: Vec<SampleSet>,
}

impl Target {
    /// Opens a ledger for the named bench target.
    pub fn new(name: impl Into<String>) -> Target {
        Target {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Opens a benchmark group and prints its header.
    pub fn group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        println!(
            "{:<44} {:>12} {:>12}",
            "  benchmark", "median/iter", "best/iter"
        );
        BenchGroup {
            target: self,
            name,
            sample_size: default_samples(10),
            kind: None,
            elements: None,
            flops: None,
            bytes: None,
            ctx: None,
            last_total_iters: 0,
        }
    }

    /// The machine-annotated report accumulated so far (consumes the
    /// target; used by `bench-ci`, which compares in-memory).
    pub fn report(self) -> BenchReport {
        BenchReport {
            target: self.name,
            machine: MachineInfo::detect(),
            samples: self.samples,
        }
    }

    /// Serializes the report into `dir/BENCH_<target>.json`.
    pub fn write_to(self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        let report = self.report();
        write_report(&report, dir)
    }

    /// Serializes the report into `$SYMSPMV_BENCH_DIR/BENCH_<target>.json`
    /// (current directory when unset) and prints the path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let path = self.write_to(&bench_dir())?;
        println!("\nledger: {}", path.display());
        Ok(path)
    }
}

/// Writes an already-built report into `dir` under its canonical name.
pub fn write_report(report: &BenchReport, dir: &std::path::Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(report.file_name());
    let text = report.to_json().map_err(std::io::Error::other)?;
    std::fs::write(&path, text)?;
    Ok(path)
}

/// The bench artifact directory: `SYMSPMV_BENCH_DIR` or `.`.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("SYMSPMV_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// A named collection of benchmark functions sharing display settings and
/// recording into the parent [`Target`]'s ledger.
pub struct BenchGroup<'a> {
    target: &'a mut Target,
    name: String,
    sample_size: usize,
    kind: Option<String>,
    elements: Option<u64>,
    flops: Option<u64>,
    bytes: Option<u64>,
    ctx: Option<Arc<ExecutionContext>>,
    last_total_iters: u64,
}

fn default_samples(fallback: usize) -> usize {
    std::env::var("SYMSPMV_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(fallback)
        .max(2)
}

/// Per-sample target duration picked by the calibration pass.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Upper bound on calibrated iterations per sample.
const MAX_ITERS: u64 = 10_000;

impl BenchGroup<'_> {
    /// Number of timed samples per bench function (env override wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = default_samples(n);
        self
    }

    /// Tags every subsequent row of this group with a symmetry-kind label
    /// (`"symmetric"`, `"skew"`, `"structural"`). Sticky for the whole
    /// group — a group benches one operator.
    pub fn kind(&mut self, tag: &str) -> &mut Self {
        self.kind = Some(tag.to_string());
        self
    }

    /// Report element throughput (e.g. non-zeros per second) per function.
    /// Sticky for the whole group.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Declares the size model of the **next** `bench_function` call:
    /// floating-point operations and bytes moved per iteration. One-shot —
    /// each kernel's storage size differs, so a stale model must not leak
    /// onto the next row.
    pub fn model(&mut self, flops_per_iter: u64, bytes_per_iter: u64) -> &mut Self {
        self.flops = Some(flops_per_iter);
        self.bytes = Some(bytes_per_iter);
        self
    }

    /// Attaches an execution context whose [`PhaseTimes`] ledger is
    /// snapshot-and-reset around every `bench_function`, recording the
    /// per-phase breakdown of routines that account through the context
    /// (the CG solver does). Kernels that keep kernel-local accumulators
    /// use [`BenchGroup::phases_for_last`] instead.
    pub fn context(&mut self, ctx: &Arc<ExecutionContext>) -> &mut Self {
        self.ctx = Some(Arc::clone(ctx));
        self
    }

    /// Calibrates, samples, records one [`SampleSet`], and prints one row.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up doubles as the calibration probe.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos())
            .max(1)
            .min(MAX_ITERS as u128) as u64;

        // Phase accounting starts after the warm-up so a context-attached
        // breakdown covers exactly the timed iterations.
        if let Some(ctx) = &self.ctx {
            let _ = ctx.take_snapshot();
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }

        let timed_iters = iters * self.sample_size as u64;
        self.last_total_iters = timed_iters + 1; // + the calibration pass
        let phases = self
            .ctx
            .as_ref()
            .map(|ctx| PhaseBreakdown::from_times(&ctx.take_snapshot(), timed_iters));

        let set = SampleSet {
            group: self.name.clone(),
            id: id.to_string(),
            iters,
            samples,
            kind: self.kind.clone(),
            elements: self.elements,
            flops: self.flops.take(),
            bytes: self.bytes.take(),
            phases,
        };
        print_row(&set);
        self.target.samples.push(set);
    }

    /// Attaches a kernel-local [`PhaseTimes`] accumulation to the most
    /// recent `bench_function` row. The caller resets the kernel's
    /// accumulators *before* the `bench_function` call, so the breakdown
    /// covers the calibration pass plus every timed iteration.
    pub fn phases_for_last(&mut self, times: PhaseTimes) {
        let iters = self.last_total_iters;
        if let Some(last) = self.target.samples.last_mut() {
            last.phases = Some(PhaseBreakdown::from_times(&times, iters));
        }
    }

    /// Closes the group (header/footer symmetry with the criterion API).
    pub fn finish(self) {}
}

fn print_row(set: &SampleSet) {
    let Some(stats) = set.stats() else {
        println!("  {:<42} {:>12}", set.id, "no samples");
        return;
    };
    let mut line = format!(
        "  {:<42} {:>12} {:>12}",
        set.id,
        fmt_time(stats.median),
        fmt_time(stats.min)
    );
    if let Some(e) = set.elements {
        line.push_str(&format!("  {:>9.1} Melem/s", e as f64 / stats.median / 1e6));
    }
    if let Some(g) = set.gflops() {
        line.push_str(&format!("  {g:>6.2} GFLOP/s"));
    }
    if let Some(g) = set.effective_gbs() {
        line.push_str(&format!("  {g:>6.2} GB/s"));
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    symspmv_harness::report::fmt_secs(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_recording_run() {
        let mut t = Target::new("selftest");
        let mut g = t.group("selftest/group");
        g.sample_size(2).throughput_elements(1000);
        g.model(2000, 16_000);
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // A second function without a model must not inherit the first's.
        g.bench_function("noop2", |b| b.iter(|| black_box(1)));
        g.finish();
        assert!(calls > 0);

        let report = t.report();
        assert_eq!(report.target, "selftest");
        assert_eq!(report.samples.len(), 2);
        let first = &report.samples[0];
        assert_eq!(first.group, "selftest/group");
        assert_eq!(first.id, "noop");
        assert_eq!(first.samples.len(), 2);
        assert_eq!(first.flops, Some(2000));
        assert!(first.gflops().is_some());
        let second = &report.samples[1];
        assert_eq!(second.flops, None, "model must be one-shot");
        assert_eq!(second.elements, Some(1000), "elements are sticky");
    }

    #[test]
    fn context_attachment_records_phase_breakdown() {
        let ctx = ExecutionContext::new(1);
        let mut t = Target::new("phases");
        let mut g = t.group("phases/group");
        g.sample_size(2).context(&ctx);
        g.bench_function("ledgered", |b| {
            b.iter(|| {
                let mut delta = PhaseTimes::new();
                delta.multiply = Duration::from_micros(50);
                ctx.ledger_add(&delta);
            })
        });
        let report = t.report();
        let phases = report.samples[0].phases.expect("phase breakdown recorded");
        assert!(phases.multiply > 0.0);
        assert_eq!(phases.reduce, 0.0);
        assert!(phases.iters >= 2);
        // The snapshot drained the context ledger.
        assert_eq!(ctx.ledger(), PhaseTimes::new());
    }

    #[test]
    fn explicit_phase_attachment_lands_on_last_row() {
        let mut t = Target::new("explicit");
        let mut g = t.group("explicit/group");
        g.sample_size(2);
        g.bench_function("k", |b| b.iter(|| black_box(7)));
        let mut times = PhaseTimes::new();
        times.multiply = Duration::from_millis(3);
        times.preprocess = Duration::from_millis(1);
        g.phases_for_last(times);
        let report = t.report();
        let phases = report.samples[0].phases.expect("attached");
        assert!((phases.multiply - 0.003).abs() < 1e-9);
        assert!(phases.iters >= 3, "covers calibration + timed iterations");
    }

    #[test]
    fn target_writes_parseable_ledger_artifact() {
        let dir = std::env::temp_dir().join(format!("symspmv_bench_{}", std::process::id()));
        let mut t = Target::new("artifact");
        let mut g = t.group("artifact/group");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.finish();
        let path = t.write_to(&dir).expect("ledger written");
        assert!(path.ends_with("BENCH_artifact.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        let parsed = BenchReport::from_json(&text).expect("valid bench-v1");
        assert_eq!(parsed.target, "artifact");
        assert_eq!(parsed.samples.len(), 1);
        assert!(parsed.machine.ncpus >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
