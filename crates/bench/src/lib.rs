//! Shared helpers for the criterion benchmark suite (see `benches/`).
//!
//! Each bench target regenerates one table or figure of the paper; the
//! heavy lifting lives in `symspmv-harness`, this crate only hosts the
//! bench binaries.
