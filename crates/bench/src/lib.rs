#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Minimal self-contained benchmark harness for the `benches/` targets.
//!
//! The build environment is offline, so the usual criterion dependency is
//! replaced by this small shim that keeps the slice of its API the bench
//! binaries use: named groups, per-function samples with a calibration
//! pass, and element throughput. Each bench target is a plain `fn main`
//! binary (`harness = false`) that regenerates one table or figure of the
//! paper; the heavy lifting lives in `symspmv-harness`.
//!
//! Sample counts can be overridden with `SYMSPMV_BENCH_SAMPLES` (useful
//! for smoke-running every target quickly: set it to `2`).

use std::time::{Duration, Instant};

/// Re-export of the compiler fence against dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to each bench routine; `iter` times a batch of calls.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `iters` times and records the wall-clock total.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of benchmark functions sharing display settings.
pub struct BenchGroup {
    sample_size: usize,
    elements: Option<u64>,
}

/// Opens a benchmark group and prints its header.
pub fn group(name: impl Into<String>) -> BenchGroup {
    let name = name.into();
    println!("\n{name}");
    println!(
        "{:<44} {:>12} {:>12}",
        "  benchmark", "median/iter", "best/iter"
    );
    BenchGroup {
        sample_size: default_samples(10),
        elements: None,
    }
}

fn default_samples(fallback: usize) -> usize {
    std::env::var("SYMSPMV_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(fallback)
        .max(2)
}

/// Per-sample target duration picked by the calibration pass.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Upper bound on calibrated iterations per sample.
const MAX_ITERS: u64 = 10_000;

impl BenchGroup {
    /// Number of timed samples per bench function (env override wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = default_samples(n);
        self
    }

    /// Report element throughput (e.g. non-zeros per second) per function.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Calibrates, samples, and prints one result row.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up doubles as the calibration probe.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos())
            .max(1)
            .min(MAX_ITERS as u128) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let best = samples[0];

        let mut line = format!(
            "  {:<42} {:>12} {:>12}",
            id.to_string(),
            fmt_time(median),
            fmt_time(best)
        );
        if let Some(e) = self.elements {
            line.push_str(&format!("  {:>9.1} Melem/s", e as f64 / median / 1e6));
        }
        println!("{line}");
    }

    /// Closes the group (header/footer symmetry with the criterion API).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_reporting_run() {
        let mut g = group("selftest");
        g.sample_size(2).throughput_elements(1000);
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
        g.finish();
    }

    #[test]
    fn time_formatting_spans_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
