//! The statistical regression gate over two bench ledgers.
//!
//! Raw medians jitter between runs, so a naive "slower than baseline ⇒
//! fail" rule would flap. The gate is noise-robust: a (group, id) pair
//! regresses only when its median moved beyond
//! `max(rel_tol · base_median, mad_k · max(base_MAD, cur_MAD), abs_floor)`
//! — the relative tolerance absorbs machine-to-machine drift, the MAD term
//! widens the band exactly when the measurement itself is noisy, and the
//! absolute floor keeps nanosecond-scale benches from gating on scheduler
//! quanta. Improvements beyond the same band are *also* surfaced (exit
//! code 3) so the committed baseline gets refreshed instead of silently
//! going stale and masking later regressions.

use symspmv_harness::ledger::BenchReport;
use symspmv_harness::report::{f, fmt_secs, Table};

/// Gate tolerances. See the module docs for the composed threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Relative tolerance on the baseline median (e.g. `0.30` = 30 %).
    pub rel_tol: f64,
    /// Multiplier on the larger of the two MADs.
    pub mad_k: f64,
    /// Absolute threshold floor, seconds per iteration.
    pub abs_floor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            rel_tol: 0.30,
            mad_k: 6.0,
            abs_floor: 50e-9,
        }
    }
}

impl GateConfig {
    /// Default tolerances with `SYMSPMV_BENCH_RTOL` / `SYMSPMV_BENCH_MADK`
    /// environment overrides (CI can tighten or loosen without a rebuild).
    pub fn from_env() -> GateConfig {
        let mut cfg = GateConfig::default();
        if let Some(v) = env_f64("SYMSPMV_BENCH_RTOL") {
            cfg.rel_tol = v;
        }
        if let Some(v) = env_f64("SYMSPMV_BENCH_MADK") {
            cfg.mad_k = v;
        }
        cfg
    }

    /// The composed threshold (seconds) for one baseline/current pair.
    pub fn threshold(&self, base_median: f64, base_mad: f64, cur_mad: f64) -> f64 {
        (self.rel_tol * base_median)
            .max(self.mad_k * base_mad.max(cur_mad))
            .max(self.abs_floor)
    }
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
}

/// Outcome for one (group, id) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Median shift within the noise band.
    Pass,
    /// Median slowed beyond the band — the gate fails.
    Regression,
    /// Median improved beyond the band — baseline refresh wanted.
    Improvement,
    /// Present now, absent from the baseline (new bench): refresh wanted.
    New,
    /// Present in the baseline, absent now: coverage loss, the gate fails.
    Vanished,
    /// One side has no samples; ungateable, reported but not failed.
    NoData,
}

impl Verdict {
    /// Short display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improved",
            Verdict::New => "new",
            Verdict::Vanished => "VANISHED",
            Verdict::NoData => "no data",
        }
    }
}

/// One row of the comparison: the pair, both medians, the applied
/// threshold and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Group of the pair.
    pub group: String,
    /// Bench id of the pair.
    pub id: String,
    /// Baseline median (None when the pair is new or empty).
    pub base_median: Option<f64>,
    /// Current median (None when the pair vanished or is empty).
    pub cur_median: Option<f64>,
    /// Threshold applied, seconds (0 when not comparable).
    pub threshold: f64,
    /// `cur_median / base_median` when both exist.
    pub ratio: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// The full comparison of a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// One row per (group, id) pair seen on either side, current order
    /// first, vanished baseline entries last.
    pub rows: Vec<CompareRow>,
}

impl Comparison {
    /// Number of failing rows (regressions + vanished coverage).
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Regression | Verdict::Vanished))
            .count()
    }

    /// Number of rows asking for a baseline refresh (improvements + new).
    pub fn refresh_wanted(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Improvement | Verdict::New))
            .count()
    }

    /// Process exit code contract of `bench-ci`: `1` on any failure, `3`
    /// when the only news is improvements/new benches (refresh the
    /// baseline), `0` when everything is within noise.
    pub fn exit_code(&self) -> i32 {
        if self.failures() > 0 {
            1
        } else if self.refresh_wanted() > 0 {
            3
        } else {
            0
        }
    }

    /// Renders the diff as a column-aligned table (reused verbatim in the
    /// CI job summary).
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "group", "id", "baseline", "current", "ratio", "band", "verdict",
        ]);
        let time = |v: Option<f64>| v.map(fmt_secs).unwrap_or_else(|| "-".into());
        for r in &self.rows {
            t.row(vec![
                r.group.clone(),
                r.id.clone(),
                time(r.base_median),
                time(r.cur_median),
                r.ratio.map(|v| f(v, 3)).unwrap_or_else(|| "-".into()),
                if r.threshold > 0.0 {
                    format!("±{}", fmt_secs(r.threshold))
                } else {
                    "-".into()
                },
                r.verdict.tag().into(),
            ]);
        }
        t
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} compared, {} failing, {} wanting a baseline refresh",
            self.rows.len(),
            self.failures(),
            self.refresh_wanted()
        )
    }
}

/// Compares every (group, id) pair of `current` against `baseline` under
/// the gate tolerances.
pub fn compare(baseline: &BenchReport, current: &BenchReport, cfg: &GateConfig) -> Comparison {
    let mut rows = Vec::new();
    for cur in &current.samples {
        let base = baseline.find(&cur.group, &cur.id);
        let row = match base {
            None => CompareRow {
                group: cur.group.clone(),
                id: cur.id.clone(),
                base_median: None,
                cur_median: cur.stats().map(|s| s.median),
                threshold: 0.0,
                ratio: None,
                verdict: Verdict::New,
            },
            Some(base) => match (base.stats(), cur.stats()) {
                (Some(b), Some(c)) => {
                    let threshold = cfg.threshold(b.median, b.mad, c.mad);
                    let delta = c.median - b.median;
                    let verdict = if delta > threshold {
                        Verdict::Regression
                    } else if -delta > threshold {
                        Verdict::Improvement
                    } else {
                        Verdict::Pass
                    };
                    CompareRow {
                        group: cur.group.clone(),
                        id: cur.id.clone(),
                        base_median: Some(b.median),
                        cur_median: Some(c.median),
                        threshold,
                        ratio: Some(c.median / b.median),
                        verdict,
                    }
                }
                (b, c) => CompareRow {
                    group: cur.group.clone(),
                    id: cur.id.clone(),
                    base_median: b.map(|s| s.median),
                    cur_median: c.map(|s| s.median),
                    threshold: 0.0,
                    ratio: None,
                    verdict: Verdict::NoData,
                },
            },
        };
        rows.push(row);
    }
    // Baseline entries the current run no longer produces.
    for base in &baseline.samples {
        if current.find(&base.group, &base.id).is_none() {
            rows.push(CompareRow {
                group: base.group.clone(),
                id: base.id.clone(),
                base_median: base.stats().map(|s| s.median),
                cur_median: None,
                threshold: 0.0,
                ratio: None,
                verdict: Verdict::Vanished,
            });
        }
    }
    Comparison { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_harness::ledger::SampleSet;
    use symspmv_harness::machine::MachineInfo;

    /// A sample set whose samples cluster around `median` with spread
    /// `half_spread` (deterministic, symmetric — median and MAD are exact).
    fn set(group: &str, id: &str, median: f64, half_spread: f64) -> SampleSet {
        SampleSet {
            group: group.into(),
            id: id.into(),
            iters: 100,
            samples: vec![
                median - half_spread,
                median - half_spread / 2.0,
                median,
                median + half_spread / 2.0,
                median + half_spread,
            ],
            kind: None,
            elements: None,
            flops: None,
            bytes: None,
            phases: None,
        }
    }

    fn report(samples: Vec<SampleSet>) -> BenchReport {
        BenchReport {
            target: "ci".into(),
            machine: MachineInfo::for_tests(),
            samples,
        }
    }

    fn cfg() -> GateConfig {
        GateConfig {
            rel_tol: 0.10,
            mad_k: 4.0,
            abs_floor: 1e-9,
        }
    }

    // The three behaviours the gate exists for, as a verdict table.
    #[test]
    fn known_shifts_trip_the_gate_and_noise_does_not() {
        let base = report(vec![
            set("g", "regressed", 100e-6, 1e-6),
            set("g", "noisy", 100e-6, 1e-6),
            set("g", "improved", 100e-6, 1e-6),
        ]);
        // rel band = 10 µs, MAD band = 4·0.5 µs = 2 µs ⇒ threshold 10 µs.
        let cur = report(vec![
            set("g", "regressed", 115e-6, 1e-6), // +15 % ⇒ fail
            set("g", "noisy", 108e-6, 1e-6),     // +8 % ⇒ within band
            set("g", "improved", 80e-6, 1e-6),   // −20 % ⇒ refresh
        ]);
        let cmp = compare(&base, &cur, &cfg());
        let verdicts: Vec<Verdict> = cmp.rows.iter().map(|r| r.verdict).collect();
        assert_eq!(
            verdicts,
            vec![Verdict::Regression, Verdict::Pass, Verdict::Improvement]
        );
        assert_eq!(cmp.failures(), 1);
        assert_eq!(cmp.exit_code(), 1, "regression dominates");
    }

    #[test]
    fn improvement_alone_requests_baseline_update() {
        let base = report(vec![set("g", "k", 100e-6, 1e-6)]);
        let cur = report(vec![set("g", "k", 60e-6, 1e-6)]);
        let cmp = compare(&base, &cur, &cfg());
        assert_eq!(cmp.rows[0].verdict, Verdict::Improvement);
        assert_eq!(cmp.exit_code(), 3);
        assert_eq!(cmp.refresh_wanted(), 1);
    }

    #[test]
    fn within_noise_run_exits_zero() {
        let base = report(vec![set("g", "k", 100e-6, 2e-6)]);
        let cur = report(vec![set("g", "k", 104e-6, 2e-6)]);
        let cmp = compare(&base, &cur, &cfg());
        assert_eq!(cmp.rows[0].verdict, Verdict::Pass);
        assert_eq!(cmp.exit_code(), 0);
    }

    #[test]
    fn mad_band_widens_for_noisy_measurements() {
        // A 15 % shift that the relative band alone would fail, excused
        // because the measurement itself is wild: MAD 5 µs ⇒ band 20 µs.
        let base = report(vec![set("g", "k", 100e-6, 10e-6)]);
        let cur = report(vec![set("g", "k", 115e-6, 10e-6)]);
        let cmp = compare(&base, &cur, &cfg());
        assert_eq!(cmp.rows[0].verdict, Verdict::Pass);
        // And the threshold actually came from the MAD term.
        assert!(cmp.rows[0].threshold > 0.10 * 100e-6);
    }

    #[test]
    fn abs_floor_protects_nanosecond_benches() {
        let cfg = GateConfig {
            rel_tol: 0.10,
            mad_k: 4.0,
            abs_floor: 50e-9,
        };
        // 10 ns → 25 ns is +150 %, but under the 50 ns floor.
        let base = report(vec![set("g", "k", 10e-9, 0.0)]);
        let cur = report(vec![set("g", "k", 25e-9, 0.0)]);
        let cmp = compare(&base, &cur, &cfg);
        assert_eq!(cmp.rows[0].verdict, Verdict::Pass);
    }

    #[test]
    fn new_and_vanished_pairs_are_surfaced() {
        let base = report(vec![set("g", "old", 100e-6, 1e-6)]);
        let cur = report(vec![set("g", "fresh", 100e-6, 1e-6)]);
        let cmp = compare(&base, &cur, &cfg());
        assert_eq!(cmp.rows.len(), 2);
        assert_eq!(cmp.rows[0].verdict, Verdict::New);
        assert_eq!(cmp.rows[1].verdict, Verdict::Vanished);
        // Coverage loss fails even though something new appeared.
        assert_eq!(cmp.exit_code(), 1);
    }

    #[test]
    fn empty_sample_sets_are_ungateable_not_failures() {
        let mut empty = set("g", "k", 100e-6, 1e-6);
        empty.samples.clear();
        let base = report(vec![set("g", "k", 100e-6, 1e-6)]);
        let cur = report(vec![empty]);
        let cmp = compare(&base, &cur, &cfg());
        assert_eq!(cmp.rows[0].verdict, Verdict::NoData);
        assert_eq!(cmp.exit_code(), 0);
    }

    #[test]
    fn diff_table_and_summary_render() {
        let base = report(vec![set("g", "k", 100e-6, 1e-6)]);
        let cur = report(vec![set("g", "k", 150e-6, 1e-6)]);
        let cmp = compare(&base, &cur, &cfg());
        let text = cmp.table().render();
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("1.500"));
        assert!(cmp.summary().contains("1 failing"));
    }

    #[test]
    fn threshold_composition() {
        let cfg = GateConfig {
            rel_tol: 0.25,
            mad_k: 6.0,
            abs_floor: 1e-7,
        };
        // Relative term dominates.
        assert!((cfg.threshold(1e-3, 1e-6, 1e-6) - 0.25e-3).abs() < 1e-12);
        // MAD term dominates (uses the larger MAD side).
        assert!((cfg.threshold(1e-4, 1e-5, 2e-5) - 1.2e-4).abs() < 1e-12);
        // Floor dominates.
        assert!((cfg.threshold(1e-7, 0.0, 0.0) - 1e-7).abs() < 1e-20);
    }
}
