//! Fig. 14 analog: fixed-iteration CG cost per storage format on an
//! RCM-reordered structural matrix.

use symspmv_bench::{black_box, Target};
use symspmv_harness::kernels::{build_kernel, KernelSpec};
use symspmv_reorder::rcm::rcm_reorder;
use symspmv_runtime::ExecutionContext;
use symspmv_solver::{cg, CgConfig};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn main() {
    let m = suite::generate(suite::spec_by_name("bmw7st_1").unwrap(), 0.003);
    let coo = rcm_reorder(&m.coo).unwrap();
    let n = coo.nrows() as usize;
    let b_vec = seeded_vector(n, 5);
    let cfg = CgConfig {
        max_iters: 32,
        rel_tol: 0.0,
        record_history: false,
    };

    let ctx = ExecutionContext::new(4);
    let mut t = Target::new("cg");
    let mut g = t.group("cg_32iters/bmw7st_1_rcm");
    // The solver accounts multiply/reduce/vector-ops through the context
    // ledger, so the breakdown comes from snapshots around each row.
    g.sample_size(10).context(&ctx);
    for spec in KernelSpec::figure11_lineup() {
        // Kernel construction (preprocessing) stays outside the timed loop,
        // matching Fig. 14's separate preprocessing bar.
        let mut k = build_kernel(spec, &coo, &ctx).unwrap();
        // 32 CG iterations: one SpMV plus the vector-op tail each.
        g.model(
            cfg.max_iters as u64 * 2 * k.nnz_full() as u64,
            cfg.max_iters as u64 * (k.size_bytes() + 16 * n) as u64,
        );
        g.bench_function(spec.name(), |bch| {
            bch.iter(|| {
                let mut x = vec![0.0; n];
                black_box(cg(&mut *k, &b_vec, &mut x, &cfg))
            })
        });
    }
    g.finish();
    t.finish().unwrap();
}
