//! Fig. 14 analog: fixed-iteration CG cost per storage format on an
//! RCM-reordered structural matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symspmv_harness::kernels::{build_kernel, KernelSpec};
use symspmv_reorder::rcm::rcm_reorder;
use symspmv_solver::{cg, CgConfig};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn bench_cg(c: &mut Criterion) {
    let m = suite::generate(suite::spec_by_name("bmw7st_1").unwrap(), 0.003);
    let coo = rcm_reorder(&m.coo).unwrap();
    let n = coo.nrows() as usize;
    let b_vec = seeded_vector(n, 5);
    let cfg = CgConfig { max_iters: 32, rel_tol: 0.0, record_history: false };

    let mut group = c.benchmark_group("cg_32iters/bmw7st_1_rcm");
    group.sample_size(10);
    for spec in KernelSpec::figure11_lineup() {
        // Kernel construction (preprocessing) stays outside the timed loop,
        // matching Fig. 14's separate preprocessing bar.
        let mut k = build_kernel(spec, &coo, 4).unwrap();
        group.bench_function(BenchmarkId::from_parameter(spec.name()), |bch| {
            bch.iter(|| {
                let mut x = vec![0.0; n];
                cg(&mut *k, &b_vec, &mut x, &cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cg);
criterion_main!(benches);
