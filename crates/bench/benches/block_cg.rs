//! Block-CG cost per lane count: a fixed-iteration multi-RHS solve on an
//! RCM-reordered structural matrix, the end-to-end consumer of the batched
//! SpMM path. One `spmm` per iteration feeds k lane-lockstep recurrences,
//! so the per-lane solve cost should fall as k grows while the iterate
//! bits stay identical to k independent scalar solves.

use symspmv_bench::{black_box, Target};
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_reorder::rcm::rcm_reorder;
use symspmv_runtime::ExecutionContext;
use symspmv_solver::{block_cg, CgConfig};
use symspmv_sparse::block::SUPPORTED_LANES;
use symspmv_sparse::{suite, VectorBlock};

fn main() {
    let m = suite::generate(suite::spec_by_name("bmw7st_1").unwrap(), 0.003);
    let coo = rcm_reorder(&m.coo).unwrap();
    let n = coo.nrows() as usize;
    let cfg = CgConfig {
        max_iters: 16,
        rel_tol: 0.0,
        record_history: false,
    };

    let ctx = ExecutionContext::new(4);
    let mut t = Target::new("block_cg");
    let mut g = t.group("block_cg_16iters/bmw7st_1_rcm");
    g.sample_size(10).context(&ctx);
    let mut k = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
    for &lanes in &SUPPORTED_LANES {
        let b_block = VectorBlock::seeded(n, lanes, 5);
        g.model(
            cfg.max_iters as u64 * 2 * k.nnz_full() as u64 * lanes as u64,
            cfg.max_iters as u64 * (k.size_bytes() + 16 * n * lanes) as u64,
        );
        g.bench_function(format!("sss-idx/k{lanes}"), |bch| {
            bch.iter(|| {
                let mut x = VectorBlock::zeros(n, lanes);
                black_box(block_cg(&mut k, &b_block, &mut x, &cfg))
            })
        });
    }
    g.finish();
    t.finish().unwrap();
}
