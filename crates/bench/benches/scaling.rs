//! Fig. 9 scaling-shape analog: SSS-naive vs SSS-idx across thread counts.
//! The paper's claim is that the naive reduction's cost grows with the
//! thread count while the indexing scheme's stays flat.

use symspmv_bench::Target;
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn main() {
    let m = suite::generate(suite::spec_by_name("offshore").unwrap(), 0.006);
    let n = m.coo.nrows() as usize;
    let mut t = Target::new("scaling");
    let mut g = t.group("scaling/offshore");
    g.sample_size(15).throughput_elements(m.coo.nnz() as u64);
    for p in [1usize, 2, 4, 8] {
        let ctx = ExecutionContext::new(p);
        for method in [ReductionMethod::Naive, ReductionMethod::Indexing] {
            let mut k = SymSpmv::from_coo(&m.coo, &ctx, method, SymFormat::Sss).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n) as u64);
            k.reset_times();
            g.bench_function(format!("{}/p={p}", method.tag()), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            // Reduce-phase share per thread count is the Fig. 9 story.
            g.phases_for_last(k.times());
        }
    }
    g.finish();
    t.finish().unwrap();
}
