//! Fig. 9 scaling-shape analog: SSS-naive vs SSS-idx across thread counts.
//! The paper's claim is that the naive reduction's cost grows with the
//! thread count while the indexing scheme's stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn bench_scaling(c: &mut Criterion) {
    let m = suite::generate(suite::spec_by_name("offshore").unwrap(), 0.006);
    let n = m.coo.nrows() as usize;
    let mut group = c.benchmark_group("scaling/offshore");
    group.sample_size(15);
    group.throughput(Throughput::Elements(m.coo.nnz() as u64));
    for p in [1usize, 2, 4, 8] {
        for method in [ReductionMethod::Naive, ReductionMethod::Indexing] {
            let mut k = SymSpmv::from_coo(&m.coo, p, method, SymFormat::Sss).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            group.bench_function(BenchmarkId::new(method.tag(), p), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
