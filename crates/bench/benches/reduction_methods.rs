//! Fig. 9/10 analog: the three local-vectors reduction methods on SSS
//! storage, at a multithreaded configuration where the reduction cost
//! separates them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn bench_reductions(c: &mut Criterion) {
    let threads = 4;
    for name in ["hood", "G3_circuit"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.004);
        let n = m.coo.nrows() as usize;
        let mut group = c.benchmark_group(format!("reduction_methods/{name}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(m.coo.nnz() as u64));
        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            let mut k = SymSpmv::from_coo(&m.coo, threads, method, SymFormat::Sss).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            group.bench_function(BenchmarkId::from_parameter(method.tag()), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
