//! Fig. 9/10 analog: the three local-vectors reduction methods on SSS
//! storage, at a multithreaded configuration where the reduction cost
//! separates them.

use symspmv_bench::Target;
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn main() {
    let ctx = ExecutionContext::new(4);
    let mut t = Target::new("reduction_methods");
    for name in ["hood", "G3_circuit"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.004);
        let n = m.coo.nrows() as usize;
        let mut g = t.group(format!("reduction_methods/{name}"));
        g.sample_size(20).throughput_elements(m.coo.nnz() as u64);
        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            let mut k = SymSpmv::from_coo(&m.coo, &ctx, method, SymFormat::Sss).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n) as u64);
            k.reset_times();
            g.bench_function(method.tag(), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            // The multiply/reduce split is the entire point of Fig. 10.
            g.phases_for_last(k.times());
        }
        g.finish();
    }
    t.finish().unwrap();
}
