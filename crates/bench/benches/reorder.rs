//! Table III / Fig. 13 analog: the RCM reordering cost itself, and
//! symmetric SpMV before vs after reordering on a high-bandwidth matrix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_reorder::rcm::rcm_reorder;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn bench_reorder(c: &mut Criterion) {
    let m = suite::generate(suite::spec_by_name("thermal2").unwrap(), 0.004);
    let n = m.coo.nrows() as usize;

    let mut group = c.benchmark_group("reorder");
    group.sample_size(10);
    group.throughput(Throughput::Elements(m.coo.nnz() as u64));

    group.bench_function("rcm_compute", |b| b.iter(|| rcm_reorder(&m.coo).unwrap()));

    let reordered = rcm_reorder(&m.coo).unwrap();
    for (label, coo) in [("original", &m.coo), ("rcm", &reordered)] {
        let mut k =
            SymSpmv::from_coo(coo, 4, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let mut x = seeded_vector(n, 1);
        let mut y = vec![0.0; n];
        group.bench_function(format!("sss_idx_spmv/{label}"), |b| {
            b.iter(|| {
                k.spmv(&x, &mut y);
                std::mem::swap(&mut x, &mut y);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reorder);
criterion_main!(benches);
