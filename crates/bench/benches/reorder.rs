//! Table III / Fig. 13 analog: the RCM reordering cost itself, and
//! symmetric SpMV before vs after reordering on a high-bandwidth matrix.

use symspmv_bench::{black_box, Target};
use symspmv_core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv_reorder::rcm::rcm_reorder;
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn main() {
    let m = suite::generate(suite::spec_by_name("thermal2").unwrap(), 0.004);
    let n = m.coo.nrows() as usize;

    let mut t = Target::new("reorder");
    let mut g = t.group("reorder");
    g.sample_size(10).throughput_elements(m.coo.nnz() as u64);

    g.bench_function("rcm_compute", |b| {
        b.iter(|| black_box(rcm_reorder(&m.coo).unwrap()))
    });

    let ctx = ExecutionContext::new(4);
    let reordered = rcm_reorder(&m.coo).unwrap();
    for (label, coo) in [("original", &m.coo), ("rcm", &reordered)] {
        let mut k =
            SymSpmv::from_coo(coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let mut x = seeded_vector(n, 1);
        let mut y = vec![0.0; n];
        g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n) as u64);
        k.reset_times();
        g.bench_function(format!("sss_idx_spmv/{label}"), |b| {
            b.iter(|| {
                k.spmv(&x, &mut y);
                std::mem::swap(&mut x, &mut y);
            })
        });
        g.phases_for_last(k.times());
    }
    g.finish();
    t.finish().unwrap();
}
