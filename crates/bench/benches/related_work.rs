//! §VI analog: the paper's best configurations against the related-work
//! alternatives (BCSR, CSB, symmetric CSB, pure atomics) on one structural
//! and one high-bandwidth matrix.

use symspmv_bench::Target;
use symspmv_harness::kernels::{build_kernel, KernelSpec};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn main() {
    let ctx = ExecutionContext::new(4);
    let mut t = Target::new("related_work");
    for name in ["bmw7st_1", "G3_circuit"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.004);
        let n = m.coo.nrows() as usize;
        let mut g = t.group(format!("related_work/{name}"));
        g.sample_size(15).throughput_elements(m.coo.nnz() as u64);
        for spec in KernelSpec::related_work_lineup() {
            let mut k = build_kernel(spec, &m.coo, &ctx).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n) as u64);
            k.reset_times();
            g.bench_function(spec.name(), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }
    t.finish().unwrap();
}
