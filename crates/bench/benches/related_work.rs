//! §VI analog: the paper's best configurations against the related-work
//! alternatives (BCSR, CSB, symmetric CSB, pure atomics) on one structural
//! and one high-bandwidth matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symspmv_harness::kernels::{build_kernel, KernelSpec};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn bench_related(c: &mut Criterion) {
    let threads = 4;
    for name in ["bmw7st_1", "G3_circuit"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.004);
        let n = m.coo.nrows() as usize;
        let mut group = c.benchmark_group(format!("related_work/{name}"));
        group.sample_size(15);
        group.throughput(Throughput::Elements(m.coo.nnz() as u64));
        for spec in KernelSpec::related_work_lineup() {
            let mut k = build_kernel(spec, &m.coo, threads).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            group.bench_function(BenchmarkId::from_parameter(spec.name()), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_related);
criterion_main!(benches);
