//! Table I / §V-E analog: CSX-Sym preprocessing (detection + encoding)
//! cost, with the serial CSR SpMV as the comparison unit the paper uses.

use symspmv_bench::{black_box, Target};
use symspmv_csx::detect::DetectConfig;
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;
use symspmv_sparse::{CsrMatrix, SssMatrix};

fn main() {
    let mut t = Target::new("csx_encode");
    for name in ["bmw7st_1", "parabolic_fem"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.003);
        let sss = SssMatrix::from_coo(&m.coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 4);
        let mut g = t.group(format!("csx_encode/{name}"));
        g.sample_size(10);

        // The preprocessing itself (what §V-E prices in serial SpMVs).
        let cfg = DetectConfig::default();
        g.bench_function("csxsym_preprocess", |b| {
            b.iter(|| black_box(symspmv_core::CsxSymMatrix::from_sss(&sss, &parts, &cfg)))
        });

        // Sampled detection, as CSX uses to bound the preprocessing cost.
        let sampled = DetectConfig {
            sample_fraction: 0.25,
            ..DetectConfig::default()
        };
        g.bench_function("csxsym_preprocess_sampled", |b| {
            b.iter(|| black_box(symspmv_core::CsxSymMatrix::from_sss(&sss, &parts, &sampled)))
        });

        // The measurement unit: one serial CSR SpMV.
        let csr = CsrMatrix::from_coo(&m.coo);
        let n = csr.nrows() as usize;
        let mut x = seeded_vector(n, 1);
        let mut y = vec![0.0; n];
        g.throughput_elements(m.coo.nnz() as u64);
        g.model(2 * m.coo.nnz() as u64, (csr.size_bytes() + 16 * n) as u64);
        g.bench_function("serial_csr_spmv_unit", |b| {
            b.iter(|| {
                csr.spmv(&x, &mut y);
                std::mem::swap(&mut x, &mut y);
            })
        });
        g.finish();
    }
    t.finish().unwrap();
}
