//! Fig. 11/12 analog: SpMV throughput per storage format
//! (CSR, CSX, SSS-idx, CSX-Sym-idx) on a structural and a high-bandwidth
//! suite matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symspmv_harness::kernels::{build_kernel, KernelSpec};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn bench_formats(c: &mut Criterion) {
    let threads = 2;
    for name in ["hood", "thermal2"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.004);
        let n = m.coo.nrows() as usize;
        let mut group = c.benchmark_group(format!("spmv_formats/{name}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(m.coo.nnz() as u64));
        for spec in KernelSpec::figure11_lineup() {
            let mut k = build_kernel(spec, &m.coo, threads).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            group.bench_function(BenchmarkId::from_parameter(spec.name()), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
