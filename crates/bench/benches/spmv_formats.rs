//! Fig. 11/12 analog: SpMV throughput per storage format
//! (CSR, CSX, SSS-idx, CSX-Sym-idx) on a structural and a high-bandwidth
//! suite matrix.

use symspmv_bench::Target;
use symspmv_harness::kernels::{build_kernel, KernelSpec};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::suite;

fn main() {
    let ctx = ExecutionContext::new(2);
    let mut t = Target::new("spmv_formats");
    for name in ["hood", "thermal2"] {
        let m = suite::generate(suite::spec_by_name(name).unwrap(), 0.004);
        let n = m.coo.nrows() as usize;
        let mut g = t.group(format!("spmv_formats/{name}"));
        g.sample_size(20).throughput_elements(m.coo.nnz() as u64);
        for spec in KernelSpec::figure11_lineup() {
            let mut k = build_kernel(spec, &m.coo, &ctx).unwrap();
            let mut x = seeded_vector(n, 1);
            let mut y = vec![0.0; n];
            // Size model: 2 flops per stored non-zero of the full matrix;
            // bytes = storage + streaming both vectors once.
            g.model(2 * k.nnz_full() as u64, (k.size_bytes() + 16 * n) as u64);
            k.reset_times();
            g.bench_function(spec.name(), |b| {
                b.iter(|| {
                    k.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }
    t.finish().unwrap();
}
