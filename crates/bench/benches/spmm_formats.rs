//! Batched SpMM throughput per storage format and lane count.
//!
//! Sweeps `k ∈ {1, 2, 4, 8, 16}` right-hand sides for each block-capable
//! format on the suite's scattered matrix (the G3_circuit analog — the
//! conflict-heavy case where amortizing matrix traffic over k vectors
//! pays the most). Row ids are `<format>/k<k>`; the size model scales
//! flops and vector bytes by `k` while the matrix bytes stay fixed, so
//! the ledger's GFLOP/s column directly shows the per-vector speedup:
//! per-vector time is `median / k`.

use symspmv_bench::Target;
use symspmv_core::{BlockKernel, ReductionMethod, SymFormat, SymSpmv};
use symspmv_harness::kernels::experiment_detect_config;
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::block::SUPPORTED_LANES;
use symspmv_sparse::{suite, VectorBlock};

fn main() {
    let ctx = ExecutionContext::new(2);
    let m = suite::generate(suite::spec_by_name("G3_circuit").unwrap(), 0.002);
    let n = m.coo.nrows() as usize;

    let cfg = experiment_detect_config();
    let kernels: Vec<(&str, Box<dyn BlockKernel>)> = vec![
        (
            "csr",
            Box::new(symspmv_core::CsrParallel::from_coo(&m.coo, &ctx)),
        ),
        (
            "sss-idx",
            Box::new(
                SymSpmv::from_coo(&m.coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap(),
            ),
        ),
        (
            "csxsym-idx",
            Box::new(
                SymSpmv::from_coo(
                    &m.coo,
                    &ctx,
                    ReductionMethod::Indexing,
                    SymFormat::CsxSym(cfg),
                )
                .unwrap(),
            ),
        ),
        (
            "csb-sym",
            Box::new(symspmv_core::CsbSymParallel::from_coo(&m.coo, &ctx).unwrap()),
        ),
    ];

    let mut t = Target::new("spmm_formats");
    for (name, mut k) in kernels {
        let mut g = t.group(format!("spmm_formats/G3_circuit/{name}"));
        g.sample_size(20);
        for &lanes in &SUPPORTED_LANES {
            let mut x = VectorBlock::seeded(n, lanes, 1);
            let mut y = VectorBlock::zeros(n, lanes);
            g.throughput_elements(m.coo.nnz() as u64 * lanes as u64);
            // k vectors share one pass over the matrix: flops and vector
            // traffic scale with k, the storage bytes do not.
            g.model(
                2 * k.nnz_full() as u64 * lanes as u64,
                (k.size_bytes() + 16 * n * lanes) as u64,
            );
            k.reset_times();
            g.bench_function(format!("{name}/k{lanes}"), |b| {
                b.iter(|| {
                    k.spmm(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                })
            });
            g.phases_for_last(k.times());
        }
        g.finish();
    }
    t.finish().unwrap();
}
