//! Seeded property test for the certificate JSON interchange format:
//! every generated certificate — across all proof forms, symmetry tags
//! and counter magnitudes — must survive `to_json` → `from_json` exactly,
//! and the deserializer must reject non-finite numbers, unknown proof
//! tags, unknown keys and density tampering in *both* directions (the
//! writer refuses to emit what the reader refuses to accept).

use symspmv_verify::jsonio::Json;
use symspmv_verify::{ProofForm, RaceCertificate, VerifyError};

/// Deterministic xorshift64* — the property sweep is seeded, not flaky.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

fn arbitrary_certificate(rng: &mut Rng) -> RaceCertificate {
    let families = ["sym-sss", "sym-csx", "sym-hybrid", "csr", "sym-color"];
    let strategies = ["", "naive", "eff", "idx"];
    let symmetries = ["none", "symmetric", "skew", "structural"];
    let invariant_pool = [
        "disjoint-direct",
        "reduction-slice",
        "idx-coverage",
        "lane-lifted",
        "skew-zero-diagonal",
        "structural-paired",
        "color-class",
        "coloring-disjoint",
        "csx-boundary",
    ];
    let n = rng.below(1 << 20) as usize + 1;
    let proofs = [
        ProofForm::Enumerative,
        ProofForm::Symbolic,
        ProofForm::ColoringDisjoint {
            stride: rng.below(512) as u32 + 1,
            reach: rng.below(512) as u32,
        },
    ];
    let mut invariants: Vec<String> = Vec::new();
    for inv in invariant_pool {
        if rng.below(3) == 0 {
            invariants.push(inv.to_string());
        }
    }
    if invariants.is_empty() {
        invariants.push("disjoint-direct".to_string());
    }
    RaceCertificate {
        fingerprint: rng.next(),
        n,
        nthreads: rng.below(64) as usize,
        family: families[rng.below(families.len() as u64) as usize].to_string(),
        strategy: strategies[rng.below(strategies.len() as u64) as usize].to_string(),
        symmetry: symmetries[rng.below(symmetries.len() as u64) as usize].to_string(),
        invariants,
        direct_rows: rng.below(n as u64) as usize,
        local_elems: rng.below(1 << 24) as usize,
        conflict_entries: rng.below(1 << 16) as usize,
        lanes: *rng.pick(&[1usize, 2, 4, 8, 16]),
        proof: *rng.pick(&proofs),
    }
}

#[test]
fn random_certificates_round_trip_exactly() {
    let mut rng = Rng(0x5EED_CAB1E5_u64);
    let mut coloring_seen = false;
    for case in 0..500 {
        let cert = arbitrary_certificate(&mut rng);
        coloring_seen |= matches!(cert.proof, ProofForm::ColoringDisjoint { .. });
        let text = cert
            .to_json()
            .unwrap_or_else(|e| panic!("case {case}: serialization failed: {e}"));
        let parsed = RaceCertificate::from_json(&text)
            .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
        assert_eq!(parsed, cert, "case {case} diverged\n{text}");

        // The plain-text round trip must agree with the JSON one.
        let from_text = RaceCertificate::from_text(&cert.to_text())
            .unwrap_or_else(|e| panic!("case {case}: text parse failed: {e}"));
        assert_eq!(from_text, cert, "case {case}: text and JSON disagree");
    }
    assert!(
        coloring_seen,
        "the sweep must exercise the ColoringDisjoint proof form"
    );
}

fn sample() -> RaceCertificate {
    arbitrary_certificate(&mut Rng(42))
}

#[test]
fn unknown_proof_tag_rejected_both_ways() {
    let cert = sample();
    let text = cert.to_json().unwrap();
    let tampered = text.replace(
        &format!("\"proof\":\"{}\"", cert.proof.tag()),
        "\"proof\":\"vibes\"",
    );
    assert_ne!(text, tampered, "tamper target not found");
    let err = RaceCertificate::from_json(&tampered).unwrap_err();
    assert!(matches!(err, VerifyError::MalformedPlan { .. }), "{err:?}");

    // The text format enforces the same tag whitelist.
    let plain = cert
        .to_text()
        .replace(&format!("proof={}", cert.proof.tag()), "proof=vibes");
    assert!(RaceCertificate::from_text(&plain).is_err());
}

#[test]
fn non_finite_numbers_rejected_on_parse() {
    let cert = sample();
    let text = cert.to_json().unwrap();
    for poison in ["NaN", "Infinity", "-Infinity", "1e999"] {
        let tampered = text.replace("\"density\":", &format!("\"junk\":{poison},\"density\":"));
        let err = RaceCertificate::from_json(&tampered).unwrap_err();
        assert!(
            matches!(err, VerifyError::MalformedPlan { .. }),
            "{poison} slipped through: {err:?}"
        );
    }
}

#[test]
fn non_finite_numbers_rejected_on_write() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let doc = Json::Obj(vec![("density".to_string(), Json::Num(bad))]);
        assert!(doc.write().is_err(), "{bad} serialized");
    }
}

#[test]
fn density_tampering_rejected() {
    let mut cert = sample();
    cert.local_elems = 1000;
    cert.conflict_entries = 250;
    let text = cert.to_json().unwrap();
    let honest = format!("\"density\":{}", cert.density());
    assert!(text.contains(&honest), "{text}");
    let tampered = text.replace(&honest, "\"density\":0.75");
    let err = RaceCertificate::from_json(&tampered).unwrap_err();
    assert!(matches!(err, VerifyError::MalformedPlan { .. }), "{err:?}");
}

#[test]
fn unknown_keys_and_wrong_header_rejected() {
    let cert = sample();
    let text = cert.to_json().unwrap();
    let extra = text.replacen('{', "{\"surprise\":1,", 1);
    assert!(RaceCertificate::from_json(&extra).is_err());
    let wrong = text.replace("race-v1", "race-v9");
    assert!(RaceCertificate::from_json(&wrong).is_err());
}

#[test]
fn negative_and_fractional_counts_rejected() {
    let cert = sample();
    let text = cert.to_json().unwrap();
    let lanes = format!("\"lanes\":{}", cert.lanes);
    for bad in ["\"lanes\":-2", "\"lanes\":2.5"] {
        let tampered = text.replace(&lanes, bad);
        assert_ne!(text, tampered);
        assert!(
            RaceCertificate::from_json(&tampered).is_err(),
            "{bad} accepted"
        );
    }
}
